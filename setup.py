"""Legacy setup shim so ``pip install -e .`` works offline.

The environment's setuptools predates full PEP 660 editable-install
support and the ``wheel`` package is unavailable, so the project keeps a
minimal ``setup.py`` alongside ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
