"""Regenerate every table/figure at the CI profile into results/.

    python scripts/collect_results.py

Writes ``results/ci_profile.txt`` with the rendered output of all 12
paper experiments plus the three extension ablations — the snapshot
EXPERIMENTS.md quotes.
"""

import pathlib
import sys
import time

from repro.experiments import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fusion_ablation,
    run_genweight_ablation,
    run_pull_mode_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

RUNNERS = (
    ("Table I", run_table1),
    ("Table II", run_table2),
    ("Table III", run_table3),
    ("Table IV", run_table4),
    ("Table V", run_table5),
    ("Table VI", run_table6),
    ("Fig. 4", run_fig4),
    ("Fig. 5", run_fig5),
    ("Fig. 6", run_fig6),
    ("Fig. 7", run_fig7),
    ("Fig. 8", run_fig8),
    ("Fig. 9", run_fig9),
    ("Extension: fusion head", run_fusion_ablation),
    ("Extension: generative weight", run_genweight_ablation),
    ("Extension: pull optimization", run_pull_mode_ablation),
)


def main():
    out_path = pathlib.Path("results/ci_profile.txt")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    sections = []
    for name, runner in RUNNERS:
        start = time.time()
        result = runner(profile="ci")
        elapsed = time.time() - start
        print(f"{name} done in {elapsed:.0f}s", file=sys.stderr)
        sections.append(f"### {name} ({elapsed:.0f}s)\n\n{result}")
    out_path.write_text("\n\n".join(sections) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
