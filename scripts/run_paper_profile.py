"""Collect paper-profile results for EXPERIMENTS.md.

Runs the key experiments at the "paper" profile (reduced-but-realistic
small-scale datasets, longer training) and writes the rendered tables
to ``results/paper_profile.txt``.  Expect tens of minutes on one CPU.

    python scripts/run_paper_profile.py [--quick]
"""

import argparse
import pathlib
import sys
import time

from repro.experiments import run_fig5, run_table2, run_table6


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="restrict Table II to the multi-periodic methods")
    parser.add_argument("--out", default="results/paper_profile.txt")
    args = parser.parse_args()

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    sections = []

    t0 = time.time()
    methods = ("STGSP", "DeepSTN+", "ST-SSL", "GMAN", "MUSE-Net") if args.quick else None
    table2 = run_table2(profile="paper", datasets=("nyc-bike",), methods=methods)
    sections.append(str(table2))
    print(f"table2 done in {time.time() - t0:.0f}s", file=sys.stderr)

    t0 = time.time()
    table6 = run_table6(profile="paper", datasets=("nyc-bike",))
    sections.append(str(table6))
    print(f"table6 done in {time.time() - t0:.0f}s", file=sys.stderr)

    t0 = time.time()
    fig5 = run_fig5(profile="paper")
    sections.append(str(fig5))
    print(f"fig5 done in {time.time() - t0:.0f}s", file=sys.stderr)

    out_path.write_text("\n\n".join(sections) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
