#!/usr/bin/env bash
# CI gate: tier-1 tests plus smoke-mode perf benchmarks, so every run
# produces fresh perf snapshots (BENCH_profiling.json,
# BENCH_throughput.json, BENCH_parallel.json, BENCH_serve.json,
# BENCH_stream.json).  The throughput bench
# doubles as a perf regression gate: it fails unless the float32 +
# in-place-optimizer path is faster than the float64 baseline; the
# parallel bench gates the worker pool's gradient-equivalence contract
# (and its 4-worker speedup, on hosts with the cores for it).
#
#   scripts/ci_check.sh            # from anywhere inside the repo
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static analysis =="
# AST lint (dtype-policy, gradcheck-coverage, optimizer-out,
# mutable-default; config in [tool.repro.lint]) and the abstract-
# interpretation model checker over MUSE-Net at paper shapes.  Both
# exit 2 on findings, failing the gate (docs/static_analysis.md).
python -m repro lint
# Whole-program lock discipline over the threaded/forked stacks:
# lock-order cycles, guarded-field escapes, fork-under-lock
# (config in [tool.repro.lint]; exit 2 on findings).
python -m repro check-concurrency
python -m repro check-model MUSE-Net

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== fault-injection suite =="
# Robustness harness: divergence sentinel policies, detect_anomaly op
# attribution, checkpoint corruption/mid-write kills, SIGINT/SIGTERM
# interruption + resume (tests/robustness/).
python -m pytest tests/robustness -q

echo "== profiling-overhead bench (smoke) =="
python benchmarks/bench_profile_overhead.py --smoke --out BENCH_profiling.json

echo "== train-throughput bench (smoke) =="
# Smoke timings are noisy; the committed BENCH_throughput.json (full
# mode) is where the >=1.5x speedup and <=3% fault-tolerance-overhead
# claims live.  The gates here only require the optimized path to beat
# the baseline and the guarded path to stay within loose bounds.  The
# compiled arm's bit-equivalence gate (replayed steps == eager, atol 0)
# is always on; its >=1.5x speedup gate self-disables on single-CPU
# hosts and records the reason in the snapshot instead.
python benchmarks/bench_train_throughput.py --smoke --min-speedup 1.1 \
    --max-overhead-pct 10 --min-compiled-speedup 1.5 \
    --out BENCH_throughput.json

echo "== data-parallel smoke fit (2 workers) =="
# End-to-end worker-pool exercise through the real CLI: forked
# replicas, shared-memory allreduce, sentinel + telemetry, clean drain.
python -m repro train MUSE-Net --profile ci --dtype float32 --workers 2

echo "== parallel-scaling bench (smoke) =="
# Always gates gradient equivalence (reduced == single-process batch
# gradient at 4 workers); the 2.5x speedup gate self-disables on hosts
# with < 4 CPUs and records the reason in the snapshot instead.
python benchmarks/bench_parallel_scaling.py --mode smoke \
    --min-speedup 2.5 --out BENCH_parallel.json

echo "== serve-latency bench (smoke) =="
# Always gates serving correctness (served rows == offline
# predict_scaled at 1e-6/1e-12, under a batching-hostile request mix),
# single-flight dedup (32 concurrent same-tick clients -> exactly one
# model forward, all responses bit-identical to the uncached offline
# forward at atol 0), and socket parity (wire-served rows == in-process
# rows at atol 0); the p99 latency and cache-speedup (>= 3x uncached
# qps at concurrency 32) gates self-disable on single-CPU hosts and
# record the reason in the snapshot instead.
python benchmarks/bench_serve_latency.py --mode smoke --out BENCH_serve.json

echo "== socket serving round trip =="
# End-to-end through the real CLI: bind the asyncio front-end on an
# ephemeral port, discover it via --address-file, query over the wire,
# ask for a clean drain, and require exit code 0 from the server.
SERVE_DIR="$(mktemp -d)"
python -m repro serve MUSE-Net --listen 127.0.0.1:0 \
    --address-file "$SERVE_DIR/address" --max-wait-ms 0.5 \
    > "$SERVE_DIR/server.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 240); do
    [ -s "$SERVE_DIR/address" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_DIR/server.log"; exit 1; }
    sleep 0.5
done
[ -s "$SERVE_DIR/address" ] || { echo "server never bound"; cat "$SERVE_DIR/server.log"; exit 1; }
python - "$SERVE_DIR/address" <<'PYEOF'
import sys
from repro.serve import ForecastClient

address = open(sys.argv[1], encoding="utf-8").read().strip()
with ForecastClient(address, wait_ready_s=10.0) as client:
    assert client.ping("ci")["pong"] == "ci"
    rows = client.query(0)
    assert rows.shape[0] == 1 and rows.ndim == 4, rows.shape
    prediction, index, generation = client.forecast()
    values, cell_index, _ = client.forecast(cells=[(0, 0)])
    assert cell_index == index
    assert (values[0] == prediction[:, 0, 0]).all()
    snap = client.stats()
    assert snap["result_cache"]["misses"] >= 1
    client.shutdown()
print("socket round trip OK")
PYEOF
wait "$SERVE_PID" || { echo "server exited non-zero"; cat "$SERVE_DIR/server.log"; exit 1; }
grep -q "drained cleanly" "$SERVE_DIR/server.log"
rm -rf "$SERVE_DIR"

echo "== streaming suite =="
# Disruption-tolerant runtime: ingest ordering/quarantine/gaps, drift
# vs spike, degradation ladder, warm retrain + hot swap, clean-stream
# bit-identity (tests/stream/, docs/streaming.md).
python -m pytest tests/stream tests/serve/test_window_cache.py -q

echo "== concurrency sanitizer pass (serve + parallel + stream) =="
# Re-run the threaded suites with runtime lock instrumentation: the
# conftest gate fails the run on any dynamic lock-order inversion,
# fork-while-locked, long hold, or thread leaked past shutdown.
# Schedule-perturbing stress sleeps only widen races when another
# runnable thread exists, so the stress knob self-disables on
# single-CPU hosts (the plain sanitizer detectors still run there).
if [ "$(nproc)" -ge 2 ]; then
    REPRO_TSAN=1 REPRO_TSAN_STRESS=1 REPRO_TSAN_SEED=0 \
        python -m pytest tests/serve tests/parallel tests/stream -q
else
    echo "sanitizer stress mode disabled: schedule perturbation needs" \
         ">= 2 CPUs to create real interleavings ($(nproc) CPU host);" \
         "running detectors without stress sleeps"
    REPRO_TSAN=1 python -m pytest tests/serve tests/parallel tests/stream -q
fi

echo "== sanitizer-overhead bench (smoke) =="
# Gates that the disabled sanitizer factories cost <= 5% vs raw
# threading primitives on the serve and stream workloads; the
# wall-clock ratio gate self-disables on single-CPU hosts and records
# the reason in the snapshot instead.
python benchmarks/bench_concurrency_overhead.py --mode smoke \
    --out BENCH_concurrency.json

echo "== stream-robustness bench (smoke) =="
# Always gates the clean-stream identity (live model forecasts ==
# offline build_samples -> predict_scaled, max|err| exactly 0) and the
# level-shift recovery contract (adaptive recovers to <= 1.1x its
# pre-disruption nrmse while the frozen arm stays broken); the retrain
# wall-clock budget self-disables on single-CPU hosts and records the
# reason in the snapshot instead.
python benchmarks/bench_stream_robustness.py --mode smoke \
    --out BENCH_stream.json

echo "ci_check: OK"
