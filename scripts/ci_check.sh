#!/usr/bin/env bash
# CI gate: tier-1 tests plus a smoke-mode profiling-overhead benchmark,
# so every run produces a fresh perf snapshot (BENCH_profiling.json).
#
#   scripts/ci_check.sh            # from anywhere inside the repo
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== profiling-overhead bench (smoke) =="
python benchmarks/bench_profile_overhead.py --smoke --out BENCH_profiling.json

echo "ci_check: OK"
