"""Stream robustness benchmark: clean-stream identity + drift recovery.

Standalone harness (not a pytest-benchmark file): it replays the
shared disruption scenarios of :mod:`repro.stream.simulate` through
:class:`repro.stream.StreamRuntime` and gates the two halves of the
streaming contract:

- **Clean-stream correctness (always enforced)** — on an in-order,
  complete, uncorrupted stream every live forecast must be
  *bit-identical* (atol 0) to the offline ``build_samples`` ->
  ``Trainer.predict_scaled`` path on the same interval.  Both arms run
  the same code on the same float64 raw frames, so the allowed
  difference is exactly zero — any drift here means the rolling
  windows and the offline windows disagree.
- **Adaptation recovery (always enforced)** — on the ``level_shift``
  scenario (demand steps to 1.6x mid-stream) the adaptive runtime must
  recover: its recovery-segment normalized RMSE must come back to
  within ``--max-recovery-ratio`` (default 1.10) of its pre-disruption
  normalized RMSE, while the frozen arm — identical weights, no
  adaptation — must remain visibly broken (ratio >=
  ``--min-frozen-ratio``, default 1.25).  Accuracy is not wall-clock,
  so these gates hold on any host.
- **Retrain budget (hardware-gated)** — each warm retrain must finish
  inside ``--max-retrain-s`` wall-clock seconds.  Timing is physics:
  on a single-CPU host the number is still measured and recorded, but
  the gate is skipped with an explicit ``skipped_reason`` (mirroring
  ``BENCH_serve.json``).

``--mode full`` additionally replays the fault-injection scenarios
(late / dropout / corrupt / outage) and records their telemetry; any
crash there fails the run (zero-crash contract), but their numbers are
descriptive, not gated.

Emits a JSON snapshot (default ``BENCH_stream.json``)::

    PYTHONPATH=src python benchmarks/bench_stream_robustness.py --mode smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np

from repro.data.windows import build_samples
from repro.profiling import OpProfiler, profile
from repro.stream import simulate as sim
from repro.training import Trainer

FAULT_SCENARIOS = ("late", "dropout", "corrupt", "outage")


def run_clean(seed=0, epochs=8):
    """Clean-stream replay vs the offline pipeline; atol is zero."""
    scenario = sim.make_scenario("clean", seed=seed)
    state = sim.train_offline(scenario, epochs=epochs, seed=seed)
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as ckpt:
        runtime = sim.build_runtime(scenario, state, adaptive=True,
                                    checkpoint_dir=ckpt, seed=seed)
        with runtime:
            results = sim.run_scenario(scenario, runtime)
            telemetry = runtime.telemetry()

    reference = sim.make_model(scenario.grid, scenario.periodicity, seed=seed)
    reference.load_state_dict(state)
    trainer = Trainer(reference)
    scaled = sim.fit_scaler(scenario).transform(scenario.flows)
    scaler = sim.fit_scaler(scenario)
    max_err = 0.0
    model_ticks = 0
    for result, _ in results:
        if result.source != "model":
            continue
        model_ticks += 1
        batch = build_samples(scaled, scenario.periodicity, [result.index])
        offline = scaler.inverse_transform(
            np.asarray(trainer.predict_scaled(batch))[0])
        max_err = max(max_err, float(np.abs(result.flows - offline).max()))
    return {
        "ticks": len(results),
        "model_ticks": model_ticks,
        "retrains": telemetry["retrains"],
        "max_abs_error_vs_offline": max_err,
        "atol": 0.0,
        "pass": (max_err == 0.0 and model_ticks == len(results)
                 and len(results) > 0),
    }


def run_level_shift(seed=0, epochs=8):
    """Adaptive vs frozen arms on the level-shift scenario.

    Both arms re-seed fresh models from one offline ``state_dict``, so
    the only difference between them is the adaptation machinery.
    """
    scenario = sim.make_scenario("level_shift", seed=seed)
    state = sim.train_offline(scenario, epochs=epochs, seed=seed)
    arms = {}
    profiler = OpProfiler()
    for arm, adaptive in (("adaptive", True), ("frozen", False)):
        with tempfile.TemporaryDirectory(prefix="bench-stream-") as ckpt:
            runtime = sim.build_runtime(scenario, state, adaptive=adaptive,
                                        checkpoint_dir=ckpt, seed=seed)
            with runtime, profile(profiler):
                results = sim.run_scenario(scenario, runtime)
                telemetry = runtime.telemetry()
        report = sim.evaluate_results(scenario, results)
        pre, recovery = report["pre"], report["recovery"]
        ratio = (recovery["nrmse"] / pre["nrmse"]
                 if pre and recovery else float("nan"))
        counters = profiler.as_dict()
        arms[arm] = {
            "pre_nrmse": pre["nrmse"] if pre else None,
            "post_nrmse": report["post"]["nrmse"] if report["post"] else None,
            "recovery_nrmse": recovery["nrmse"] if recovery else None,
            "recovery_ratio": ratio,
            "sources": report["sources"],
            "drifts": len(telemetry["drift_events"]),
            "retrains": telemetry["retrains"],
            "retrain_failures": len(telemetry["retrain_failures"]),
            "retrain_s_total": counters["stream_retrain_s"],
            "fallbacks": telemetry["fallbacks"],
        }
        profiler.reset()
    return arms


def run_fault(name, seed=0, epochs=8):
    """Replay one fault scenario; any exception fails the bench."""
    scenario = sim.make_scenario(name, seed=seed)
    state = sim.train_offline(scenario, epochs=epochs, seed=seed)
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as ckpt:
        runtime = sim.build_runtime(scenario, state, adaptive=True,
                                    checkpoint_dir=ckpt, seed=seed)
        with runtime:
            results = sim.run_scenario(scenario, runtime)
            telemetry = runtime.telemetry()
    report = sim.evaluate_results(scenario, results)
    return {
        "description": scenario.description,
        "ticks_forecast": len(results),
        "sources": report["sources"],
        "ingest": telemetry["ingest"]["counts"],
        "masked_cells": telemetry["masked_cells"],
        "retrains": telemetry["retrains"],
        "fallbacks": telemetry["fallbacks"],
        "degraded_at_end": telemetry["serve"]["degraded"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full",
                        help="smoke: gated scenarios only; for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epochs", type=int, default=8,
                        help="offline pre-training epochs per scenario")
    parser.add_argument("--out", default="BENCH_stream.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--max-recovery-ratio", type=float, default=1.10,
                        help="adaptive arm: recovery nrmse / pre nrmse "
                             "must be <= this (default: 1.10)")
    parser.add_argument("--min-frozen-ratio", type=float, default=1.25,
                        help="frozen arm: recovery nrmse / pre nrmse "
                             "must be >= this (default: 1.25)")
    parser.add_argument("--max-retrain-s", type=float, default=60.0,
                        help="wall-clock budget per warm retrain "
                             "(enforced only on hosts with >= 2 CPUs)")
    args = parser.parse_args(argv)
    cpu_count = os.cpu_count() or 1

    clean = run_clean(seed=args.seed, epochs=args.epochs)
    shift = run_level_shift(seed=args.seed, epochs=args.epochs)

    faults = {}
    if args.mode == "full":
        for name in FAULT_SCENARIOS:
            faults[name] = run_fault(name, seed=args.seed, epochs=args.epochs)

    adaptive, frozen = shift["adaptive"], shift["frozen"]
    retrains = max(1, adaptive["retrains"])
    per_retrain_s = adaptive["retrain_s_total"] / retrains
    timing_enforced = cpu_count >= 2
    gates = {
        "clean_identity": {
            "enforced": True,
            "max_abs_error": clean["max_abs_error_vs_offline"],
            "atol": 0.0,
            "pass": clean["pass"],
        },
        "recovery": {
            "enforced": True,
            "adaptive_ratio": adaptive["recovery_ratio"],
            "max_recovery_ratio": args.max_recovery_ratio,
            "frozen_ratio": frozen["recovery_ratio"],
            "min_frozen_ratio": args.min_frozen_ratio,
            "pass": (adaptive["recovery_ratio"] <= args.max_recovery_ratio
                     and frozen["recovery_ratio"] >= args.min_frozen_ratio
                     and adaptive["retrains"] >= 1),
        },
        "retrain_budget": {
            "required_s": args.max_retrain_s,
            "actual_s_per_retrain": per_retrain_s,
            "enforced": timing_enforced,
            "skipped_reason": None if timing_enforced else
            "wall-clock retrain budget needs >= 2 CPUs (the fit contends "
            f"with everything else on {cpu_count} CPU)",
        },
    }

    snapshot = {
        "bench": "stream_robustness",
        "mode": args.mode,
        "seed": args.seed,
        "cpu_count": cpu_count,
        "epochs": args.epochs,
        "clean": clean,
        "level_shift": shift,
        "faults": faults,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    print(f"clean identity: {clean['model_ticks']}/{clean['ticks']} model "
          f"ticks, max|err| {clean['max_abs_error_vs_offline']:.3g} "
          f"{'OK' if clean['pass'] else 'FAIL'}")
    for arm in ("adaptive", "frozen"):
        a = shift[arm]
        print(f"level_shift[{arm}]: pre {a['pre_nrmse']:.4f}  recovery "
              f"{a['recovery_nrmse']:.4f}  ratio {a['recovery_ratio']:.3f}  "
              f"retrains {a['retrains']}")
    for name, fault in faults.items():
        print(f"fault[{name}]: {fault['ticks_forecast']} ticks, sources "
              f"{fault['sources']}, ingest {fault['ingest']}")
    print(f"wrote {args.out}")

    failed = False
    if not gates["clean_identity"]["pass"]:
        print("FAIL: clean-stream forecasts diverge from the offline "
              "pipeline (the bit-identity contract)", file=sys.stderr)
        failed = True
    if not gates["recovery"]["pass"]:
        print(f"FAIL: recovery gate — adaptive ratio "
              f"{adaptive['recovery_ratio']:.3f} (need <= "
              f"{args.max_recovery_ratio:g}), frozen ratio "
              f"{frozen['recovery_ratio']:.3f} (need >= "
              f"{args.min_frozen_ratio:g}), retrains "
              f"{adaptive['retrains']} (need >= 1)", file=sys.stderr)
        failed = True
    if timing_enforced and per_retrain_s > args.max_retrain_s:
        print(f"FAIL: warm retrain took {per_retrain_s:.1f} s > budget "
              f"{args.max_retrain_s:.1f} s", file=sys.stderr)
        failed = True
    elif not timing_enforced:
        print("retrain budget gate skipped: "
              f"{gates['retrain_budget']['skipped_reason']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
