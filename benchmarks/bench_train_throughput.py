"""Training-throughput benchmark: precision policy + in-place optimizers.

Standalone harness (not a pytest-benchmark file): it measures MUSE-Net
training steps/sec and peak tape bytes across four arms —

- ``float64-baseline`` — float64 policy with :class:`ReferenceAdam`,
  the seed repo's allocating textbook kernel (the pre-PR hot path);
- ``float32``          — float32 policy, still the allocating kernel
  (isolates what halving element width buys);
- ``float32-inplace``  — float32 policy with the in-place
  :class:`~repro.optim.Adam` (the eager optimized path);
- ``compiled``         — float32 + in-place Adam stepping through
  :class:`repro.compile.StepCompiler`: the graph is recorded once and
  every timed step replays a fused in-place kernel schedule over the
  retained buffers (zero forward allocations).

Each arm builds its model/data under a scoped
:func:`repro.tensor.default_dtype` policy, times steps unprofiled
(median), then re-runs a profiled 2-step window with the trainer's real
loss-tensor lifetime to read peak tape bytes and the optimizer's
allocation counters.

On top of the three precision arms, a *guarded* measurement re-times
the optimized path with the fault-tolerance machinery on — the
divergence sentinel checking every step, plus an atomic checksummed
checkpoint amortized at an every-``CHECKPOINT_EVERY_STEPS``-steps
cadence — and reports the per-step overhead percentage
(``sentinel_overhead_pct``), which docs/robustness.md bounds at 3%.

Emits a JSON snapshot (default ``BENCH_throughput.json``)::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke

``--min-speedup X`` makes the exit code a CI gate: nonzero unless
``float32-inplace`` is at least ``X`` times the baseline's steps/sec.
``--max-overhead-pct Y`` additionally fails the run when the guarded
path's per-step overhead exceeds ``Y`` percent.

The compiled arm carries two gates of its own:

- **bit-equivalence (always on)** — two identical seed-0 setups run
  the same steps eagerly and compiled; every per-step (loss, reg) pair,
  every final parameter, and every final gradient must match *exactly*
  (``atol=0``), or the bench exits nonzero;
- ``--min-compiled-speedup X`` — compiled steps/sec must reach ``X``
  times the eager ``float32-inplace`` arm.  On single-CPU hosts this
  gate self-disables (timings there are dominated by scheduler noise)
  and the snapshot records the reason instead.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
from time import perf_counter

import numpy as np

from repro.compile import StepCompiler
from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.optim import Adam, ReferenceAdam, clip_grad_norm
from repro.profiling import OpProfiler, profile
from repro.tensor import default_dtype
from repro.training.checkpoint import CheckpointManager
from repro.training.sentinel import DivergenceSentinel

ARMS = ("float64-baseline", "float32", "float32-inplace")

#: Warm calls before timing the compiled arm: plan build (eager),
#: shadow validation (eager), and one trusted replay.
COMPILED_WARMUP_STEPS = 3

# Amortization cadence for the guarded arm's checkpoint cost: one
# atomic save per this many steps.  A paper-profile epoch is several
# hundred optimizer steps, and periodic checkpointing defaults to an
# every-epoch cadence, so 100 steps/save is the conservative end of
# real long-run usage (short ci runs barely checkpoint at all).
CHECKPOINT_EVERY_STEPS = 100


def arm_spec(arm):
    """Map an arm name to its (numpy dtype, optimizer class)."""
    return {
        "float64-baseline": (np.float64, ReferenceAdam),
        "float32": (np.float32, ReferenceAdam),
        "float32-inplace": (np.float32, Adam),
    }[arm]


def build_setup(dtype, optimizer_cls, seed=0):
    """Small-scale dataset + matched MUSE-Net under a dtype policy.

    Uses the "paper" profile's model geometry on the small dataset
    scale: at tiny scale steps are python-overhead-bound and precision
    barely moves the needle; at small scale the numpy kernels dominate
    and the measurement reflects real training runs.
    """
    with default_dtype(dtype):
        dataset = load_dataset("nyc-bike", scale="small")
        data = prepare_forecast_data(dataset, max_train_samples=32,
                                     max_test_samples=12)
        config = MuseConfig.for_data(
            data, rep_channels=16, latent_interactive=32, res_blocks=2,
            plus_channels=4, decoder_hidden=64, seed=seed,
        )
        model = MUSENet(config)
    optimizer = optimizer_cls(model.parameters(), lr=1e-3)
    batch = data.train.take(range(8))  # paper batch size
    return model, optimizer, batch


def training_step(model, optimizer, batch, rng):
    """One full trainer-equivalent step; returns the loss tensor."""
    optimizer.zero_grad()
    breakdown, _ = model.training_loss(batch, rng=rng)
    breakdown.total.backward()
    clip_grad_norm(model.parameters(), 5.0)
    optimizer.step()
    return breakdown.total


def time_arm(arm, steps):
    """Median steps/sec for one arm, unprofiled, under its dtype policy."""
    dtype, optimizer_cls = arm_spec(arm)
    model, optimizer, batch = build_setup(dtype, optimizer_cls)
    rng = np.random.default_rng(0)
    with default_dtype(dtype):
        training_step(model, optimizer, batch, rng)  # warm-up (lazy state)
        times = []
        for _ in range(steps):
            start = perf_counter()
            training_step(model, optimizer, batch, rng)
            times.append(perf_counter() - start)
    return 1.0 / statistics.median(times)


def compiled_step(compiler, parameters, optimizer, batch):
    """One trainer-equivalent step through the StepCompiler."""
    loss, reg = compiler.step(batch)
    clip_grad_norm(parameters, 5.0)
    optimizer.step()
    return loss, reg


def time_compiled(steps):
    """Median steps/sec for the compiled arm, plus its plan report.

    The :data:`COMPILED_WARMUP_STEPS` warm calls (plan build, shadow
    validation, first trusted replay) run before the timer starts —
    they are one-time costs amortized over a training run, and the
    snapshot reports the build time separately via the profiler.
    """
    model, optimizer, batch = build_setup(np.float32, Adam)
    parameters = model.parameters()
    rng = np.random.default_rng(0)
    prof = OpProfiler()
    with default_dtype(np.float32):
        compiler = StepCompiler(model, optimizer, rng)
        with profile(prof):
            for _ in range(COMPILED_WARMUP_STEPS):
                compiled_step(compiler, parameters, optimizer, batch)
        times = []
        with profile(prof):
            for _ in range(steps):
                start = perf_counter()
                compiled_step(compiler, parameters, optimizer, batch)
                times.append(perf_counter() - start)
        timed_alloc = int(prof.forward_alloc_bytes)
    report = compiler.report()
    measured = {
        "steps_per_sec": 1.0 / statistics.median(times),
        # Forward-pass bytes allocated across ALL profiled steps,
        # including the eager build/shadow warmup; and across just the
        # timed (post-warmup) window, whose contract is zero.
        "forward_alloc_bytes_with_warmup": timed_alloc,
        "compile_plan_s": float(prof.compile_plan_s),
        "compile": report,
    }
    # Re-measure the timed window alone for the zero-allocation claim.
    prof2 = OpProfiler()
    with default_dtype(np.float32):
        with profile(prof2):
            for _ in range(2):
                compiled_step(compiler, parameters, optimizer, batch)
    measured["forward_alloc_bytes_per_step_after_warmup"] = int(
        prof2.forward_alloc_bytes) // 2
    return measured


def check_compiled_equivalence(steps):
    """Bit-equivalence gate: eager vs compiled runs must match exactly.

    Two identical seed-0 setups take the same ``steps`` optimizer steps
    — one eagerly, one through the StepCompiler (build, shadow, then
    trusted replays).  Per-step losses, final parameters, and final
    gradients are compared at ``atol=0``.  Returns a JSON-able verdict.
    """
    steps = max(steps, COMPILED_WARMUP_STEPS + 1)  # ensure replays run

    def run(compiled):
        model, optimizer, batch = build_setup(np.float32, Adam)
        parameters = model.parameters()
        rng = np.random.default_rng(0)
        losses = []
        with default_dtype(np.float32):
            compiler = (StepCompiler(model, optimizer, rng)
                        if compiled else None)
            for _ in range(steps):
                if compiler is not None:
                    losses.append(compiled_step(compiler, parameters,
                                                optimizer, batch))
                else:
                    loss = training_step(model, optimizer, batch, rng)
                    losses.append((loss.item(), None))
        params = [p.data.copy() for p in parameters]
        grads = [None if p.grad is None else p.grad.copy()
                 for p in parameters]
        report = compiler.report() if compiler is not None else None
        return losses, params, grads, report

    eager_losses, eager_params, eager_grads, _ = run(compiled=False)
    comp_losses, comp_params, comp_grads, report = run(compiled=True)
    losses_equal = all(a[0] == b[0] for a, b in
                       zip(eager_losses, comp_losses))
    params_equal = all(np.array_equal(a, b, equal_nan=True)
                       for a, b in zip(eager_params, comp_params))
    grads_equal = all(
        (a is None and b is None)
        or (a is not None and b is not None
            and np.array_equal(a, b, equal_nan=True))
        for a, b in zip(eager_grads, comp_grads))
    return {
        "steps": steps,
        "losses_equal": losses_equal,
        "params_equal": params_equal,
        "grads_equal": grads_equal,
        "compiled_steps_replayed": report["compiled_steps"],
        "ok": bool(losses_equal and params_equal and grads_equal
                   and report["compiled_steps"] > 0),
    }


def time_guarded(steps):
    """Overhead of the fault-tolerant path on the optimized arm.

    Interleaves plain and guarded steps on one model so machine-load
    drift hits both sides equally: each iteration times a plain
    float32-inplace step, then the trainer's exact guarded sequence
    (sentinel scan before the update, its grad norm reused by the
    clip).  An atomic checksummed checkpoint save is measured
    separately and amortized at the :data:`CHECKPOINT_EVERY_STEPS`
    cadence.  Returns a dict with the guarded steps/sec, the paired
    overhead percentage, and the ingredients.
    """
    dtype, optimizer_cls = arm_spec("float32-inplace")
    model, optimizer, batch = build_setup(dtype, optimizer_cls)
    sentinel = DivergenceSentinel(policy="raise")
    parameters = model.parameters()
    rng = np.random.default_rng(0)
    with default_dtype(dtype):
        training_step(model, optimizer, batch, rng)  # warm-up (lazy state)
        plain_times, guarded_times = [], []
        for step in range(steps):
            start = perf_counter()
            training_step(model, optimizer, batch, rng)
            plain_times.append(perf_counter() - start)

            start = perf_counter()
            optimizer.zero_grad()
            breakdown, _ = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            sentinel.check(breakdown.total.item(), parameters, step, 0)
            clip_grad_norm(parameters, 5.0, norm=sentinel.last_norm)
            optimizer.step()
            guarded_times.append(perf_counter() - start)
    with tempfile.TemporaryDirectory() as tmp:
        manager = CheckpointManager(tmp, keep_last=2)
        manager.save(model, optimizer, epoch=0)  # warm-up (dir, page cache)
        save_times = []
        for epoch in range(1, 6):  # rotation included: the real cadence cost
            start = perf_counter()
            manager.save(model, optimizer, epoch=epoch)
            save_times.append(perf_counter() - start)
        save_seconds = statistics.median(save_times)
    plain_step = statistics.median(plain_times)
    guarded_step = (statistics.median(guarded_times)
                    + save_seconds / CHECKPOINT_EVERY_STEPS)
    return {
        "steps_per_sec": 1.0 / guarded_step,
        "overhead_pct": 100.0 * (guarded_step / plain_step - 1.0),
        "checkpoint_save_seconds": save_seconds,
        "checkpoint_every_steps": CHECKPOINT_EVERY_STEPS,
    }


def measure_arm(arm):
    """Peak tape bytes + optimizer allocation counters over 2 steps.

    Step 1's loss tensor stays referenced through step 2's forward (the
    trainer's actual variable lifetime), so the peak reflects the real
    overlap of consecutive graphs.
    """
    dtype, optimizer_cls = arm_spec(arm)
    model, optimizer, batch = build_setup(dtype, optimizer_cls)
    rng = np.random.default_rng(0)
    prof = OpProfiler()
    with default_dtype(dtype):
        training_step(model, optimizer, batch, rng)  # warm-up (lazy state)
        with profile(prof):
            held = training_step(model, optimizer, batch, rng)
            held = training_step(model, optimizer, batch, rng)
        del held
    return {
        "peak_tape_bytes": int(prof.peak_tape_bytes),
        "optimizer_alloc_bytes": int(prof.optimizer_alloc_bytes),
        "optimizer_alloc_bytes_per_step": int(optimizer.last_step_alloc_bytes),
        "grad_alloc_bytes": int(prof.grad_alloc_bytes),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="few steps; for CI smoke runs")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per arm (overrides --smoke)")
    parser.add_argument("--out", default="BENCH_throughput.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail (exit 1) unless float32-inplace reaches "
                             "this steps/sec multiple of the baseline")
    parser.add_argument("--max-overhead-pct", type=float, default=None,
                        help="fail (exit 1) when the sentinel + periodic-"
                             "checkpoint overhead exceeds this percentage")
    parser.add_argument("--min-compiled-speedup", type=float, default=None,
                        help="fail (exit 1) unless the compiled arm reaches "
                             "this steps/sec multiple of float32-inplace "
                             "(self-disables on single-CPU hosts)")
    args = parser.parse_args(argv)
    steps = args.steps if args.steps is not None else (3 if args.smoke else 15)

    results = {}
    for arm in ARMS:
        results[arm] = {"steps_per_sec": time_arm(arm, steps)}
        results[arm].update(measure_arm(arm))
    results["compiled"] = time_compiled(steps)

    baseline = results["float64-baseline"]
    optimized = results["float32-inplace"]
    guarded = time_guarded(steps)
    equivalence = check_compiled_equivalence(steps)
    speedup = optimized["steps_per_sec"] / baseline["steps_per_sec"]
    compiled_speedup = (results["compiled"]["steps_per_sec"]
                        / optimized["steps_per_sec"])
    tape_reduction_pct = 100.0 * (
        1.0 - optimized["peak_tape_bytes"] / baseline["peak_tape_bytes"])
    overhead_pct = guarded["overhead_pct"]

    cpu_count = os.cpu_count() or 1
    compiled_gate = {"enabled": args.min_compiled_speedup is not None,
                     "min_speedup": args.min_compiled_speedup}
    if compiled_gate["enabled"] and cpu_count <= 1:
        compiled_gate["enabled"] = False
        compiled_gate["reason"] = (
            f"host has {cpu_count} CPU: step timings are dominated by "
            "scheduler noise, so the speedup gate is informational only "
            "(the bit-equivalence gate still applies)")

    snapshot = {
        "bench": "train_throughput",
        "mode": "smoke" if args.smoke else "full",
        "steps_timed": steps,
        "arms": results,
        "guarded": guarded,
        "compiled_equivalence": equivalence,
        "compiled_speedup_gate": compiled_gate,
        "speedup_float32_inplace_vs_float64": speedup,
        "speedup_compiled_vs_float32_inplace": compiled_speedup,
        "peak_tape_reduction_pct": tape_reduction_pct,
        "sentinel_overhead_pct": overhead_pct,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    for arm in ARMS:
        r = results[arm]
        print(f"{arm:18s} {r['steps_per_sec']:7.2f} steps/s  "
              f"tape peak {r['peak_tape_bytes'] / 2**20:7.2f} MiB  "
              f"opt alloc/step {r['optimizer_alloc_bytes_per_step'] / 2**10:8.1f} KiB")
    comp = results["compiled"]
    print(f"{'compiled':18s} {comp['steps_per_sec']:7.2f} steps/s  "
          f"arena {comp['compile']['arena_bytes'] / 2**20:7.2f} MiB  "
          f"fwd alloc/step {comp['forward_alloc_bytes_per_step_after_warmup']} B  "
          f"plan built in {comp['compile_plan_s'] * 1e3:.1f} ms")
    print(f"speedup (float32-inplace vs float64-baseline): {speedup:.2f}x, "
          f"peak tape {tape_reduction_pct:.1f}% lower")
    print(f"speedup (compiled vs float32-inplace): {compiled_speedup:.2f}x")
    print(f"compiled bit-equivalence vs eager over {equivalence['steps']} "
          f"steps ({equivalence['compiled_steps_replayed']} replayed): "
          f"{'OK' if equivalence['ok'] else 'MISMATCH'}")
    print(f"guarded (sentinel + ckpt/{guarded['checkpoint_every_steps']} steps): "
          f"{guarded['steps_per_sec']:.2f} steps/s, "
          f"overhead {overhead_pct:.2f}% "
          f"(one save: {guarded['checkpoint_save_seconds'] * 1e3:.1f} ms)")
    print(f"wrote {args.out}")

    failed = False
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    if args.max_overhead_pct is not None and overhead_pct > args.max_overhead_pct:
        print(f"FAIL: fault-tolerance overhead {overhead_pct:.2f}% above "
              f"allowed {args.max_overhead_pct:.2f}%", file=sys.stderr)
        failed = True
    if not equivalence["ok"]:
        print("FAIL: compiled arm diverged from eager (bit-equivalence "
              "gate, atol 0) — see compiled_equivalence in the snapshot",
              file=sys.stderr)
        failed = True
    if compiled_gate["enabled"] and compiled_speedup < args.min_compiled_speedup:
        print(f"FAIL: compiled speedup {compiled_speedup:.2f}x below "
              f"required {args.min_compiled_speedup:.2f}x", file=sys.stderr)
        failed = True
    elif not compiled_gate["enabled"] and compiled_gate.get("reason"):
        print(f"compiled speedup gate disabled: {compiled_gate['reason']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
