"""Benchmark: regenerate Table IV (peak vs non-peak)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table4


def test_table4_peak(benchmark):
    result = run_once(benchmark, run_table4, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for dataset, table in result.reports.items():
        assert "MUSE-Net" in table
        for method, halves in table.items():
            assert np.isfinite(halves["peak"].outflow_rmse)
            assert np.isfinite(halves["non_peak"].outflow_rmse)
        # Shape claim: peak traffic is harder (higher RMSE) than
        # non-peak for the methods, reflecting the paper's motivation.
        muse = table["MUSE-Net"]
        assert muse["peak"].outflow_rmse > muse["non_peak"].outflow_rmse * 0.5
