"""Benchmark: regenerate Fig. 6 (interactive rep vs sub-series similarity)."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig6


def test_fig6_similarity(benchmark):
    result = run_once(benchmark, run_fig6, profile="ci")
    benchmark.extra_info["result"] = str(result)

    # Shape claim: the interactive representation carries information
    # from every sub-series — most heatmap entries above zero (the
    # paper's Fig. 6 observation).
    for key in ("c", "p", "t"):
        assert result.positive_fraction(key) > 0.8, key
        assert result.mean_similarity(key) > 0.0, key
