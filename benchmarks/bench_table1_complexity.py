"""Benchmark: regenerate Table I (complexity comparison)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table1


def test_table1_complexity(benchmark):
    result = run_once(benchmark, run_table1, profile="ci")
    benchmark.extra_info["result"] = str(result)

    entries = {e.method: e for e in result.analytic}
    # Shape claims from the paper's Table I discussion.
    assert entries["MUSE-Net"].time_value == entries["DeepSTN+"].time_value
    assert entries["MUSE-Net"].time_value < entries["GMAN"].time_value
    assert set(result.measured) == {"DeepSTN+", "DMSTGCN", "GMAN", "MUSE-Net"}
    for params, seconds in result.measured.values():
        assert params > 0
        assert np.isfinite(seconds)
