"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the CI profile
(tiny datasets, short training) and records the rendered result in
``benchmark.extra_info["result"]`` so the regenerated rows are
inspectable from the benchmark JSON.  Absolute errors differ from the
paper (synthetic substrate, CPU budgets); the asserted invariants are
the *shape* claims EXPERIMENTS.md tracks.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
