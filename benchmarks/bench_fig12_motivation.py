"""Benchmarks: regenerate Figs. 1-2 (the paper's motivation phenomena)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_fig1, run_fig2


def test_fig1_distribution_shift(benchmark):
    result = run_once(benchmark, run_fig1, seed=0)
    benchmark.extra_info["result"] = str(result)

    # Level shift: the pre/post regime distributions are statistically
    # distinguishable.
    assert result.level_shift_ks > 0.1
    assert result.level_shift_pvalue < 0.01
    # Point shift: the event is a many-sigma outlier in its region.
    assert result.point_shift_zscore > 5.0


def test_fig2_interaction_shift(benchmark):
    result = run_once(benchmark, run_fig2, seed=0)
    benchmark.extra_info["result"] = str(result)

    for trace in result.correlations.values():
        assert np.all(np.isfinite(trace))
        assert np.all(np.abs(trace) <= 1.0 + 1e-9)
    # The interaction shifts: which sub-series best tracks the future
    # changes over timeslots (the figure's whole point).
    assert result.dominant_switches() >= 1
