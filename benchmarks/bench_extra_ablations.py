"""Benchmarks: extension ablations for DESIGN.md §4 design choices."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import (
    run_fusion_ablation,
    run_genweight_ablation,
    run_pull_mode_ablation,
)


def test_fusion_ablation(benchmark):
    result = run_once(benchmark, run_fusion_ablation, profile="ci")
    benchmark.extra_info["result"] = str(result)

    assert set(result.rmse) == {"resplus", "conv", "none"}
    for out_rmse, in_rmse in result.rmse.values():
        assert np.isfinite(out_rmse)
        assert np.isfinite(in_rmse)
    # Shape claim: some spatial mixing beats none (within a small
    # tolerance at CI scale, where the tiny grid limits the effect).
    spatial_best = min(result.rmse["resplus"][0], result.rmse["conv"][0])
    assert spatial_best <= result.rmse["none"][0] * 1.2


def test_genweight_ablation(benchmark):
    result = run_once(benchmark, run_genweight_ablation, profile="ci")
    benchmark.extra_info["result"] = str(result)

    assert set(result.rmse) == {0.0, 0.05, 1.0}
    for out_rmse, _in_rmse in result.rmse.values():
        assert np.isfinite(out_rmse)
    # Reproduction finding (see DESIGN.md §4): at reduced scale the
    # rebalanced objective is not worse than the paper-weighted one.
    assert result.rmse[0.05][0] <= result.rmse[1.0][0] * 1.25


def test_pull_mode_ablation(benchmark):
    result = run_once(benchmark, run_pull_mode_ablation, profile="ci", steps=25)
    benchmark.extra_info["result"] = str(result)

    # The literal Eq. (29) objective runs away (strongly negative),
    # while the alternating stop-gradient treatment stays bounded —
    # the motivation for the implementation choice.
    assert result.diverged("joint")
    assert not result.diverged("alternating")
