"""Serving latency benchmark: micro-batched throughput + correctness.

Standalone harness (not a pytest-benchmark file): it replays the test
split as single-sample forecast queries from concurrent client threads
through :class:`repro.serve.ForecastServer` at three concurrency arms —
1 (no coalescing possible), 8, and 32 — and records p50/p99 latency,
queue wait, and queries/sec for each.

Two gates:

- **Correctness (always enforced)** — the served rows must equal the
  offline evaluation path (``Trainer.predict_scaled``) within float
  summation tolerance (1e-6 for float32, 1e-12 for float64), for a
  batching-hostile request mix (odd counts, coalesced windows, an
  oversized request).  This is the part of the serving contract that
  holds on any host.
- **Latency (hardware-gated)** — p99 latency at concurrency 8 must
  stay under ``--max-p99-ms``.  Wall-clock is physics: on a single-CPU
  host the number is still measured and recorded, but the gate is
  skipped with an explicit ``skipped_reason`` in the snapshot instead
  of failing CI (mirroring ``BENCH_parallel.json``).

Emits a JSON snapshot (default ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py --mode smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.serve import ForecastServer, ServeConfig
from repro.training import TrainConfig, Trainer

CONCURRENCIES = (1, 8, 32)


def build_setup(scale, seed=0):
    """Small MUSE-Net + prepared data, same shape as the parallel bench."""
    dataset = load_dataset("nyc-bike", scale=scale)
    data = prepare_forecast_data(dataset, max_train_samples=32,
                                 max_test_samples=12)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=seed,
    )
    return MUSENet(config), data


def replay(server, test, requests, concurrency):
    """Replay the test split as single-sample queries; returns the rows."""
    queries = [test.slice(i % len(test), i % len(test) + 1)
               for i in range(requests)]
    with ThreadPoolExecutor(max_workers=concurrency) as clients:
        rows = list(clients.map(server.forecast, queries))
    return np.concatenate(rows, axis=0)


def time_concurrency(model, data, concurrency, requests, max_batch,
                     max_wait_ms):
    """One arm: qps + latency percentiles at a fixed client concurrency."""
    config = ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms)
    with ForecastServer(model, config) as server:
        replay(server, data.test, min(requests, 4), concurrency)  # warm-up
        server.stats.reset_clock()
        replay(server, data.test, requests, concurrency)
        snap = server.snapshot()
    return {
        "concurrency": concurrency,
        "requests": snap["requests"],
        "batches": snap["batches"],
        "queries_per_sec": snap["queries_per_sec"],
        "latency_ms": snap["latency_ms"],
        "queue_wait_ms": snap["queue_wait_ms"],
        "batch_size": snap["batch_size"],
    }


def check_correctness(max_batch=8, concurrency=4):
    """Served rows vs ``Trainer.predict_scaled``, both precisions.

    The request mix is deliberately batching-hostile: 13 concurrent
    single-sample queries (odd coalescing windows against max_batch=8)
    plus one oversized 13-sample request (> max_batch, served alone in
    pool-chunked forwards).  Every row must still match the offline
    evaluation path bit-for-bit within float tolerance.
    """
    results = {}
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=13)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=0,
    )
    for dtype, atol in ((np.float32, 1e-6), (np.float64, 1e-12)):
        model = MUSENet(config)
        for param in model.parameters():
            param.data = param.data.astype(dtype)
        test = data.test.astype(dtype)
        offline = Trainer(model, TrainConfig(epochs=0)).predict_scaled(test)

        serve_config = ServeConfig(max_batch=max_batch, max_wait_ms=5.0)
        with ForecastServer(model, serve_config) as server:
            with ThreadPoolExecutor(max_workers=concurrency) as clients:
                singles = list(clients.map(
                    server.forecast,
                    [test.slice(i, i + 1) for i in range(len(test))]))
            oversized = server.forecast(test)  # 13 > max_batch
        served = np.concatenate(singles, axis=0)
        diff = max(float(np.abs(served - offline).max()),
                   float(np.abs(oversized - offline).max()))
        results[np.dtype(dtype).name] = {
            "max_abs_diff": diff, "atol": atol, "pass": diff <= atol}
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full",
                        help="smoke: tiny data, few requests; for CI")
    parser.add_argument("--requests", type=int, default=None,
                        help="queries per arm (overrides --mode default)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batching cap for the latency arms")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="batching window for the latency arms")
    parser.add_argument("--max-p99-ms", type=float, default=500.0,
                        help="required p99 latency at concurrency 8 "
                             "(enforced only on hosts with >= 2 CPUs)")
    args = parser.parse_args(argv)
    smoke = args.mode == "smoke"
    requests = args.requests if args.requests is not None else (
        16 if smoke else 96)
    scale = "tiny" if smoke else "small"
    cpu_count = os.cpu_count() or 1

    model, data = build_setup(scale)
    arms = {}
    for concurrency in CONCURRENCIES:
        arms[f"concurrency-{concurrency}"] = time_concurrency(
            model, data, concurrency, requests, args.max_batch,
            args.max_wait_ms)
    correctness = check_correctness(max_batch=args.max_batch)

    p99_at_8 = arms["concurrency-8"]["latency_ms"]["p99"]
    latency_enforced = cpu_count >= 2
    gates = {
        "correctness": {
            "enforced": True,
            "pass": all(r["pass"] for r in correctness.values()),
        },
        "latency": {
            "required_p99_ms": args.max_p99_ms,
            "actual_p99_ms": p99_at_8,
            "enforced": latency_enforced,
            "skipped_reason": None if latency_enforced else
            "wall-clock latency needs >= 2 CPUs (client threads contend "
            f"with the forward on {cpu_count} CPU)",
        },
    }

    snapshot = {
        "bench": "serve_latency",
        "mode": args.mode,
        "scale": scale,
        "cpu_count": cpu_count,
        "requests_per_arm": requests,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "arms": arms,
        "correctness": correctness,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    for name, arm in arms.items():
        lat = arm["latency_ms"]
        print(f"{name:15s} {arm['queries_per_sec']:8.1f} qps   "
              f"p50 {lat['p50']:7.2f} ms   p99 {lat['p99']:7.2f} ms   "
              f"mean batch {arm['batch_size']['mean']:.2f}")
    for name, r in correctness.items():
        print(f"correctness[{name}]: max |diff| {r['max_abs_diff']:.3g} "
              f"(atol {r['atol']:g}) {'OK' if r['pass'] else 'FAIL'}")
    print(f"wrote {args.out}")

    failed = False
    if not gates["correctness"]["pass"]:
        print("FAIL: served forecasts diverge from the offline "
              "evaluation path", file=sys.stderr)
        failed = True
    if latency_enforced and p99_at_8 > args.max_p99_ms:
        print(f"FAIL: p99 latency {p99_at_8:.1f} ms at concurrency 8 "
              f"above allowed {args.max_p99_ms:.1f} ms", file=sys.stderr)
        failed = True
    elif not latency_enforced:
        print(f"latency gate skipped: {gates['latency']['skipped_reason']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
