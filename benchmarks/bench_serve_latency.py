"""Serving latency benchmark: micro-batched throughput + correctness.

Standalone harness (not a pytest-benchmark file): it replays the test
split as single-sample forecast queries from concurrent client threads
through :class:`repro.serve.ForecastServer` at three concurrency arms —
1 (no coalescing possible), 8, and 32 — and records p50/p99 latency,
queue wait, and queries/sec for each.

Gates:

- **Correctness (always enforced)** — the served rows must equal the
  offline evaluation path (``Trainer.predict_scaled``) within float
  summation tolerance (1e-6 for float32, 1e-12 for float64), for a
  batching-hostile request mix (odd counts, coalesced windows, an
  oversized request).  This is the part of the serving contract that
  holds on any host.
- **Single-flight (always enforced)** — K concurrent same-tick clients
  through the generation-aware :class:`~repro.serve.ForecastCache`
  cost exactly **one** model forward, and all K responses are the same
  bits — equal to the uncached offline forward at **atol 0**.
- **Socket parity (always enforced)** — rows served through the
  :class:`~repro.serve.SocketFrontend` wire protocol equal the
  in-process rows at **atol 0** (the JSON float transport is exact).
- **Latency / cache speedup (hardware-gated)** — p99 latency at
  concurrency 8 must stay under ``--max-p99-ms``, and the cached
  same-tick arm must reach >= ``--min-cache-speedup`` x the uncached
  qps at concurrency 32.  Wall-clock is physics: on a single-CPU host
  the numbers are still measured and recorded, but the gates are
  skipped with an explicit ``skipped_reason`` in the snapshot instead
  of failing CI (mirroring ``BENCH_parallel.json``).

Emits a JSON snapshot (default ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py --mode smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ThreadPoolExecutor

from time import perf_counter

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.serve import ForecastClient, ForecastServer, ServeConfig, \
    SocketFrontend
from repro.training import TrainConfig, Trainer

CONCURRENCIES = (1, 8, 32)


class CountingModel:
    """Delegating wrapper counting ``predict`` calls (batcher thread only)."""

    def __init__(self, model):
        self._model = model
        self.forwards = 0

    def predict(self, batch):
        self.forwards += 1
        return self._model.predict(batch)

    def parameters(self):
        return self._model.parameters()

    def eval(self):
        self._model.eval()
        return self

    def load_state_dict(self, state):
        return self._model.load_state_dict(state)


def build_setup(scale, seed=0):
    """Small MUSE-Net + prepared data, same shape as the parallel bench."""
    dataset = load_dataset("nyc-bike", scale=scale)
    data = prepare_forecast_data(dataset, max_train_samples=32,
                                 max_test_samples=12)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=seed,
    )
    return MUSENet(config), data


def replay(server, test, requests, concurrency):
    """Replay the test split as single-sample queries; returns the rows."""
    queries = [test.slice(i % len(test), i % len(test) + 1)
               for i in range(requests)]
    with ThreadPoolExecutor(max_workers=concurrency) as clients:
        rows = list(clients.map(server.forecast, queries))
    return np.concatenate(rows, axis=0)


def time_concurrency(model, data, concurrency, requests, max_batch,
                     max_wait_ms):
    """One arm: qps + latency percentiles at a fixed client concurrency."""
    config = ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms)
    with ForecastServer(model, config) as server:
        replay(server, data.test, min(requests, 4), concurrency)  # warm-up
        server.stats.reset_clock()
        replay(server, data.test, requests, concurrency)
        snap = server.snapshot()
    return {
        "concurrency": concurrency,
        "requests": snap["requests"],
        "batches": snap["batches"],
        "queries_per_sec": snap["queries_per_sec"],
        "latency_ms": snap["latency_ms"],
        "queue_wait_ms": snap["queue_wait_ms"],
        "batch_size": snap["batch_size"],
    }


def check_correctness(max_batch=8, concurrency=4):
    """Served rows vs ``Trainer.predict_scaled``, both precisions.

    The request mix is deliberately batching-hostile: 13 concurrent
    single-sample queries (odd coalescing windows against max_batch=8)
    plus one oversized 13-sample request (> max_batch, served alone in
    pool-chunked forwards).  Every row must still match the offline
    evaluation path bit-for-bit within float tolerance.
    """
    results = {}
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=13)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=0,
    )
    for dtype, atol in ((np.float32, 1e-6), (np.float64, 1e-12)):
        model = MUSENet(config)
        for param in model.parameters():
            param.data = param.data.astype(dtype)
        test = data.test.astype(dtype)
        offline = Trainer(model, TrainConfig(epochs=0)).predict_scaled(test)

        serve_config = ServeConfig(max_batch=max_batch, max_wait_ms=5.0)
        with ForecastServer(model, serve_config) as server:
            with ThreadPoolExecutor(max_workers=concurrency) as clients:
                singles = list(clients.map(
                    server.forecast,
                    [test.slice(i, i + 1) for i in range(len(test))]))
            oversized = server.forecast(test)  # 13 > max_batch
        served = np.concatenate(singles, axis=0)
        diff = max(float(np.abs(served - offline).max()),
                   float(np.abs(oversized - offline).max()))
        results[np.dtype(dtype).name] = {
            "max_abs_diff": diff, "atol": atol, "pass": diff <= atol}
    return results


def _streaming_server(model, data, result_cache, max_wait_ms=2.0):
    """Started streaming server, window warmed from the scaled history."""
    config = ServeConfig(max_wait_ms=max_wait_ms, result_cache=result_cache)
    server = ForecastServer(model, config, periodicity=data.periodicity,
                            frame_shape=data.test.target.shape[1:])
    server.start()
    scaled = data.scaler.transform(data.dataset.flows)
    for frame in scaled[:data.periodicity.min_index]:
        server.cache.push(frame)
    return server


def check_single_flight(data, clients=32):
    """K concurrent same-tick requests: one forward, identical bits.

    The gate holds on any host — the owner/join decision is atomic
    under the cache lock, so exactly one forward runs no matter how the
    threads interleave; no timing is involved.
    """
    import threading

    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=0,
    )
    model = CountingModel(MUSENet(config))
    server = _streaming_server(model, data, result_cache=8)
    try:
        # Uncached offline reference for the same target windows.
        sample = server.cache.sample()
        offline = Trainer(model._model,
                          TrainConfig(epochs=0)).predict_scaled(sample)[0]
        model.forwards = 0
        results = []
        barrier = threading.Barrier(clients)

        def worker():
            barrier.wait()
            results.append(server.forecast_tick())

        threads = [threading.Thread(target=worker) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        forwards = model.forwards
        snap = server.results.snapshot()
    finally:
        server.close()
    values = [r[0] for r in results]
    identical = all(v is values[0] for v in values[1:])
    max_diff = float(max(np.abs(v - offline).max() for v in values))
    return {
        "clients": clients,
        "forwards": forwards,
        "bitwise_identical": identical,
        "max_abs_diff_vs_offline": max_diff,
        "cache": snap,
        "pass": forwards == 1 and identical and max_diff == 0.0,
    }


def time_cache(data, concurrency=32, requests=256):
    """Cached vs uncached same-tick qps at fixed client concurrency."""
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=0,
    )
    arms = {}
    for name, cache_size in (("cached", 8), ("uncached", 0)):
        server = _streaming_server(MUSENet(config), data,
                                   result_cache=cache_size,
                                   max_wait_ms=0.5)
        try:
            server.forecast_tick()  # warm-up forward
            server.stats.reset_clock()
            started = perf_counter()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                list(pool.map(lambda _i: server.forecast_tick(),
                              range(requests)))
            elapsed = perf_counter() - started
        finally:
            server.close()
        arms[name] = {
            "requests": requests,
            "concurrency": concurrency,
            "elapsed_s": elapsed,
            "queries_per_sec": requests / max(elapsed, 1e-9),
        }
    arms["speedup"] = (arms["cached"]["queries_per_sec"]
                       / max(arms["uncached"]["queries_per_sec"], 1e-9))
    return arms


def check_socket(data, requests=8):
    """Socket-served rows vs the same server's in-process rows, atol 0."""
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=0,
    )
    model = MUSENet(config)
    server = _streaming_server(model, data, result_cache=8, max_wait_ms=0.5)
    test = data.test
    try:
        frontend = SocketFrontend(server, ("127.0.0.1", 0), queries=test)
        with frontend:
            with ForecastClient(frontend.address) as client:
                diffs = []
                for i in range(min(requests, len(test))):
                    wire_rows = client.query(i)
                    local_rows = server.forecast(test.slice(i, i + 1))
                    diffs.append(float(np.abs(wire_rows - local_rows).max()))
                wire_pred, wire_index, _gen = client.forecast()
                local_pred, local_index, _gen = server.forecast_tick()
                diffs.append(float(np.abs(wire_pred - local_pred).max()))
            telemetry = frontend.telemetry()
    finally:
        server.close()
    max_diff = max(diffs)
    return {
        "requests": len(diffs),
        "max_abs_diff": max_diff,
        "index_match": wire_index == local_index,
        "frontend": telemetry,
        "pass": max_diff == 0.0 and wire_index == local_index,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full",
                        help="smoke: tiny data, few requests; for CI")
    parser.add_argument("--requests", type=int, default=None,
                        help="queries per arm (overrides --mode default)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batching cap for the latency arms")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="batching window for the latency arms")
    parser.add_argument("--max-p99-ms", type=float, default=500.0,
                        help="required p99 latency at concurrency 8 "
                             "(enforced only on hosts with >= 2 CPUs)")
    parser.add_argument("--min-cache-speedup", type=float, default=3.0,
                        help="required cached/uncached same-tick qps ratio "
                             "at concurrency 32 (enforced only on hosts "
                             "with >= 2 CPUs)")
    args = parser.parse_args(argv)
    smoke = args.mode == "smoke"
    requests = args.requests if args.requests is not None else (
        16 if smoke else 96)
    scale = "tiny" if smoke else "small"
    cpu_count = os.cpu_count() or 1

    model, data = build_setup(scale)
    arms = {}
    for concurrency in CONCURRENCIES:
        arms[f"concurrency-{concurrency}"] = time_concurrency(
            model, data, concurrency, requests, args.max_batch,
            args.max_wait_ms)
    correctness = check_correctness(max_batch=args.max_batch)
    single_flight = check_single_flight(data)
    cache_arms = time_cache(data, requests=(64 if smoke else 256))
    arms["cache"] = cache_arms
    socket_parity = check_socket(data)

    p99_at_8 = arms["concurrency-8"]["latency_ms"]["p99"]
    wall_clock_enforced = cpu_count >= 2
    wall_clock_reason = None if wall_clock_enforced else (
        "wall-clock gates need >= 2 CPUs (client threads contend "
        f"with the forward on {cpu_count} CPU)")
    gates = {
        "correctness": {
            "enforced": True,
            "pass": all(r["pass"] for r in correctness.values()),
        },
        "single_flight": {
            "enforced": True,
            "pass": single_flight["pass"],
        },
        "socket_parity": {
            "enforced": True,
            "pass": socket_parity["pass"],
        },
        "latency": {
            "required_p99_ms": args.max_p99_ms,
            "actual_p99_ms": p99_at_8,
            "enforced": wall_clock_enforced,
            "skipped_reason": wall_clock_reason,
        },
        "cache_speedup": {
            "required_ratio": args.min_cache_speedup,
            "actual_ratio": cache_arms["speedup"],
            "enforced": wall_clock_enforced,
            "skipped_reason": wall_clock_reason,
        },
    }

    snapshot = {
        "bench": "serve_latency",
        "mode": args.mode,
        "scale": scale,
        "cpu_count": cpu_count,
        "requests_per_arm": requests,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "arms": arms,
        "correctness": correctness,
        "single_flight": single_flight,
        "socket_parity": socket_parity,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    for name, arm in arms.items():
        if name == "cache":
            continue
        lat = arm["latency_ms"]
        print(f"{name:15s} {arm['queries_per_sec']:8.1f} qps   "
              f"p50 {lat['p50']:7.2f} ms   p99 {lat['p99']:7.2f} ms   "
              f"mean batch {arm['batch_size']['mean']:.2f}")
    print(f"{'cache/cached':15s} "
          f"{cache_arms['cached']['queries_per_sec']:8.1f} qps   "
          f"uncached {cache_arms['uncached']['queries_per_sec']:8.1f} qps   "
          f"speedup {cache_arms['speedup']:.1f}x")
    for name, r in correctness.items():
        print(f"correctness[{name}]: max |diff| {r['max_abs_diff']:.3g} "
              f"(atol {r['atol']:g}) {'OK' if r['pass'] else 'FAIL'}")
    print(f"single-flight: {single_flight['clients']} clients -> "
          f"{single_flight['forwards']} forward(s), max |diff| vs offline "
          f"{single_flight['max_abs_diff_vs_offline']:g} "
          f"{'OK' if single_flight['pass'] else 'FAIL'}")
    print(f"socket parity: max |diff| {socket_parity['max_abs_diff']:g} "
          f"over {socket_parity['requests']} request(s) "
          f"{'OK' if socket_parity['pass'] else 'FAIL'}")
    print(f"wrote {args.out}")

    failed = False
    if not gates["correctness"]["pass"]:
        print("FAIL: served forecasts diverge from the offline "
              "evaluation path", file=sys.stderr)
        failed = True
    if not single_flight["pass"]:
        print(f"FAIL: single-flight broke — {single_flight['clients']} "
              f"same-tick clients cost {single_flight['forwards']} "
              "forward(s) or returned non-identical bits", file=sys.stderr)
        failed = True
    if not socket_parity["pass"]:
        print("FAIL: socket-served rows diverge from in-process rows "
              f"(max |diff| {socket_parity['max_abs_diff']:g})",
              file=sys.stderr)
        failed = True
    if wall_clock_enforced:
        if p99_at_8 > args.max_p99_ms:
            print(f"FAIL: p99 latency {p99_at_8:.1f} ms at concurrency 8 "
                  f"above allowed {args.max_p99_ms:.1f} ms", file=sys.stderr)
            failed = True
        if cache_arms["speedup"] < args.min_cache_speedup:
            print(f"FAIL: cache speedup {cache_arms['speedup']:.2f}x below "
                  f"required {args.min_cache_speedup:.1f}x", file=sys.stderr)
            failed = True
    else:
        print(f"wall-clock gates skipped: {wall_clock_reason}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
