"""Benchmark: regenerate Fig. 4 (predicted vs ground-truth curves)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_fig4


def test_fig4_curves(benchmark):
    result = run_once(benchmark, run_fig4, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for dataset, curves in result.curves.items():
        assert "ground-truth" in curves
        assert "MUSE-Net" in curves
        for series in curves.values():
            assert np.all(np.isfinite(series))
        # Shape claim: MUSE-Net tracks the ground-truth curve (clearly
        # positive correlation).
        assert result.correlation(dataset, "MUSE-Net") > 0.3
