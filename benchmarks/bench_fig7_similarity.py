"""Benchmark: regenerate Fig. 7 (representations vs future flow)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_fig7


def test_fig7_similarity(benchmark):
    result = run_once(benchmark, run_fig7, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for key in ("c", "p", "t", "s"):
        assert np.all(np.isfinite(result.matrices[key]))
    # Shape claim: the interactive representation is complementary to
    # the exclusive ones (negative correlation of similarity profiles).
    assert result.complementarity() < 0.2
