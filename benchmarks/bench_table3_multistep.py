"""Benchmark: regenerate Table III (multi-step forecasting, 3 horizons)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table3


def test_table3_multistep(benchmark):
    result = run_once(benchmark, run_table3, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for dataset, horizons in result.reports.items():
        assert set(horizons) == {1, 2, 3}
        for horizon, table in horizons.items():
            assert set(table) == {"STGSP", "DeepSTN+", "ST-SSL", "MUSE-Net"}
            for report in table.values():
                assert np.isfinite(report.outflow_rmse)
        # Shape claim: the far horizon is not easier than the aggregate
        # of near horizons for MUSE-Net (errors grow with horizon).
        h1 = horizons[1]["MUSE-Net"].outflow_rmse
        h3 = horizons[3]["MUSE-Net"].outflow_rmse
        assert h3 > 0.5 * h1
