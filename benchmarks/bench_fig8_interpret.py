"""Benchmark: regenerate Fig. 8 (peak/non-peak interpretation)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_fig8


def test_fig8_interpret(benchmark):
    result = run_once(benchmark, run_fig8, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for key in ("c", "p", "t", "s"):
        trace = result.traces[key]
        assert np.all(np.isfinite(trace))
        assert np.all(np.abs(trace) <= 1.0 + 1e-9)
    assert result.peak.any()
    assert (~result.peak).any()
