"""Profiling-overhead and tape-lifecycle benchmark.

Standalone harness (not a pytest-benchmark file): it times one
MUSE-Net training step with and without the op profiler installed, and
measures the tape's peak byte footprint with the default
free-after-backward lifecycle versus ``retain_graph=True`` (the seed
engine's behaviour, where backward closures — and the conv/pool window
views and padded inputs they capture — stay alive until the whole graph
is garbage collected).

Emits a JSON snapshot (default ``BENCH_profiling.json``) that later
perf PRs can diff against::

    PYTHONPATH=src python benchmarks/bench_profile_overhead.py --smoke

The tape measurement replays the trainer's real variable lifetime: the
step-N loss tensor stays referenced until step N+1's forward completes,
so without lifecycle freeing two full graphs coexist.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tracemalloc
from time import perf_counter

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.optim import Adam, clip_grad_norm
from repro.profiling import OpProfiler, profile


def build_setup(seed=0):
    """Tiny dataset + matched MUSE-Net + optimizer, as the tests use."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=32, max_test_samples=12)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=seed,
    )
    model = MUSENet(config)
    optimizer = Adam(model.parameters(), lr=1e-3)
    batch = data.train.take(range(8))  # paper batch size
    return model, optimizer, batch


def training_step(model, optimizer, batch, rng, retain_graph=False):
    """One full trainer-equivalent step; returns the loss tensor."""
    optimizer.zero_grad()
    breakdown, _ = model.training_loss(batch, rng=rng)
    breakdown.total.backward(retain_graph=retain_graph)
    clip_grad_norm(model.parameters(), 5.0)
    optimizer.step()
    return breakdown.total


def time_steps(steps, profiled):
    """Median wall time of one training step, optionally under profile()."""
    model, optimizer, batch = build_setup()
    rng = np.random.default_rng(0)
    training_step(model, optimizer, batch, rng)  # warm-up
    times = []
    if profiled:
        prof = OpProfiler()
        with profile(prof):
            for _ in range(steps):
                prof.mark()
                start = perf_counter()
                training_step(model, optimizer, batch, rng)
                times.append(perf_counter() - start)
    else:
        for _ in range(steps):
            start = perf_counter()
            training_step(model, optimizer, batch, rng)
            times.append(perf_counter() - start)
    return statistics.median(times)


def measure_tape(retain_graph):
    """Peak tape bytes + tracemalloc peak over a 2-step window.

    Step 1's loss is kept alive until step 2's forward finishes — the
    trainer's actual reference lifetime — so without freeing, both
    graphs' closures (and captured buffers) are simultaneously live.
    """
    model, optimizer, batch = build_setup()
    rng = np.random.default_rng(0)
    prof = OpProfiler()
    tracemalloc.start()
    with profile(prof):
        held = training_step(model, optimizer, batch, rng, retain_graph=retain_graph)
        held = training_step(model, optimizer, batch, rng, retain_graph=retain_graph)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del held
    return prof.peak_tape_bytes, traced_peak


def one_step_profile():
    """Per-op snapshot of a single training step."""
    model, optimizer, batch = build_setup()
    rng = np.random.default_rng(0)
    training_step(model, optimizer, batch, rng)  # warm-up
    with profile() as prof:
        training_step(model, optimizer, batch, rng)
    return prof


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="few steps; for CI smoke runs")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per configuration (overrides --smoke)")
    parser.add_argument("--out", default="BENCH_profiling.json",
                        help="where to write the JSON snapshot")
    args = parser.parse_args(argv)
    steps = args.steps if args.steps is not None else (3 if args.smoke else 10)

    unprofiled = time_steps(steps, profiled=False)
    profiled = time_steps(steps, profiled=True)
    overhead_pct = 100.0 * (profiled - unprofiled) / unprofiled

    peak_freed, traced_freed = measure_tape(retain_graph=False)
    peak_retained, traced_retained = measure_tape(retain_graph=True)
    reduction_pct = 100.0 * (1.0 - peak_freed / peak_retained)

    prof = one_step_profile()

    snapshot = {
        "bench": "profiling_overhead",
        "mode": "smoke" if steps <= 3 else "full",
        "steps_timed": steps,
        "step_time_unprofiled_s": unprofiled,
        "step_time_profiled_s": profiled,
        "profiling_overhead_pct": overhead_pct,
        "peak_tape_bytes_freed": int(peak_freed),
        "peak_tape_bytes_retained": int(peak_retained),
        "tape_bytes_reduction_pct": reduction_pct,
        "tracemalloc_peak_freed_bytes": int(traced_freed),
        "tracemalloc_peak_retained_bytes": int(traced_retained),
        "op_profile": prof.as_dict(),
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    print(f"step time: {unprofiled * 1e3:.2f} ms unprofiled, "
          f"{profiled * 1e3:.2f} ms profiled ({overhead_pct:+.1f}%)")
    print(f"peak tape bytes over 2-step window: {peak_retained} retained -> "
          f"{peak_freed} freed ({reduction_pct:.1f}% lower)")
    print(f"tracemalloc peaks: {traced_retained} retained -> {traced_freed} freed")
    print(prof.summary())
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
