"""Benchmark: regenerate Table V (weekday vs weekend)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table5


def test_table5_weekday(benchmark):
    result = run_once(benchmark, run_table5, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for dataset, table in result.reports.items():
        assert "MUSE-Net" in table
        for halves in table.values():
            assert np.isfinite(halves["weekday"].outflow_rmse)
            assert np.isfinite(halves["weekend"].outflow_rmse)
