"""Data-parallel scaling benchmark: worker-pool throughput + equivalence.

Standalone harness (not a pytest-benchmark file): it measures training
steps/sec across three arms —

- ``single-process`` — the trainer's serial step loop (no pool);
- ``workers-1``      — the parallel engine with one worker, isolating
  the pool's fixed costs (pipes, shared-memory ring, allreduce);
- ``workers-4``      — four workers, the scaling measurement.

and then verifies the engine's core correctness claim on a
deterministic model: the reduced gradient at 4 workers must equal the
single-process batch gradient within float summation tolerance
(1e-6 for float32, 1e-12 for float64).  The equivalence gate is always
enforced — it is the part of the contract that holds on any host.

The *speedup* gate (``--min-speedup``, default 2.5x for workers-4 over
workers-1) is only enforced when the host actually has the cores to
scale onto: on a machine with fewer than 4 CPUs the number is still
measured and recorded, but the gate is skipped with an explicit
``skipped_reason`` in the snapshot instead of failing CI for physics.

Emits a JSON snapshot (default ``BENCH_parallel.json``)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --mode smoke
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from time import perf_counter
from types import SimpleNamespace

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.core.losses import LossBreakdown
from repro.data import load_dataset, prepare_forecast_data
from repro.nn import Linear, Module
from repro.nn.losses import mse_loss
from repro.optim import Adam, clip_grad_norm
from repro.parallel import ParallelEngine
from repro.tensor import Tensor

ARMS = ("single-process", "workers-1", "workers-4")
BATCH_SIZE = 8  # the paper's training batch size


class LinearForecaster(Module):
    """Deterministic protocol model for the gradient-equivalence gate.

    MUSE-Net samples VAE posteriors from the per-step rng, so its
    gradients are only comparable at a fixed worker count; the
    equivalence claim is exact for models whose loss ignores the rng.
    """

    def __init__(self, data, seed=0):
        super().__init__()
        _n, length, channels, height, width = data.train.closeness.shape
        self.linear = Linear(length * channels * height * width,
                             channels * height * width,
                             rng=np.random.default_rng(seed))

    def training_loss(self, batch, rng=None):
        flat = Tensor(batch.closeness.reshape(batch.closeness.shape[0], -1))
        prediction = self.linear(flat)
        target = Tensor(batch.target.reshape(len(batch), -1))
        reg = mse_loss(prediction, target)
        zero = Tensor(0.0)
        return (LossBreakdown(total=reg, dis=zero, push=zero, pull=zero,
                              reg=reg),
                SimpleNamespace(prediction=prediction))


def build_setup(scale, seed=0):
    """Small MUSE-Net + prepared data for the throughput arms."""
    dataset = load_dataset("nyc-bike", scale=scale)
    data = prepare_forecast_data(dataset, max_train_samples=32,
                                 max_test_samples=12)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=seed,
    )
    return MUSENet(config), data


def serial_step(model, optimizer, batch, rng):
    """The trainer's exact single-process step sequence."""
    optimizer.zero_grad()
    breakdown, _ = model.training_loss(batch, rng=rng)
    breakdown.total.backward()
    clip_grad_norm(model.parameters(), 5.0)
    optimizer.step()


def time_single_process(scale, steps):
    model, data = build_setup(scale)
    optimizer = Adam(model.parameters(), lr=1e-3)
    batch = data.train.take(range(BATCH_SIZE))
    rng = np.random.default_rng(0)
    serial_step(model, optimizer, batch, rng)  # warm-up (lazy state)
    times = []
    for _ in range(steps):
        start = perf_counter()
        serial_step(model, optimizer, batch, rng)
        times.append(perf_counter() - start)
    return {"steps_per_sec": 1.0 / statistics.median(times)}


def time_workers(scale, workers, steps):
    """Median steps/sec through the pool, optimizer step included."""
    model, data = build_setup(scale)
    optimizer = Adam(model.parameters(), lr=1e-3)
    parameters = model.parameters()
    rng = np.random.default_rng(0)
    times = []
    with ParallelEngine(model, optimizer, data.train, BATCH_SIZE,
                        workers) as engine:
        epoch = 0
        warmed = False
        while len(times) < steps:
            order = rng.permutation(len(data.train))
            gen = engine.epoch_steps(order, epoch)
            while True:
                start = perf_counter()
                item = next(gen, None)
                if item is None:
                    break
                clip_grad_norm(parameters, 5.0)
                optimizer.step()
                if warmed:
                    times.append(perf_counter() - start)
                warmed = True
                if len(times) >= steps:
                    gen.close()
                    break
            epoch += 1
        telemetry = engine.telemetry()
    return {"steps_per_sec": 1.0 / statistics.median(times),
            "telemetry": telemetry}


def check_equivalence(workers=4):
    """Reduced vs single-process batch gradient, both precisions."""
    results = {}
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=8)
    n = 13  # uneven shards at every worker count
    for dtype, atol in ((np.float32, 1e-6), (np.float64, 1e-12)):
        model = LinearForecaster(data)
        for param in model.parameters():
            param.data = param.data.astype(dtype)
        train = data.train.astype(dtype)
        optimizer = Adam(model.parameters(), lr=1e-3)

        batch = train.slice(0, n)
        for param in model.parameters():
            param.grad = None
        breakdown, _ = model.training_loss(batch)
        breakdown.total.backward()
        serial = [param.grad.copy() for param in model.parameters()]
        for param in model.parameters():
            param.grad = None

        with ParallelEngine(model, optimizer, train, n, workers) as engine:
            gen = engine.epoch_steps(np.arange(n), epoch=0)
            next(gen)
            reduced = [param.grad.copy() for param in model.parameters()]
            gen.close()

        diff = max(float(np.abs(r - s).max())
                   for r, s in zip(reduced, serial))
        results[np.dtype(dtype).name] = {
            "max_abs_diff": diff, "atol": atol, "pass": diff <= atol}
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full",
                        help="smoke: tiny data, few steps; for CI")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per arm (overrides --mode default)")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="required workers-4 over workers-1 steps/sec "
                             "multiple (enforced only on hosts with >= 4 "
                             "CPUs)")
    parser.add_argument("--max-one-worker-overhead-pct", type=float,
                        default=None,
                        help="fail when the workers-1 arm is more than this "
                             "percentage slower than single-process "
                             "(unset: record only — wall-clock on shared CI "
                             "boxes is too noisy to gate by default)")
    args = parser.parse_args(argv)
    smoke = args.mode == "smoke"
    steps = args.steps if args.steps is not None else (3 if smoke else 12)
    scale = "tiny" if smoke else "small"
    cpu_count = os.cpu_count() or 1

    results = {
        "single-process": time_single_process(scale, steps),
        "workers-1": time_workers(scale, 1, steps),
        "workers-4": time_workers(scale, 4, steps),
    }
    equivalence = check_equivalence(workers=4)

    speedup = (results["workers-4"]["steps_per_sec"]
               / results["workers-1"]["steps_per_sec"])
    one_worker_overhead_pct = 100.0 * (
        results["single-process"]["steps_per_sec"]
        / results["workers-1"]["steps_per_sec"] - 1.0)
    speedup_enforced = cpu_count >= 4
    gates = {
        "equivalence": {"enforced": True,
                        "pass": all(r["pass"] for r in equivalence.values())},
        "speedup": {
            "required": args.min_speedup,
            "actual": speedup,
            "enforced": speedup_enforced,
            "skipped_reason": None if speedup_enforced else
            f"requires >= 4 CPUs to scale onto; host has {cpu_count}",
        },
    }

    snapshot = {
        "bench": "parallel_scaling",
        "mode": args.mode,
        "steps_timed": steps,
        "scale": scale,
        "cpu_count": cpu_count,
        "batch_size": BATCH_SIZE,
        "arms": results,
        "speedup_workers4_vs_workers1": speedup,
        "one_worker_overhead_pct": one_worker_overhead_pct,
        "equivalence": equivalence,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    for arm in ARMS:
        print(f"{arm:15s} {results[arm]['steps_per_sec']:7.2f} steps/s")
    print(f"speedup (workers-4 vs workers-1): {speedup:.2f}x "
          f"on {cpu_count} CPU(s); "
          f"workers-1 overhead vs single-process: "
          f"{one_worker_overhead_pct:+.1f}%")
    for name, r in equivalence.items():
        print(f"equivalence[{name}]: max |diff| {r['max_abs_diff']:.3g} "
              f"(atol {r['atol']:g}) {'OK' if r['pass'] else 'FAIL'}")
    print(f"wrote {args.out}")

    failed = False
    if not gates["equivalence"]["pass"]:
        print("FAIL: reduced gradient does not match the single-process "
              "batch gradient", file=sys.stderr)
        failed = True
    if speedup_enforced and speedup < args.min_speedup:
        print(f"FAIL: workers-4 speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    elif not speedup_enforced:
        print(f"speedup gate skipped: {gates['speedup']['skipped_reason']}")
    if (args.max_one_worker_overhead_pct is not None
            and one_worker_overhead_pct > args.max_one_worker_overhead_pct):
        print(f"FAIL: workers-1 overhead {one_worker_overhead_pct:.1f}% "
              f"above allowed {args.max_one_worker_overhead_pct:.1f}%",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
