"""Benchmark: regenerate Table II (one-step forecasting, 12 methods x 3 datasets)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table2


def test_table2_onestep(benchmark):
    result = run_once(benchmark, run_table2, profile="ci")
    benchmark.extra_info["result"] = str(result)

    ranks = {}
    for dataset, table in result.reports.items():
        assert len(table) == 12
        rmse = {name: report.outflow_rmse for name, report in table.items()}
        assert all(np.isfinite(v) for v in rmse.values())
        # Shape claim: spatial-aware methods beat the purely temporal
        # RNN-family baselines (the paper's clearest ordering).
        temporal_only = min(rmse["RNN"], rmse["Seq2Seq"])
        assert rmse["MUSE-Net"] < temporal_only
        order = sorted(rmse, key=rmse.get)
        ranks[dataset] = order.index("MUSE-Net")
    # Shape claim: MUSE-Net leads the table outright on at least one
    # dataset and sits in the top tier on the majority.  (At CI budgets
    # the densest tiny grid favours the attention baselines within
    # noise; the paper-profile runs recorded in EXPERIMENTS.md show the
    # full ordering.)
    assert min(ranks.values()) == 0, ranks
    assert sorted(ranks.values())[1] <= 3, ranks
