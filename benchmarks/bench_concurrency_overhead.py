"""Sanitizer overhead benchmark: disabled instrumentation must be free.

The serving and streaming stacks create every lock and worker thread
through :mod:`repro.inspect.sanitizer` factories.  With no active
session those factories return *bare* ``threading`` primitives — the
instrumentation is supposed to cost one function call at construction
time and nothing per acquisition.  This harness checks that claim
end-to-end:

- **baseline arm** — the same serve / stream workloads with the
  factories monkeypatched to raw ``threading`` constructors (what the
  code would do if the sanitizer module did not exist);
- **disabled arm** — the shipped factories, no session active (the
  production configuration);
- **enabled arm (informational)** — the workloads inside
  ``sanitizer.enabled()``, recording what full instrumentation costs.
  This arm is *expected* to be slower and is never gated.

Gate: the disabled arm must stay within ``--max-overhead-pct``
(default 5%) of the baseline on both workloads.  Wall-clock ratios on
a single-CPU host are dominated by scheduler noise (client threads
contend with the forward), so there the numbers are still measured and
recorded but the gate is skipped with an explicit ``skipped_reason``
(mirroring ``BENCH_serve.json``).

Emits a JSON snapshot (default ``BENCH_concurrency.json``)::

    PYTHONPATH=src python benchmarks/bench_concurrency_overhead.py --mode smoke
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.inspect import sanitizer
from repro.serve import ForecastServer, ServeConfig
from repro.stream import simulate as sim


# ----------------------------------------------------------------------
# Arms
# ----------------------------------------------------------------------
@contextlib.contextmanager
def raw_threading_factories():
    """Replace the sanitizer factories with raw ``threading`` calls.

    This is the no-sanitizer-module counterfactual the disabled arm is
    measured against.
    """
    saved = (sanitizer.create_lock, sanitizer.create_rlock,
             sanitizer.create_condition, sanitizer.create_thread,
             sanitizer.join_thread)

    def raw_join(thread, timeout, what=None):
        thread.join(timeout)
        return not thread.is_alive()

    sanitizer.create_lock = lambda name=None: threading.Lock()
    sanitizer.create_rlock = lambda name=None: threading.RLock()
    sanitizer.create_condition = (
        lambda name=None, lock=None: threading.Condition(lock))
    sanitizer.create_thread = (
        lambda *, target, name=None, daemon, args=():
        threading.Thread(target=target, name=name, daemon=daemon, args=args))
    sanitizer.join_thread = raw_join
    try:
        yield
    finally:
        (sanitizer.create_lock, sanitizer.create_rlock,
         sanitizer.create_condition, sanitizer.create_thread,
         sanitizer.join_thread) = saved


@contextlib.contextmanager
def shipped_factories():
    yield


@contextlib.contextmanager
def enabled_session():
    with sanitizer.enabled():
        yield


ARMS = (
    ("baseline", raw_threading_factories),
    ("disabled", shipped_factories),
    ("enabled", enabled_session),
)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def build_serve_setup(seed=0):
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=13)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, seed=seed,
    )
    return MUSENet(config), data


def serve_workload(model, data, requests, concurrency):
    """Concurrent single-sample replay; returns elapsed seconds.

    The server (its micro-batcher lock, consumer thread, stats lock,
    forward lock) is built inside the timed region so construction-time
    factory cost is charged to the arm too.
    """
    test = data.test
    queries = [test.slice(i % len(test), i % len(test) + 1)
               for i in range(requests)]
    started = perf_counter()
    config = ServeConfig(max_batch=8, max_wait_ms=0.5)
    with ForecastServer(model, config) as server:
        with ThreadPoolExecutor(max_workers=concurrency) as clients:
            rows = list(clients.map(server.forecast, queries))
    elapsed = perf_counter() - started
    assert len(rows) == requests
    return elapsed


def build_stream_setup(seed=0):
    scenario = sim.make_scenario("clean", seed=seed)
    state = sim.train_offline(scenario, epochs=0, seed=seed)
    return scenario, state


def stream_workload(scenario, state, ticks):
    """Ingest + forecast replay through StreamRuntime; elapsed seconds."""
    import tempfile

    started = perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-tsan-") as ckpt:
        runtime = sim.build_runtime(scenario, state, adaptive=False,
                                    checkpoint_dir=ckpt)
        with runtime:
            for tick in scenario.ticks[:ticks]:
                runtime.ingest(tick)
                runtime.forecast()
    return perf_counter() - started


def measure(workload, arm_cm, repeats):
    """Best-of-N wall clock: the minimum is the least-noise estimate."""
    times = []
    for _ in range(repeats):
        with arm_cm():
            times.append(workload())
    return min(times), times


# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full")
    parser.add_argument("--out", default="BENCH_concurrency.json")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="allowed disabled-vs-baseline slowdown "
                             "(enforced only on hosts with >= 2 CPUs)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per arm (best-of)")
    args = parser.parse_args(argv)
    smoke = args.mode == "smoke"
    repeats = args.repeats if args.repeats is not None else (2 if smoke else 5)
    requests = 24 if smoke else 96
    ticks = 12 if smoke else 48
    cpu_count = os.cpu_count() or 1

    model, data = build_serve_setup()
    scenario, state = build_stream_setup()

    workloads = {
        "serve": lambda: serve_workload(model, data, requests, concurrency=4),
        "stream": lambda: stream_workload(scenario, state, ticks),
    }

    results = {}
    for wl_name, workload in workloads.items():
        workload()  # warm-up outside any arm (BLAS init, imports)
        arms = {}
        for arm_name, arm_cm in ARMS:
            best, times = measure(workload, arm_cm, repeats)
            arms[arm_name] = {"best_s": best, "times_s": times}
        overhead_pct = 100.0 * (arms["disabled"]["best_s"]
                                / arms["baseline"]["best_s"] - 1.0)
        enabled_pct = 100.0 * (arms["enabled"]["best_s"]
                               / arms["baseline"]["best_s"] - 1.0)
        results[wl_name] = {
            "arms": arms,
            "disabled_overhead_pct": overhead_pct,
            "enabled_overhead_pct": enabled_pct,
        }

    enforced = cpu_count >= 2
    worst = max(r["disabled_overhead_pct"] for r in results.values())
    gates = {
        "disabled_overhead": {
            "max_overhead_pct": args.max_overhead_pct,
            "actual_worst_pct": worst,
            "enforced": enforced,
            "pass": worst <= args.max_overhead_pct,
            "skipped_reason": None if enforced else (
                "wall-clock ratios need >= 2 CPUs (client threads "
                f"contend with the forward on {cpu_count} CPU; "
                "scheduler noise exceeds the 5% budget being measured)"),
        },
    }

    snapshot = {
        "bench": "concurrency_overhead",
        "mode": args.mode,
        "cpu_count": cpu_count,
        "repeats": repeats,
        "serve_requests": requests,
        "stream_ticks": ticks,
        "workloads": results,
        "gates": gates,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)

    for wl_name, r in results.items():
        print(f"{wl_name:7s} baseline {r['arms']['baseline']['best_s']:7.3f}s"
              f"  disabled {r['arms']['disabled']['best_s']:7.3f}s"
              f" ({r['disabled_overhead_pct']:+5.1f}%)"
              f"  enabled {r['arms']['enabled']['best_s']:7.3f}s"
              f" ({r['enabled_overhead_pct']:+5.1f}%)")
    print(f"wrote {args.out}")

    gate = gates["disabled_overhead"]
    if not gate["enforced"]:
        print(f"overhead gate skipped: {gate['skipped_reason']}")
        return 0
    if not gate["pass"]:
        print(f"FAIL: disabled-sanitizer overhead {worst:.1f}% exceeds "
              f"{args.max_overhead_pct:.1f}%")
        return 1
    print(f"overhead gate OK: worst {worst:.1f}% <= "
          f"{args.max_overhead_pct:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
