"""Benchmark: regenerate Table VI (ablation study)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_table6


def test_table6_ablation(benchmark):
    result = run_once(benchmark, run_table6, profile="ci")
    benchmark.extra_info["result"] = str(result)

    for dataset, table in result.reports.items():
        assert len(table) == 5
        rmse = {name: report.outflow_rmse for name, report in table.items()}
        assert all(np.isfinite(v) for v in rmse.values())
        # Shape claim (the paper's strongest ablation finding): the
        # structural ablations — dropping the spatial module or
        # replacing multivariate disentanglement with pairwise — hurt
        # the most.  (On the 4x6 CI grid long-range spatial dependency
        # is weak, so which of the two is worst flips within noise; the
        # paper-profile run in EXPERIMENTS.md separates them.)
        worst = max(rmse, key=rmse.get)
        assert worst in ("w/o-Spatial", "w/o-MultiDisentangle"), rmse
        # Shape claim: the full model is not beaten by a wide margin by
        # any ablation (ties within noise are expected at CI budgets).
        assert rmse["full"] <= min(rmse.values()) * 1.5
