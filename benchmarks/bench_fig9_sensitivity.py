"""Benchmark: regenerate Fig. 9 (hyper-parameter sensitivity sweeps)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import run_fig9


def test_fig9_sensitivity(benchmark):
    result = run_once(benchmark, run_fig9, profile="ci")
    benchmark.extra_info["result"] = str(result)

    assert set(result.curves) == {"lambda", "k", "d"}
    for param, entries in result.curves.items():
        assert len(entries) >= 3
        for _value, mean, std in entries:
            assert np.isfinite(mean)
            assert std >= 0
    # Shape claim: the moderate lambda (the paper picks 1) is not worse
    # than the extreme settings by a large factor.
    lam_curve = {value: mean for value, mean, _std in result.curves["lambda"]}
    moderate = lam_curve[1.0]
    assert moderate <= 1.5 * min(lam_curve.values())
