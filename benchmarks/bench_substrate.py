"""Performance benchmarks for the substrate itself.

Unlike the table/figure benches (single-shot experiment regenerators),
these are conventional multi-round micro-benchmarks of the pieces the
whole reproduction rests on: autodiff conv, the recurrent cell, the
trajectory simulator, windowing, and t-SNE.
"""

import numpy as np

from repro.analysis import tsne
from repro.data import (
    CityConfig,
    GridSpec,
    MultiPeriodicity,
    TrajectorySimulator,
    build_samples,
)
from repro.nn import GRUCell, Conv2d
from repro.optim import Adam
from repro.tensor import Tensor


def test_conv2d_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    layer = Conv2d(16, 16, 3, padding="same", rng=rng)
    x = Tensor(rng.standard_normal((8, 16, 10, 20)))

    def step():
        layer.zero_grad()
        out = layer(x)
        out.sum().backward()
        return out

    result = benchmark(step)
    assert result.shape == (8, 16, 10, 20)


def test_gru_sequence_step(benchmark):
    rng = np.random.default_rng(0)
    cell = GRUCell(64, 64, rng=rng)
    x = Tensor(rng.standard_normal((8, 64)))
    h = cell.initial_state(8)

    result = benchmark(lambda: cell(x, h))
    assert result.shape == (8, 64)


def test_adam_step_on_large_parameter(benchmark):
    from repro.nn import Parameter

    w = Parameter(np.zeros(200_000))
    optimizer = Adam([w], lr=1e-3)
    w.grad = np.random.default_rng(0).standard_normal(200_000)

    benchmark(optimizer.step)
    assert np.any(w.data != 0)


def test_trajectory_simulation_day(benchmark):
    grid = GridSpec(6, 10, interval_minutes=60)

    def simulate():
        sim = TrajectorySimulator(grid, CityConfig(num_agents=1000), seed=0)
        return sim.simulate(grid.intervals_for_days(1))

    flows = benchmark(simulate)
    assert flows.shape[0] == 24


def test_sample_windowing(benchmark):
    grid = GridSpec(6, 10, interval_minutes=60)
    mp = MultiPeriodicity(3, 2, 2, samples_per_day=grid.samples_per_day)
    rng = np.random.default_rng(0)
    flows = rng.uniform(0, 5, size=(mp.min_index + 200, 2, 6, 10))
    indices = np.arange(mp.min_index, mp.min_index + 128)

    batch = benchmark(build_samples, flows, mp, indices)
    assert len(batch) == 128


def test_tsne_small(benchmark):
    rng = np.random.default_rng(0)
    points = rng.standard_normal((60, 16))

    embedding = benchmark(tsne, points, iterations=100, seed=0)
    assert embedding.shape == (60, 2)
