"""Benchmark: regenerate Fig. 5 (t-SNE of representations)."""

from benchmarks.conftest import run_once
from repro.experiments import run_fig5


def test_fig5_tsne(benchmark):
    result = run_once(benchmark, run_fig5, profile="ci")
    benchmark.extra_info["result"] = str(result)

    # Shape claim: disentangled representations separate into clusters
    # while the raw sub-series mix (the figure's whole point).
    assert result.separation_improved
    assert result.disentangled_silhouette > 0.3
    assert result.original_silhouette < 0.5
