"""AdamW optimizer (decoupled weight decay)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["AdamW"]


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Unlike L2-regularized Adam, the decay is applied directly to the
    weights rather than folded into the gradient, which keeps the decay
    strength independent of the adaptive step size.
    """

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=1e-2):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state):
        m = state.get("m")
        v = state.get("v")
        t = state.get("t", 0) + 1
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param.data -= self.lr * (m_hat / (np.sqrt(v_hat) + self.eps)
                                 + self.weight_decay * param.data)
