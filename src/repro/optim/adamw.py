"""AdamW optimizer (decoupled weight decay)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["AdamW"]


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Unlike L2-regularized Adam, the decay is applied directly to the
    weights rather than folded into the gradient, which keeps the decay
    strength independent of the adaptive step size.  The kernel is
    allocation-free in steady state (see :class:`repro.optim.Optimizer`).
    """

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=1e-2):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        buf1, buf2 = buffers
        m = state.get("m")
        if m is None:
            m = state["m"] = np.zeros_like(param.data)
            v = state["v"] = np.zeros_like(param.data)
            self._note_alloc(m.nbytes + v.nbytes)
        else:
            v = state["v"]
        t = state.get("t", 0) + 1
        state["t"] = t
        beta1, beta2 = self.beta1, self.beta2

        # m <- beta1*m + (1-beta1)*g ; v <- beta2*v + (1-beta2)*g*g
        m *= beta1
        np.multiply(grad, 1.0 - beta1, out=buf2)
        m += buf2
        v *= beta2
        np.multiply(grad, 1.0 - beta2, out=buf2)
        buf2 *= grad
        v += buf2
        # buf1 <- sqrt(v_hat) + eps
        np.divide(v, 1.0 - beta2 ** t, out=buf1)
        np.sqrt(buf1, out=buf1)
        buf1 += self.eps
        # buf2 <- m_hat / buf1, then add the decoupled decay term
        np.divide(m, 1.0 - beta1 ** t, out=buf2)
        buf2 /= buf1
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=buf1)
            buf2 += buf1
        buf2 *= self.lr
        param.data -= buf2
