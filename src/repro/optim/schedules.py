"""Learning-rate schedules (mutate ``optimizer.lr`` in place)."""

from __future__ import annotations

import numpy as np

__all__ = ["StepDecay", "ExponentialDecay", "CosineDecay", "WarmupCosine"]


class _Schedule:
    """Base: call :meth:`step` once per epoch."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self):
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch):
        raise NotImplementedError


class StepDecay(_Schedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch):
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialDecay(_Schedule):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer, gamma=0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _lr_at(self, epoch):
        return self.base_lr * self.gamma ** epoch


class CosineDecay(_Schedule):
    """Cosine annealing from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer, total_epochs, min_lr=0.0):
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch):
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))


class WarmupCosine(_Schedule):
    """Linear warmup to the base rate, then cosine annealing."""

    def __init__(self, optimizer, warmup_epochs, total_epochs, min_lr=0.0):
        super().__init__(optimizer)
        if warmup_epochs >= total_epochs:
            raise ValueError("warmup must be shorter than the total schedule")
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch):
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        progress = (epoch - self.warmup_epochs) / (self.total_epochs - self.warmup_epochs)
        progress = min(progress, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
