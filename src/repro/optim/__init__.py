"""Optimizers, schedules, and gradient clipping."""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.adamw import AdamW
from repro.optim.adagrad import Adagrad
from repro.optim.rmsprop import RMSProp
from repro.optim.schedules import (
    CosineDecay,
    ExponentialDecay,
    StepDecay,
    WarmupCosine,
)
from repro.optim.clip import clip_grad_norm, clip_grad_value
from repro.optim.reference import (
    ReferenceAdagrad,
    ReferenceAdam,
    ReferenceAdamW,
    ReferenceRMSProp,
    ReferenceSGD,
)

__all__ = [
    "Optimizer", "SGD", "Adam", "AdamW", "Adagrad", "RMSProp",
    "ReferenceSGD", "ReferenceAdam", "ReferenceAdamW", "ReferenceAdagrad",
    "ReferenceRMSProp",
    "StepDecay", "ExponentialDecay", "CosineDecay", "WarmupCosine",
    "clip_grad_norm", "clip_grad_value",
]
