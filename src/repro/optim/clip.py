"""Gradient clipping utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["clip_grad_norm", "clip_grad_value"]


def clip_grad_norm(parameters, max_norm):
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging exploding gradients).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = np.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total


def clip_grad_value(parameters, max_value):
    """Clamp every gradient element to ``[-max_value, max_value]``."""
    for param in parameters:
        if param.grad is not None:
            np.clip(param.grad, -max_value, max_value, out=param.grad)
