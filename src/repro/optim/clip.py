"""Gradient clipping utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["clip_grad_norm", "clip_grad_value"]


def clip_grad_norm(parameters, max_norm, norm=None):
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging exploding gradients).

    Allocation-free: each per-parameter sum of squares comes from
    ``np.vdot`` (a BLAS dot of the gradient with itself — no ``g * g``
    temporary), and the rescale runs in place, preserving each
    gradient's dtype.

    ``norm`` short-circuits the norm computation with a value the
    caller already has (the divergence sentinel computes the identical
    ordered ``vdot`` sum every step); it must be the current global
    grad norm or the clip threshold is applied against a stale value.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    total = (float(norm) if norm is not None
             else float(np.sqrt(sum(float(np.vdot(g, g)) for g in grads))))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            np.multiply(grad, scale, out=grad)
    return total


def clip_grad_value(parameters, max_value):
    """Clamp every gradient element to ``[-max_value, max_value]``."""
    for param in parameters:
        if param.grad is not None:
            np.clip(param.grad, -max_value, max_value, out=param.grad)
