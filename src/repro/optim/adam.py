"""Adam optimizer (the paper trains with Adam, lr=2e-4)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moments.

    The update kernel is written with ``out=`` numpy calls against the
    persistent moment arrays and the step's two scratch buffers, so a
    steady-state step allocates nothing.  The arithmetic follows the
    reference formulation operation-for-operation (same products, same
    evaluation order), so results match the textbook implementation in
    :mod:`repro.optim.reference` to rounding noise.
    """

    def __init__(self, parameters, lr=2e-4, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        buf1, buf2 = buffers
        m = state.get("m")
        if m is None:
            m = state["m"] = np.zeros_like(param.data)
            v = state["v"] = np.zeros_like(param.data)
            self._note_alloc(m.nbytes + v.nbytes)
        else:
            v = state["v"]
        t = state.get("t", 0) + 1
        state["t"] = t
        beta1, beta2 = self.beta1, self.beta2

        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=buf1)
            buf1 += grad
            grad = buf1

        # m <- beta1*m + (1-beta1)*g
        m *= beta1
        np.multiply(grad, 1.0 - beta1, out=buf2)
        m += buf2
        # v <- beta2*v + (1-beta2)*g*g
        v *= beta2
        np.multiply(grad, 1.0 - beta2, out=buf2)
        buf2 *= grad
        v += buf2
        # buf1 <- sqrt(v_hat) + eps   (grad alias is dead from here on)
        np.divide(v, 1.0 - beta2 ** t, out=buf1)
        np.sqrt(buf1, out=buf1)
        buf1 += self.eps
        # param -= lr * m_hat / buf1
        np.divide(m, 1.0 - beta1 ** t, out=buf2)
        buf2 *= self.lr
        buf2 /= buf1
        param.data -= buf2
