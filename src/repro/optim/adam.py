"""Adam optimizer (the paper trains with Adam, lr=2e-4)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moments."""

    def __init__(self, parameters, lr=2e-4, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state):
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m = state.get("m")
        v = state.get("v")
        t = state.get("t", 0) + 1
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
