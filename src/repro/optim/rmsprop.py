"""RMSProp optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["RMSProp"]


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying squared-gradient average."""

    def __init__(self, parameters, lr=1e-3, alpha=0.99, eps=1e-8):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps

    def _update(self, param, grad, state):
        avg = state.get("square_avg")
        if avg is None:
            avg = np.zeros_like(param.data)
        avg = self.alpha * avg + (1.0 - self.alpha) * grad * grad
        state["square_avg"] = avg
        param.data -= self.lr * grad / (np.sqrt(avg) + self.eps)
