"""RMSProp optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["RMSProp"]


class RMSProp(Optimizer):
    """RMSProp with exponentially decaying squared-gradient average.

    The kernel is allocation-free in steady state (see
    :class:`repro.optim.Optimizer`).
    """

    def __init__(self, parameters, lr=1e-3, alpha=0.99, eps=1e-8):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps

    def _update(self, param, grad, state, buffers):
        buf1, buf2 = buffers
        avg = state.get("square_avg")
        if avg is None:
            avg = state["square_avg"] = np.zeros_like(param.data)
            self._note_alloc(avg.nbytes)
        # avg <- alpha*avg + (1-alpha)*g*g
        avg *= self.alpha
        np.multiply(grad, 1.0 - self.alpha, out=buf1)
        buf1 *= grad
        avg += buf1
        # param -= lr*g / (sqrt(avg) + eps)
        np.sqrt(avg, out=buf1)
        buf1 += self.eps
        np.multiply(grad, self.lr, out=buf2)
        buf2 /= buf1
        param.data -= buf2
