"""Reference (textbook, allocating) optimizer kernels.

These are the pre-optimization update rules, kept verbatim: every step
builds its moment math out of fresh numpy temporaries.  They exist for
two reasons:

- **Equivalence testing** — the in-place kernels in :mod:`repro.optim`
  are required to match these to float64 rounding noise, step for step
  (see ``tests/nn/test_optim_inplace.py``).
- **Benchmarking** — ``benchmarks/bench_train_throughput.py`` uses
  :class:`ReferenceAdam` as the "seed" arm when measuring what the
  float32 policy and the allocation-free kernels buy.

Each ``_update`` reports the temporaries it allocates via
``_note_alloc`` so the profiler's ``optimizer_alloc_bytes`` counter
shows the contrast against the in-place kernels (which report zero in
steady state).  Do not use these for training runs you care about.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["ReferenceSGD", "ReferenceAdam", "ReferenceAdamW",
           "ReferenceRMSProp", "ReferenceAdagrad"]


class ReferenceSGD(Optimizer):
    """Seed SGD kernel: classical momentum, allocating temporaries."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        nbytes = param.data.nbytes
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
            self._note_alloc(2 * nbytes)
        if self.momentum:
            velocity = state.get("velocity")
            if velocity is None:
                velocity = np.zeros_like(param.data)
                self._note_alloc(nbytes)
            velocity = self.momentum * velocity - self.lr * grad
            state["velocity"] = velocity
            self._note_alloc(3 * nbytes)
            param.data += velocity
        else:
            param.data -= self.lr * grad
            self._note_alloc(nbytes)


class ReferenceAdam(Optimizer):
    """Seed Adam kernel: bias-corrected moments, allocating temporaries."""

    def __init__(self, parameters, lr=2e-4, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        nbytes = param.data.nbytes
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
            self._note_alloc(2 * nbytes)
        m = state.get("m")
        v = state.get("v")
        t = state.get("t", 0) + 1
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._note_alloc(2 * nbytes)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        # 3 temps for m, 4 for v, m_hat/v_hat, sqrt/add/mul/div chain.
        self._note_alloc(13 * nbytes)


class ReferenceAdamW(Optimizer):
    """Seed AdamW kernel: decoupled decay, allocating temporaries."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=1e-2):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        nbytes = param.data.nbytes
        m = state.get("m")
        v = state.get("v")
        t = state.get("t", 0) + 1
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._note_alloc(2 * nbytes)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param.data -= self.lr * (m_hat / (np.sqrt(v_hat) + self.eps)
                                 + self.weight_decay * param.data)
        self._note_alloc(15 * nbytes)


class ReferenceRMSProp(Optimizer):
    """Seed RMSProp kernel: allocating temporaries."""

    def __init__(self, parameters, lr=1e-3, alpha=0.99, eps=1e-8):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps

    def _update(self, param, grad, state, buffers):
        nbytes = param.data.nbytes
        avg = state.get("square_avg")
        if avg is None:
            avg = np.zeros_like(param.data)
            self._note_alloc(nbytes)
        avg = self.alpha * avg + (1.0 - self.alpha) * grad * grad
        state["square_avg"] = avg
        param.data -= self.lr * grad / (np.sqrt(avg) + self.eps)
        self._note_alloc(8 * nbytes)


class ReferenceAdagrad(Optimizer):
    """Seed Adagrad kernel: allocating temporaries."""

    def __init__(self, parameters, lr=1e-2, eps=1e-10):
        super().__init__(parameters, lr)
        self.eps = eps

    def _update(self, param, grad, state, buffers):
        nbytes = param.data.nbytes
        accumulated = state.get("sum_sq")
        if accumulated is None:
            accumulated = np.zeros_like(param.data)
            self._note_alloc(nbytes)
        accumulated = accumulated + grad * grad
        state["sum_sq"] = accumulated
        param.data -= self.lr * grad / (np.sqrt(accumulated) + self.eps)
        self._note_alloc(7 * nbytes)
