"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and optional weight decay.

    The kernel is allocation-free in steady state (see
    :class:`repro.optim.Optimizer`): the velocity buffer persists in the
    state dict and all per-step math runs through the scratch buffers.
    """

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, param, grad, state, buffers):
        buf1, buf2 = buffers
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=buf1)
            buf1 += grad
            grad = buf1
        if self.momentum:
            velocity = state.get("velocity")
            if velocity is None:
                velocity = state["velocity"] = np.zeros_like(param.data)
                self._note_alloc(velocity.nbytes)
            # velocity <- momentum*velocity - lr*g
            velocity *= self.momentum
            np.multiply(grad, self.lr, out=buf2)
            velocity -= buf2
            param.data += velocity
        else:
            np.multiply(grad, self.lr, out=buf2)
            param.data -= buf2
