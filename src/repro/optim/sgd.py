"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and optional weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, param, grad, state):
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = state.get("velocity")
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity - self.lr * grad
            state["velocity"] = velocity
            param.data += velocity
        else:
            param.data -= self.lr * grad
