"""Adagrad optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["Adagrad"]


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011): per-parameter accumulated scaling."""

    def __init__(self, parameters, lr=1e-2, eps=1e-10):
        super().__init__(parameters, lr)
        self.eps = eps

    def _update(self, param, grad, state):
        accumulated = state.get("sum_sq")
        if accumulated is None:
            accumulated = np.zeros_like(param.data)
        accumulated = accumulated + grad * grad
        state["sum_sq"] = accumulated
        param.data -= self.lr * grad / (np.sqrt(accumulated) + self.eps)
