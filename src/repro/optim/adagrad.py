"""Adagrad optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer

__all__ = ["Adagrad"]


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011): per-parameter accumulated scaling.

    The kernel is allocation-free in steady state (see
    :class:`repro.optim.Optimizer`).
    """

    def __init__(self, parameters, lr=1e-2, eps=1e-10):
        super().__init__(parameters, lr)
        self.eps = eps

    def _update(self, param, grad, state, buffers):
        buf1, buf2 = buffers
        accumulated = state.get("sum_sq")
        if accumulated is None:
            accumulated = state["sum_sq"] = np.zeros_like(param.data)
            self._note_alloc(accumulated.nbytes)
        # sum_sq <- sum_sq + g*g
        np.multiply(grad, grad, out=buf1)
        accumulated += buf1
        # param -= lr*g / (sqrt(sum_sq) + eps)
        np.sqrt(accumulated, out=buf1)
        buf1 += self.eps
        np.multiply(grad, self.lr, out=buf2)
        buf2 /= buf1
        param.data -= buf2
