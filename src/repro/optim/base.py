"""Optimizer base class."""

from __future__ import annotations

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list and the update contract.

    Subclasses implement :meth:`_update` for a single parameter given
    its gradient and a per-parameter state dict.
    """

    def __init__(self, parameters, lr):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.parameters = parameters
        self.lr = lr
        self._state = [dict() for _ in parameters]
        self._step_count = 0

    def zero_grad(self):
        """Clear gradients on every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self):
        """Apply one update using the currently accumulated gradients.

        Parameters with no gradient (unused in the current graph) are
        skipped, which lets models with conditional branches train.
        """
        self._step_count += 1
        for param, state in zip(self.parameters, self._state):
            if param.grad is None:
                continue
            self._update(param, param.grad, state)

    def _update(self, param, grad, state):
        raise NotImplementedError
