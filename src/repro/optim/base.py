"""Optimizer base class with an allocation-lean step fast path."""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _tensor_core

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list and the update contract.

    Subclasses implement :meth:`_update` for a single parameter given
    its gradient, a per-parameter state dict, and a pair of preallocated
    scratch buffers shaped/typed like the parameter.  The contract for
    update kernels is *allocation-free steady state*: moment/velocity
    arrays live in the state dict and are updated with ``out=`` numpy
    calls, temporaries go through the scratch buffers, and any array a
    kernel does allocate (state init, a resized parameter) is reported
    via :meth:`_note_alloc` so the op profiler's allocation counters
    stay truthful.

    :meth:`step` is the hot path: it hoists every per-step attribute
    lookup out of the loop, reuses the scratch buffers across steps, and
    skips parameters with no gradient (so models with conditional
    branches train).  Scratch buffers are revalidated against the
    parameter's dtype/shape each step, which makes a mid-training
    precision cast (``Trainer(dtype=...)``, checkpoint restore into a
    different dtype) self-healing rather than corrupting.
    """

    def __init__(self, parameters, lr):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.parameters = parameters
        self.lr = lr
        self._state = [dict() for _ in parameters]
        self._scratch = [None] * len(parameters)
        self._step_count = 0
        # Allocation accounting (bytes): total since construction, and
        # the portion attributable to the most recent step().
        self.alloc_bytes_total = 0
        self.last_step_alloc_bytes = 0

    def zero_grad(self):
        """Clear gradients on every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _note_alloc(self, nbytes):
        """Record that the current step allocated ``nbytes`` of arrays."""
        self.alloc_bytes_total += nbytes
        self.last_step_alloc_bytes += nbytes

    def step(self):
        """Apply one update using the currently accumulated gradients.

        Parameters with no gradient (unused in the current graph) are
        skipped, which lets models with conditional branches train.
        """
        self._step_count += 1
        self.last_step_alloc_bytes = 0
        update = self._update
        states = self._state
        scratch = self._scratch
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            data = param.data
            buffers = scratch[index]
            if (buffers is None or buffers[0].shape != data.shape
                    or buffers[0].dtype != data.dtype):
                buffers = (np.empty_like(data), np.empty_like(data))
                scratch[index] = buffers
                self._note_alloc(2 * data.nbytes)
            update(param, grad, states[index], buffers)
        profiler = _tensor_core._PROFILER
        if profiler is not None:
            profiler._record_optimizer_step(self.last_step_alloc_bytes)
            # Keep optimizer time out of the next forward op's interval.
            profiler.mark()

    def _update(self, param, grad, state, buffers):
        raise NotImplementedError
