"""Forecast error metrics.

The paper reports RMSE, MAE, and MAPE per dataset and per flow channel
(outflow / inflow).  MAPE follows the standard traffic-forecasting
convention of masking near-zero ground truth (otherwise empty regions
at night dominate the percentage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["rmse", "mae", "mape", "evaluate_flows", "EvalReport"]


def _align_mask(mask, shape):
    """Expand ``mask`` to ``shape``, resolving the axis it applies to.

    Accepted mask shapes, in precedence order:

    - the exact target shape (element mask);
    - a prefix of the target shape, e.g. ``(N,)`` against ``(N, 2, H, W)``
      (sample mask — aligned to the *leading* axes and repeated over the
      rest);
    - a suffix of the target shape, e.g. ``(H, W)`` (cell mask — numpy's
      ordinary trailing broadcast).

    Anything else is an error.  The prefix case must be resolved
    explicitly: plain ``np.broadcast_to`` aligns trailing axes, so a
    sample mask of shape ``(N,)`` would silently select *columns*
    instead of samples whenever it broadcast at all.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape == shape:
        return mask
    if mask.ndim < len(shape) and mask.shape == shape[:mask.ndim]:
        lead = mask.reshape(mask.shape + (1,) * (len(shape) - mask.ndim))
        return np.broadcast_to(lead, shape)
    try:
        return np.broadcast_to(mask, shape)
    except ValueError:
        raise ValueError(
            f"mask shape {mask.shape} matches neither a leading nor a "
            f"trailing subset of the target shape {shape}"
        ) from None


def _validate(prediction, target, mask):
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    if mask is not None:
        mask = _align_mask(mask, target.shape)
        if not mask.any():
            raise ValueError("metric mask selects no elements")
        prediction = prediction[mask]
        target = target[mask]
    return prediction, target


def rmse(prediction, target, mask=None):
    """Root mean squared error."""
    prediction, target = _validate(prediction, target, mask)
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mae(prediction, target, mask=None):
    """Mean absolute error."""
    prediction, target = _validate(prediction, target, mask)
    return float(np.mean(np.abs(prediction - target)))


def mape(prediction, target, mask=None, threshold=1.0):
    """Mean absolute percentage error over cells with ``|target| >= threshold``.

    When ``mask`` is given the percentage is averaged over the
    *intersection* of the mask and the threshold validity set — a cell
    must both be selected by the mask and clear the threshold to
    contribute.  Returns ``nan`` when no selected cell clears the
    threshold.
    """
    prediction, target = _validate(prediction, target, mask)
    valid = np.abs(target) >= threshold
    if not valid.any():
        return float("nan")
    return float(np.mean(np.abs(prediction[valid] - target[valid]) / np.abs(target[valid])))


@dataclass
class EvalReport:
    """Per-channel metric bundle, mirroring the paper's table columns."""

    outflow_rmse: float
    outflow_mae: float
    outflow_mape: float
    inflow_rmse: float
    inflow_mae: float
    inflow_mape: float

    def row(self):
        """Values in the paper's column order."""
        return (
            self.outflow_rmse, self.outflow_mae, self.outflow_mape,
            self.inflow_rmse, self.inflow_mae, self.inflow_mape,
        )

    def __str__(self):
        return (
            f"out RMSE {self.outflow_rmse:.2f} MAE {self.outflow_mae:.2f} "
            f"MAPE {self.outflow_mape * 100:.2f}% | "
            f"in RMSE {self.inflow_rmse:.2f} MAE {self.inflow_mae:.2f} "
            f"MAPE {self.inflow_mape * 100:.2f}%"
        )


def evaluate_flows(prediction, target, sample_mask=None):
    """Build an :class:`EvalReport` from ``(N, 2, H, W)`` flow arrays.

    ``sample_mask`` (optional, shape ``(N,)``) restricts the evaluation
    to a subset of samples — this is how the peak/non-peak and
    weekday/weekend tables are produced.
    """
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.ndim != 4 or prediction.shape[1] != 2:
        raise ValueError(f"expected (N, 2, H, W) flows; got {prediction.shape}")
    if sample_mask is not None:
        sample_mask = np.asarray(sample_mask, dtype=bool)
        if sample_mask.shape != (len(target),):
            raise ValueError("sample_mask must have shape (N,)")
        prediction = prediction[sample_mask]
        target = target[sample_mask]
        if len(target) == 0:
            raise ValueError("sample_mask selects no samples")
    out_pred, in_pred = prediction[:, 0], prediction[:, 1]
    out_true, in_true = target[:, 0], target[:, 1]
    return EvalReport(
        outflow_rmse=rmse(out_pred, out_true),
        outflow_mae=mae(out_pred, out_true),
        outflow_mape=mape(out_pred, out_true),
        inflow_rmse=rmse(in_pred, in_true),
        inflow_mae=mae(in_pred, in_true),
        inflow_mape=mape(in_pred, in_true),
    )
