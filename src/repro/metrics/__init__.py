"""Evaluation metrics (paper §V-B): RMSE, MAE, MAPE."""

from repro.metrics.errors import (
    EvalReport,
    evaluate_flows,
    mae,
    mape,
    rmse,
)

__all__ = ["rmse", "mae", "mape", "evaluate_flows", "EvalReport"]
