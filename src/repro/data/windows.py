"""Sample assembly, chronological splits, and batch iteration."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.periodicity import MultiPeriodicity

__all__ = ["SampleBatch", "build_samples", "chronological_split", "iterate_batches"]


@dataclass
class SampleBatch:
    """A batch of multi-periodic samples.

    Shapes: ``closeness (N, L_c, 2, H, W)``, ``period (N, L_p, 2, H, W)``,
    ``trend (N, L_t, 2, H, W)``, ``target (N, 2, H, W)``,
    ``indices (N,)`` — the target interval of each sample.
    """

    closeness: np.ndarray
    period: np.ndarray
    trend: np.ndarray
    target: np.ndarray
    indices: np.ndarray

    def __len__(self):
        return len(self.indices)

    def take(self, positions):
        """Sub-batch at the given positions (fancy-index view copy)."""
        positions = np.asarray(positions)
        return SampleBatch(
            closeness=self.closeness[positions],
            period=self.period[positions],
            trend=self.trend[positions],
            target=self.target[positions],
            indices=self.indices[positions],
        )

    def slice(self, start, stop):
        """Contiguous sub-batch ``[start:stop)`` as zero-copy views.

        Use for chunked evaluation loops: unlike :meth:`take` with a
        range, no arrays are copied.  Callers must not mutate the
        result, since it aliases this batch's storage.
        """
        return SampleBatch(
            closeness=self.closeness[start:stop],
            period=self.period[start:stop],
            trend=self.trend[start:stop],
            target=self.target[start:stop],
            indices=self.indices[start:stop],
        )

    @staticmethod
    def concat(batches):
        """Concatenate several batches along the sample axis.

        Order is preserved: sample ``i`` of batch ``k`` lands after all
        samples of batches ``0..k-1``.  This is how the serving
        micro-batcher coalesces concurrent requests into one forward.
        """
        batches = list(batches)
        if not batches:
            raise ValueError("concat needs at least one batch")
        if len(batches) == 1:
            return batches[0]
        return SampleBatch(
            closeness=np.concatenate([b.closeness for b in batches], axis=0),
            period=np.concatenate([b.period for b in batches], axis=0),
            trend=np.concatenate([b.trend for b in batches], axis=0),
            target=np.concatenate([b.target for b in batches], axis=0),
            indices=np.concatenate([b.indices for b in batches], axis=0),
        )

    def astype(self, dtype):
        """Cast the float arrays to ``dtype``; ``indices`` stay integer.

        No-copy when already in ``dtype``, so calling this defensively
        is free in the common case.
        """
        dtype = np.dtype(dtype)
        return SampleBatch(
            closeness=self.closeness.astype(dtype, copy=False),
            period=self.period.astype(dtype, copy=False),
            trend=self.trend.astype(dtype, copy=False),
            target=self.target.astype(dtype, copy=False),
            indices=self.indices,
        )


def build_samples(flows, periodicity: MultiPeriodicity, indices, horizon=1):
    """Assemble a :class:`SampleBatch` for the given target indices.

    With ``horizon == 1`` each index ``i`` produces the one-step sample
    whose target is ``flows[i]``; with ``horizon > 1`` each index is
    treated as the anchor of a multi-step sample (see
    :meth:`MultiPeriodicity.slice_multistep`).
    """
    indices = np.asarray(indices)
    samples = []
    for i in indices:
        if horizon == 1:
            samples.append(periodicity.slice_at(flows, int(i)))
        else:
            samples.append(periodicity.slice_multistep(flows, int(i), horizon))
    return SampleBatch(
        closeness=np.stack([s.closeness for s in samples]),
        period=np.stack([s.period for s in samples]),
        trend=np.stack([s.trend for s in samples]),
        target=np.stack([s.target for s in samples]),
        indices=np.array([s.index for s in samples]),
    )


def chronological_split(num_intervals, periodicity, test_intervals, val_fraction=0.1,
                        horizon_margin=0):
    """Split target indices into train/val/test chronologically.

    Mirrors the paper's protocol: the last ``test_intervals`` intervals
    are the test set, the remainder trains, and the last
    ``val_fraction`` of the training block validates.

    ``horizon_margin`` reserves extra intervals at the end so multi-step
    anchors can still reach their targets inside the array.
    """
    first = periodicity.min_index
    last = num_intervals - horizon_margin
    if last - first < 3:
        raise ValueError(
            f"not enough intervals: history needs {first}, "
            f"got {num_intervals} total"
        )
    all_indices = np.arange(first, last)
    if test_intervals < 0:
        raise ValueError(f"test_intervals must be >= 0; got {test_intervals}")
    if test_intervals >= len(all_indices):
        raise ValueError("test window swallows the whole usable range")
    if test_intervals == 0:
        # Explicit: `all_indices[-0:]` would return the *whole* range.
        # A zero-length test window is valid (train/val-only splits).
        test = all_indices[:0]
        fit = all_indices
    else:
        test = all_indices[-test_intervals:]
        fit = all_indices[:-test_intervals]
    num_val = max(1, int(round(len(fit) * val_fraction)))
    val = fit[-num_val:]
    train = fit[:-num_val]
    if len(train) == 0:
        raise ValueError("train split is empty; reduce test/val sizes")
    return train, val, test


# Shared fallback rng for callers that don't pass one.  It lives at
# module level so its state advances across calls: seeding inside
# iterate_batches would hand every epoch the identical shuffle order.
_DEFAULT_RNG = np.random.default_rng(0)


def iterate_batches(batch: SampleBatch, batch_size, rng=None, shuffle=True):
    """Yield mini-batches; shuffles with ``rng`` when requested.

    Pass the training loop's ``rng`` for reproducible runs; when ``rng``
    is ``None`` a process-wide default generator is used, so successive
    epochs still see different shuffle orders.
    """
    order = np.arange(len(batch))
    if shuffle:
        if rng is None:
            rng = _DEFAULT_RNG
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        yield batch.take(order[start:start + batch_size])
