"""End-to-end data preparation: scale, window, split.

:func:`prepare_forecast_data` is the single entry point experiments
use: it fits the min-max scaler on the training portion only (matching
the paper's protocol), windows the scaled flows into multi-periodic
samples, and returns chronological train/val/test batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import TrafficDataset
from repro.data.scaler import MinMaxScaler
from repro.data.windows import SampleBatch, build_samples, chronological_split

__all__ = ["ForecastData", "prepare_forecast_data"]


@dataclass
class ForecastData:
    """Prepared splits plus everything needed to undo the scaling."""

    dataset: TrafficDataset
    scaler: MinMaxScaler
    train: SampleBatch
    val: SampleBatch
    test: SampleBatch
    horizon: int

    @property
    def grid(self):
        """Grid geometry shortcut."""
        return self.dataset.grid

    @property
    def periodicity(self):
        """Windowing configuration shortcut."""
        return self.dataset.periodicity

    def inverse(self, scaled):
        """Map model-space values back to flow units."""
        return self.scaler.inverse_transform(scaled)

    def astype(self, dtype):
        """Cast every split's float arrays to ``dtype``.

        Shares the dataset and fitted scaler with the original (the
        scaler holds python floats, so there is nothing to cast there).
        """
        return ForecastData(
            dataset=self.dataset,
            scaler=self.scaler,
            train=self.train.astype(dtype),
            val=self.val.astype(dtype),
            test=self.test.astype(dtype),
            horizon=self.horizon,
        )


def prepare_forecast_data(dataset: TrafficDataset, test_intervals=None,
                          val_fraction=0.1, horizon=1, max_train_samples=None,
                          max_test_samples=None, seed=0,
                          feature_range=(-0.9, 0.9)):
    """Scale, window, and split a dataset for forecasting.

    Parameters
    ----------
    dataset:
        A :class:`~repro.data.datasets.TrafficDataset`.
    test_intervals:
        Size of the held-out tail (defaults to the dataset's standard
        test window — the last third, mirroring the paper's last-20-of-
        60-days protocol).
    horizon:
        1 for one-step samples; >1 builds anchor-based multi-step
        samples for that horizon.
    max_train_samples, max_test_samples:
        Optional subsampling caps (chronologically even strides) used by
        CPU-budget benchmarks; ``None`` keeps everything.
    feature_range:
        Scaling range.  The paper scales to [-1, 1]; the default here is
        (-0.9, 0.9) because on sparse synthetic grids the global
        minimum (empty cell) dominates the targets, and placing it
        exactly at the tanh output head's asymptote makes every model
        collapse to the "always empty" solution with vanishing
        gradients.  Pass ``(-1.0, 1.0)`` to use the paper's exact range.
    """
    flows = dataset.flows
    periodicity = dataset.periodicity
    if test_intervals is None:
        test_intervals = dataset.test_window()

    margin = horizon - 1
    train_idx, val_idx, test_idx = chronological_split(
        len(flows), periodicity, test_intervals, val_fraction=val_fraction,
        horizon_margin=margin,
    )

    # Fit the scaler on the raw flows the training indices can see.
    train_end = int(train_idx[-1]) + 1
    scaler = MinMaxScaler(feature_range).fit(flows[:train_end])
    scaled = scaler.transform(flows)

    def cap(indices, limit):
        if limit is None or len(indices) <= limit:
            return indices
        stride = len(indices) / limit
        return indices[(np.arange(limit) * stride).astype(int)]

    train_idx = cap(train_idx, max_train_samples)
    val_idx = cap(val_idx, None if max_train_samples is None
                  else max(8, max_train_samples // 8))
    test_idx = cap(test_idx, max_test_samples)

    return ForecastData(
        dataset=dataset,
        scaler=scaler,
        train=build_samples(scaled, periodicity, train_idx, horizon=horizon),
        val=build_samples(scaled, periodicity, val_idx, horizon=horizon),
        test=build_samples(scaled, periodicity, test_idx, horizon=horizon),
        horizon=horizon,
    )
