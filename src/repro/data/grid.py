"""Spatial grid definitions (paper Definition 1).

A city is partitioned into an ``H x W`` lattice of equal-size regions.
:class:`GridSpec` carries the lattice geometry plus the temporal
sampling frequency, and provides the index arithmetic every other data
module builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridSpec", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class GridSpec:
    """Geometry and sampling of a gridded city.

    Parameters
    ----------
    height, width:
        Number of grid rows/columns (paper: 10x20 for NYC, 32x32 for
        TaxiBJ).
    interval_minutes:
        Length of one time interval (paper: 30 minutes).
    start_weekday:
        Weekday of the first interval, 0 = Monday (used for the
        weekday/weekend analyses).
    """

    height: int
    width: int
    interval_minutes: int = 30
    start_weekday: int = 0

    def __post_init__(self):
        if self.height <= 0 or self.width <= 0:
            raise ValueError(f"grid dims must be positive; got {self.height}x{self.width}")
        if MINUTES_PER_DAY % self.interval_minutes != 0:
            raise ValueError(
                f"interval_minutes={self.interval_minutes} must divide a day"
            )
        if not 0 <= self.start_weekday < 7:
            raise ValueError("start_weekday must be in [0, 7)")

    @property
    def num_regions(self):
        """Total region count ``M = H * W``."""
        return self.height * self.width

    @property
    def samples_per_day(self):
        """Sampling frequency ``f`` (intervals per day); 48 at 30 min."""
        return MINUTES_PER_DAY // self.interval_minutes

    @property
    def samples_per_week(self):
        """Intervals per week, ``7 f``."""
        return 7 * self.samples_per_day

    # ------------------------------------------------------------------
    # Region index arithmetic
    # ------------------------------------------------------------------
    def region_index(self, row, col):
        """Flatten ``(row, col)`` to a region id in row-major order."""
        row = np.asarray(row)
        col = np.asarray(col)
        if np.any((row < 0) | (row >= self.height) | (col < 0) | (col >= self.width)):
            raise ValueError("region coordinates out of bounds")
        return row * self.width + col

    def region_coords(self, index):
        """Inverse of :meth:`region_index`."""
        index = np.asarray(index)
        if np.any((index < 0) | (index >= self.num_regions)):
            raise ValueError("region index out of bounds")
        return index // self.width, index % self.width

    # ------------------------------------------------------------------
    # Time arithmetic
    # ------------------------------------------------------------------
    def time_of_day(self, interval):
        """Fraction of the day in ``[0, 1)`` for interval index(es)."""
        interval = np.asarray(interval)
        return (interval % self.samples_per_day) / self.samples_per_day

    def hour_of_day(self, interval):
        """Hour in ``[0, 24)`` for interval index(es)."""
        return self.time_of_day(interval) * 24.0

    def day_of_week(self, interval):
        """Weekday (0 = Monday .. 6 = Sunday) for interval index(es)."""
        interval = np.asarray(interval)
        day = interval // self.samples_per_day
        return (day + self.start_weekday) % 7

    def is_weekend(self, interval):
        """True for Saturday/Sunday intervals."""
        return self.day_of_week(interval) >= 5

    def intervals_for_days(self, days):
        """Number of intervals covering ``days`` whole days."""
        return days * self.samples_per_day
