"""Dataset serialization.

Simulating a full-scale city takes minutes; these helpers let users
simulate once and reload instantly (``.npz`` archives carrying the flow
tensor plus the grid/periodicity metadata needed to rebuild the
:class:`~repro.data.datasets.TrafficDataset`).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import TrafficDataset
from repro.data.grid import GridSpec
from repro.data.periodicity import MultiPeriodicity

__all__ = ["save_dataset", "load_dataset_file"]

_FORMAT_VERSION = 1


def save_dataset(dataset: TrafficDataset, path):
    """Write a dataset (flows + metadata) to an ``.npz`` archive."""
    grid = dataset.grid
    periodicity = dataset.periodicity
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        name=np.bytes_(dataset.name.encode()),
        scale=np.bytes_(dataset.scale.encode()),
        flows=dataset.flows,
        grid=np.array([grid.height, grid.width, grid.interval_minutes,
                       grid.start_weekday]),
        periodicity=np.array([periodicity.len_closeness, periodicity.len_period,
                              periodicity.len_trend, periodicity.samples_per_day]),
    )


def load_dataset_file(path):
    """Load a dataset previously written by :func:`save_dataset`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset file version {version} "
                f"(this library writes version {_FORMAT_VERSION})"
            )
        height, width, interval, weekday = (int(v) for v in archive["grid"])
        lc, lp, lt, f = (int(v) for v in archive["periodicity"])
        grid = GridSpec(height, width, interval_minutes=interval,
                        start_weekday=weekday)
        if f != grid.samples_per_day:
            raise ValueError("periodicity sampling does not match the grid")
        return TrafficDataset(
            name=bytes(archive["name"]).decode(),
            scale=bytes(archive["scale"]).decode(),
            grid=grid,
            flows=archive["flows"].copy(),
            periodicity=MultiPeriodicity(lc, lp, lt, samples_per_day=f),
        )
