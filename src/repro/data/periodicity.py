"""Closeness/period/trend interception (paper Definition 3).

A flow sequence is cut into three sub-series at different resolutions:

- **closeness** ``C_i``: the ``L_c`` most recent intervals,
- **period**    ``P_i``: the same interval on the ``L_p`` previous days,
- **trend**     ``T_i``: the same interval on the ``L_t`` previous weeks,

exactly per Eqs. (3)-(5).  :meth:`MultiPeriodicity.slice_at` implements
the one-step windows; :meth:`slice_multistep` the per-horizon variant
used for Table III, where horizon ``j`` keeps the same observed
closeness window but takes period/trend lags relative to the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MultiPeriodicity", "PeriodicSample"]


@dataclass(frozen=True)
class PeriodicSample:
    """One training example: the three sub-series plus the target.

    ``closeness`` is ``(L_c, 2, H, W)``, ``period`` ``(L_p, 2, H, W)``,
    ``trend`` ``(L_t, 2, H, W)``, ``target`` ``(2, H, W)``.
    """

    closeness: np.ndarray
    period: np.ndarray
    trend: np.ndarray
    target: np.ndarray
    index: int


class MultiPeriodicity:
    """Windowing logic for the three temporal resolutions.

    Parameters
    ----------
    len_closeness, len_period, len_trend:
        ``L_c``, ``L_p``, ``L_t`` (paper defaults 3, 4, 4).
    samples_per_day:
        Sampling frequency ``f`` (48 at 30-minute intervals).
    """

    def __init__(self, len_closeness=3, len_period=4, len_trend=4,
                 samples_per_day=48, period_lag=None, trend_lag=None):
        if min(len_closeness, len_period, len_trend) < 1:
            raise ValueError("all sub-series lengths must be >= 1")
        self.len_closeness = len_closeness
        self.len_period = len_period
        self.len_trend = len_trend
        self.samples_per_day = samples_per_day
        # Definition 3 notes that other resolutions can be chosen for
        # different forecasting needs (e.g. {daily, weekly, monthly} for
        # epidemic data).  The defaults are the paper's hourly/daily/
        # weekly choice: period lag = one day, trend lag = one week.
        self.period_lag = period_lag if period_lag is not None else samples_per_day
        self.trend_lag = trend_lag if trend_lag is not None else 7 * samples_per_day
        if self.period_lag < 1 or self.trend_lag < 1:
            raise ValueError("period/trend lags must be >= 1 interval")

    @property
    def min_index(self):
        """Smallest target index with a full history behind it."""
        return max(
            self.len_closeness,
            self.len_period * self.period_lag,
            self.len_trend * self.trend_lag,
        )

    def closeness_indices(self, i):
        """Eq. (3): ``[i - L_c, ..., i - 1]`` (most recent last)."""
        return np.arange(i - self.len_closeness, i)

    def period_indices(self, i):
        """Eq. (4): the ``L_p`` previous period lags (default: days)."""
        lag = self.period_lag
        return np.array([i - k * lag for k in range(self.len_period, 0, -1)])

    def trend_indices(self, i):
        """Eq. (5): the ``L_t`` previous trend lags (default: weeks)."""
        lag = self.trend_lag
        return np.array([i - k * lag for k in range(self.len_trend, 0, -1)])

    def slice_at(self, flows, i):
        """Build the :class:`PeriodicSample` whose target is ``flows[i]``."""
        flows = np.asarray(flows)
        if i < self.min_index or i >= len(flows):
            raise IndexError(
                f"target index {i} outside valid range "
                f"[{self.min_index}, {len(flows)})"
            )
        return PeriodicSample(
            closeness=flows[self.closeness_indices(i)],
            period=flows[self.period_indices(i)],
            trend=flows[self.trend_indices(i)],
            target=flows[i],
            index=i,
        )

    def slice_multistep(self, flows, anchor, horizon):
        """Per-horizon sample for multi-step forecasting (Table III).

        ``anchor`` is the first unobserved interval; ``horizon`` >= 1
        selects the target ``flows[anchor + horizon - 1]``.  Closeness
        uses the last observed window (ending at ``anchor - 1``);
        period/trend lags are taken relative to the *target* interval so
        they stay time-of-day aligned.  All referenced intervals lie in
        the past as long as ``horizon <= samples_per_day``.
        """
        flows = np.asarray(flows)
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if horizon > self.samples_per_day:
            raise ValueError("horizon beyond one day would reference unobserved data")
        target_index = anchor + horizon - 1
        if anchor < self.min_index or target_index >= len(flows):
            raise IndexError(f"anchor {anchor} / horizon {horizon} out of range")
        return PeriodicSample(
            closeness=flows[self.closeness_indices(anchor)],
            period=flows[self.period_indices(target_index)],
            trend=flows[self.trend_indices(target_index)],
            target=flows[target_index],
            index=target_index,
        )
