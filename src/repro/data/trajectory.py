"""Agent-based trajectory simulator (paper Definition 2 substrate).

The paper's datasets are inflow/outflow grids aggregated from real
bike/taxi trajectories.  Offline we cannot download those dumps, so
this module simulates a population of agents commuting on the grid and
aggregates their region transitions into inflow/outflow exactly per the
paper's Eqs. (1)-(2): an agent whose consecutive trajectory points move
out of region *(h, w)* counts toward that region's outflow, and into a
region toward its inflow.

The simulator produces the phenomena MUSE-Net is designed to exploit:

- **Multi-periodicity** — morning/evening commutes (daily) and distinct
  weekday/weekend schedules (weekly).
- **Point shift** — random events (concerts, incidents) that pull a
  crowd to one region for a few intervals.
- **Level shift** — a demand regime change at a configurable interval
  that rescales trip probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.grid import GridSpec

__all__ = [
    "TrafficEvent",
    "LevelShift",
    "CityConfig",
    "TrajectorySimulator",
    "flows_from_positions",
]

_HOME, _WORK, _OUT = 0, 1, 2


@dataclass(frozen=True)
class TrafficEvent:
    """A short-lived attraction causing a point shift in traffic.

    ``attendance`` agents travel to ``region`` at ``start_interval`` and
    head home once ``duration`` intervals have passed.
    """

    region: int
    start_interval: int
    duration: int
    attendance: int


@dataclass(frozen=True)
class LevelShift:
    """A demand regime change: from ``start_interval`` every trip
    probability is scaled by ``factor`` (e.g. 1.5 = busier season)."""

    start_interval: int
    factor: float


@dataclass
class CityConfig:
    """Behavioural parameters of the simulated population."""

    num_agents: int = 2000
    # Anchor-density blobs: (row, col, spread) in grid units.  Defaults
    # (None) place residential mass on one side and business mass on the
    # other, mimicking a commuter city.
    residential_centers: list = field(default=None)
    business_centers: list = field(default=None)
    leisure_centers: list = field(default=None)
    morning_hour: float = 8.0
    morning_std: float = 1.0
    evening_hour: float = 18.0
    evening_std: float = 1.25
    weekend_leisure_rate: float = 0.04  # per-interval departure prob, midday
    noise_trip_rate: float = 0.004  # per-interval random short trips
    return_rate: float = 0.35  # per-interval prob that an OUT agent heads home
    events: list = field(default_factory=list)
    level_shift: LevelShift = None


def _default_centers(grid):
    """Residential west / business east / leisure center blobs."""
    h, w = grid.height, grid.width
    residential = [(h * 0.3, w * 0.2, max(h, w) * 0.18),
                   (h * 0.75, w * 0.3, max(h, w) * 0.15)]
    business = [(h * 0.5, w * 0.8, max(h, w) * 0.12),
                (h * 0.2, w * 0.65, max(h, w) * 0.10)]
    leisure = [(h * 0.55, w * 0.5, max(h, w) * 0.15)]
    return residential, business, leisure


def _sample_regions(centers, count, grid, rng):
    """Draw ``count`` region ids from a mixture of Gaussian blobs."""
    centers = list(centers)
    choice = rng.integers(0, len(centers), size=count)
    rows = np.empty(count)
    cols = np.empty(count)
    for i, (cr, cc, spread) in enumerate(centers):
        mask = choice == i
        n = int(mask.sum())
        rows[mask] = rng.normal(cr, spread, size=n)
        cols[mask] = rng.normal(cc, spread, size=n)
    rows = np.clip(np.round(rows), 0, grid.height - 1).astype(int)
    cols = np.clip(np.round(cols), 0, grid.width - 1).astype(int)
    return grid.region_index(rows, cols)


def flows_from_positions(positions, grid):
    """Aggregate a position log into flows per the paper's Eqs. (1)-(2).

    ``positions`` is an integer array ``(T, num_agents)`` of region ids
    (one trajectory point per interval per agent).  Returns flows of
    shape ``(T, 2, H, W)`` with channel 0 = outflow, channel 1 = inflow.
    The first interval has no predecessor, so its flows are zero.
    """
    positions = np.asarray(positions)
    steps, _agents = positions.shape
    flows = np.zeros((steps, 2, grid.height, grid.width))
    for t in range(1, steps):
        previous = positions[t - 1]
        current = positions[t]
        moved = previous != current
        if not np.any(moved):
            continue
        out_rows, out_cols = grid.region_coords(previous[moved])
        in_rows, in_cols = grid.region_coords(current[moved])
        np.add.at(flows[t, 0], (out_rows, out_cols), 1.0)
        np.add.at(flows[t, 1], (in_rows, in_cols), 1.0)
    return flows


class TrajectorySimulator:
    """Simulate agent trajectories and aggregate them into flow grids.

    Parameters
    ----------
    grid:
        The :class:`~repro.data.grid.GridSpec` to simulate on.
    config:
        Population behaviour; ``None`` uses defaults sized to the grid.
    seed:
        Integer seed or ``numpy.random.Generator``.
    """

    def __init__(self, grid: GridSpec, config: CityConfig = None, seed=0):
        self.grid = grid
        self.config = config if config is not None else CityConfig()
        self._rng = np.random.default_rng(seed)
        cfg = self.config
        if cfg.residential_centers is None or cfg.business_centers is None \
                or cfg.leisure_centers is None:
            residential, business, leisure = _default_centers(grid)
            cfg.residential_centers = cfg.residential_centers or residential
            cfg.business_centers = cfg.business_centers or business
            cfg.leisure_centers = cfg.leisure_centers or leisure

        n = cfg.num_agents
        self.home = _sample_regions(cfg.residential_centers, n, grid, self._rng)
        self.work = _sample_regions(cfg.business_centers, n, grid, self._rng)
        # Per-agent habitual departure times (hours); re-jittered daily.
        self._morning_mean = self._rng.normal(cfg.morning_hour, cfg.morning_std, n)
        self._evening_mean = self._rng.normal(cfg.evening_hour, cfg.evening_std, n)

    # ------------------------------------------------------------------
    def simulate(self, num_intervals, record_positions=False):
        """Run the simulation and return flows ``(T, 2, H, W)``.

        With ``record_positions=True`` also returns the raw trajectory
        log ``(T, num_agents)`` (memory heavy; intended for tests).
        """
        grid, cfg, rng = self.grid, self.config, self._rng
        n = cfg.num_agents
        f = grid.samples_per_day
        dt_hours = 24.0 / f

        position = self.home.copy()
        state = np.full(n, _HOME, dtype=np.int8)
        event_until = np.full(n, -1, dtype=np.int64)  # busy at an event until t

        flows = np.zeros((num_intervals, 2, grid.height, grid.width))
        log = np.empty((num_intervals, n), dtype=np.int32) if record_positions else None

        morning = evening = None
        events_by_start = {}
        for event in cfg.events:
            events_by_start.setdefault(event.start_interval, []).append(event)

        for t in range(num_intervals):
            hour = float(grid.hour_of_day(t))
            weekend = bool(grid.is_weekend(t))
            demand = 1.0
            if cfg.level_shift is not None and t >= cfg.level_shift.start_interval:
                demand = cfg.level_shift.factor

            if hour == 0.0 or morning is None:
                # New day: re-jitter habitual departure times.
                morning = self._morning_mean + rng.normal(0.0, 0.25, n)
                evening = self._evening_mean + rng.normal(0.0, 0.4, n)

            previous = position.copy()
            busy = event_until > t

            if not weekend:
                # Morning commute: HOME -> WORK inside the departure slot.
                departs = (state == _HOME) & ~busy & (morning >= hour) & (morning < hour + dt_hours)
                departs &= rng.random(n) < min(demand, 1.0)
                position[departs] = self.work[departs]
                state[departs] = _WORK
                # Evening commute: WORK -> HOME.
                returns = (state == _WORK) & ~busy & (evening >= hour) & (evening < hour + dt_hours)
                position[returns] = self.home[returns]
                state[returns] = _HOME
            else:
                # Weekend leisure trips with a midday bump.
                midday = np.exp(-0.5 * ((hour - 14.0) / 3.5) ** 2)
                rate = cfg.weekend_leisure_rate * midday * demand
                departs = (state == _HOME) & ~busy & (rng.random(n) < rate)
                if np.any(departs):
                    dest = _sample_regions(cfg.leisure_centers, int(departs.sum()), grid, rng)
                    position[departs] = dest
                    state[departs] = _OUT

            # OUT agents drift home.
            going_home = (state == _OUT) & ~busy & (rng.random(n) < cfg.return_rate)
            position[going_home] = self.home[going_home]
            state[going_home] = _HOME

            # Random short noise trips to a nearby region.
            noise = (rng.random(n) < cfg.noise_trip_rate * demand) & ~busy
            if np.any(noise):
                rows, cols = grid.region_coords(position[noise])
                rows = np.clip(rows + rng.integers(-1, 2, int(noise.sum())), 0, grid.height - 1)
                cols = np.clip(cols + rng.integers(-1, 2, int(noise.sum())), 0, grid.width - 1)
                position[noise] = grid.region_index(rows, cols)
                state[noise] = _OUT

            # Events: pull a crowd to one region (point shift).
            for event in events_by_start.get(t, ()):  # starts this interval
                eligible = np.flatnonzero(~busy)
                take = min(event.attendance, eligible.size)
                chosen = rng.choice(eligible, size=take, replace=False)
                position[chosen] = event.region
                state[chosen] = _OUT
                event_until[chosen] = t + event.duration

            # Count transitions per Definition 2.
            moved = previous != position
            if np.any(moved):
                out_rows, out_cols = grid.region_coords(previous[moved])
                in_rows, in_cols = grid.region_coords(position[moved])
                np.add.at(flows[t, 0], (out_rows, out_cols), 1.0)
                np.add.at(flows[t, 1], (in_rows, in_cols), 1.0)

            if record_positions:
                log[t] = position

        if record_positions:
            return flows, log
        return flows
