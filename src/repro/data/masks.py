"""Temporal masks for the peak/non-peak and weekday/weekend analyses.

The paper's Tables IV and V slice test-set errors by time-of-day and
day-of-week; these helpers map target interval indices to the same
boolean masks: peak = 7-9 am and 5-7 pm, weekday = Monday-Friday.
"""

from __future__ import annotations

import numpy as np

from repro.data.grid import GridSpec

__all__ = ["peak_mask", "weekday_mask", "weekend_mask", "non_peak_mask"]

PEAK_WINDOWS = ((7.0, 9.0), (17.0, 19.0))


def peak_mask(grid: GridSpec, indices):
    """True for intervals inside the paper's peak windows."""
    hours = grid.hour_of_day(np.asarray(indices))
    mask = np.zeros(len(np.atleast_1d(hours)), dtype=bool)
    hours = np.atleast_1d(hours)
    for start, stop in PEAK_WINDOWS:
        mask |= (hours >= start) & (hours < stop)
    return mask


def non_peak_mask(grid: GridSpec, indices):
    """Complement of :func:`peak_mask`."""
    return ~peak_mask(grid, indices)


def weekday_mask(grid: GridSpec, indices):
    """True for Monday-Friday intervals."""
    return np.atleast_1d(grid.day_of_week(np.asarray(indices))) < 5


def weekend_mask(grid: GridSpec, indices):
    """True for Saturday/Sunday intervals."""
    return ~weekday_mask(grid, indices)
