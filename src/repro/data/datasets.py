"""Synthetic analogues of the paper's three benchmark datasets.

Each dataset mirrors the corresponding real dataset's geometry and
calendar (grid size, interval length, start weekday) and is produced by
the agent-based trajectory simulator, so inflow/outflow really are
trajectory aggregates per the paper's Definition 2.

Because the full paper-scale configuration (e.g. TaxiBJ: 32x32 grid,
~300 days at 30-minute intervals) is heavy for a CPU-only numpy stack,
every factory takes a ``scale``:

- ``"full"``  — paper geometry and span (slow; for overnight runs),
- ``"small"`` — the benchmark default: reduced grid/span that keeps the
  phenomena (multi-periodicity, shifts) intact,
- ``"tiny"``  — minutes-scale configs for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.grid import GridSpec
from repro.data.periodicity import MultiPeriodicity
from repro.data.trajectory import CityConfig, LevelShift, TrafficEvent, TrajectorySimulator

__all__ = ["TrafficDataset", "DATASET_NAMES", "load_dataset",
           "synthetic_nyc_bike", "synthetic_nyc_taxi", "synthetic_taxibj"]

DATASET_NAMES = ("nyc-bike", "nyc-taxi", "taxibj")

# (grid_height, grid_width, interval_minutes, days, num_agents,
#  periodicity = (L_c, L_p, L_t))
_SCALES = {
    "nyc-bike": {
        "full": ((10, 20), 30, 60, 4000, (3, 4, 4)),
        "small": ((6, 10), 60, 36, 1200, (3, 2, 2)),
        "tiny": ((4, 6), 120, 26, 300, (2, 1, 1)),
    },
    "nyc-taxi": {
        "full": ((10, 20), 30, 60, 12000, (3, 4, 4)),
        "small": ((6, 10), 60, 36, 3600, (3, 2, 2)),
        "tiny": ((4, 6), 120, 26, 800, (2, 1, 1)),
    },
    "taxibj": {
        "full": ((32, 32), 30, 120, 20000, (3, 4, 4)),
        "small": ((8, 8), 60, 36, 5000, (3, 2, 2)),
        "tiny": ((5, 5), 120, 26, 1000, (2, 1, 1)),
    },
}

# First day of each real dataset: NYC-Bike 2016-07-01 (Friday),
# NYC-Taxi 2015-01-01 (Thursday), TaxiBJ 2013-01-01 (Tuesday).
_START_WEEKDAYS = {"nyc-bike": 4, "nyc-taxi": 3, "taxibj": 1}


@dataclass
class TrafficDataset:
    """A named flow dataset: grid geometry plus the flow tensor.

    ``flows`` has shape ``(T, 2, H, W)`` — channel 0 outflow, channel 1
    inflow, matching the paper's tensor layout.
    """

    name: str
    scale: str
    grid: GridSpec
    flows: np.ndarray
    periodicity: MultiPeriodicity

    @property
    def num_intervals(self):
        """Total number of time intervals."""
        return len(self.flows)

    @property
    def num_days(self):
        """Span in whole days."""
        return self.num_intervals // self.grid.samples_per_day

    def test_window(self):
        """Intervals in the held-out tail.

        At full scale this is the paper's last third (20 of 60 days);
        reduced scales hold out 5 days so enough history is left to
        train after the multi-periodic warm-up is discarded.
        """
        if self.scale == "full":
            return self.num_intervals // 3
        return min(self.num_intervals // 3, 5 * self.grid.samples_per_day)

    def summary(self):
        """One-line human description."""
        return (
            f"{self.name} [{self.scale}]: {self.grid.height}x{self.grid.width} grid, "
            f"{self.num_days} days @ {self.grid.interval_minutes} min "
            f"({self.num_intervals} intervals), "
            f"mean flow {self.flows.mean():.2f}, max {self.flows.max():.0f}"
        )


def _build(name, scale, seed, days=None, num_agents=None):
    if name not in _SCALES:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if scale not in _SCALES[name]:
        raise ValueError(f"unknown scale {scale!r}; choose full/small/tiny")
    (height, width), interval, base_days, base_agents, (lc, lp, lt) = _SCALES[name][scale]
    days = days if days is not None else base_days
    num_agents = num_agents if num_agents is not None else base_agents

    grid = GridSpec(height, width, interval_minutes=interval,
                    start_weekday=_START_WEEKDAYS[name])
    rng = np.random.default_rng(seed)
    num_intervals = grid.intervals_for_days(days)

    # Point shifts: a handful of events in the second half of the span.
    events = []
    for _ in range(max(2, days // 12)):
        events.append(TrafficEvent(
            region=int(rng.integers(0, grid.num_regions)),
            start_interval=int(rng.integers(num_intervals // 4, num_intervals - grid.samples_per_day)),
            duration=int(rng.integers(2, 6)),
            attendance=max(20, num_agents // 25),
        ))
    # Level shift: demand drops by 25% three-quarters through the span
    # (e.g. a seasonal break), creating the paper's level-shift regime.
    level = LevelShift(start_interval=(3 * num_intervals) // 4, factor=0.75)

    config = CityConfig(num_agents=num_agents, events=events, level_shift=level)
    simulator = TrajectorySimulator(grid, config, seed=rng.integers(0, 2**31))
    flows = simulator.simulate(num_intervals)

    periodicity = MultiPeriodicity(lc, lp, lt, samples_per_day=grid.samples_per_day)
    return TrafficDataset(name=name, scale=scale, grid=grid, flows=flows,
                          periodicity=periodicity)


def synthetic_nyc_bike(scale="small", seed=2016, days=None, num_agents=None):
    """Synthetic analogue of NYC-Bike (10x20 grid, from 2016-07-01)."""
    return _build("nyc-bike", scale, seed, days=days, num_agents=num_agents)


def synthetic_nyc_taxi(scale="small", seed=2015, days=None, num_agents=None):
    """Synthetic analogue of NYC-Taxi (10x20 grid, from 2015-01-01)."""
    return _build("nyc-taxi", scale, seed, days=days, num_agents=num_agents)


def synthetic_taxibj(scale="small", seed=2013, days=None, num_agents=None):
    """Synthetic analogue of TaxiBJ (32x32 grid, 2013)."""
    return _build("taxibj", scale, seed, days=days, num_agents=num_agents)


_FACTORIES = {
    "nyc-bike": synthetic_nyc_bike,
    "nyc-taxi": synthetic_nyc_taxi,
    "taxibj": synthetic_taxibj,
}


def load_dataset(name, scale="small", seed=None):
    """Load a dataset by name with its default seed (or an override)."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
