"""Fast pattern-based flow generator.

A lightweight alternative to the agent simulator: flows are composed
directly from diurnal/weekly harmonics, a spatial profile, events, and
noise.  It is orders of magnitude faster than simulating agents, which
makes it the workhorse for property tests and benchmark sweeps, while
the trajectory simulator provides the faithful Definition-2 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.grid import GridSpec

__all__ = ["PatternConfig", "generate_pattern_flows"]


@dataclass
class PatternConfig:
    """Parameters of the harmonic flow generator."""

    base_level: float = 20.0
    daily_amplitude: float = 15.0
    weekly_amplitude: float = 6.0
    morning_hour: float = 8.0
    evening_hour: float = 18.0
    peak_width_hours: float = 1.5
    noise_std: float = 2.0
    # (interval, row, col, magnitude, duration) point-shift spikes.
    events: list = field(default_factory=list)
    # (interval, factor) level shift.
    level_shift: tuple = None
    # Disruption injectors (docs/streaming.md): road closures kill a
    # cell's flows for a window — (start, duration, row, col) — and
    # demand surges multiply them — (start, duration, row, col,
    # factor).  Both apply after the harmonic base and events, before
    # noise, so the disrupted regime still carries realistic jitter.
    closures: list = field(default_factory=list)
    surges: list = field(default_factory=list)


def _spatial_profile(grid, rng):
    """Smooth positive spatial weighting with a few hotspots."""
    rows = np.arange(grid.height)[:, None]
    cols = np.arange(grid.width)[None, :]
    profile = np.full((grid.height, grid.width), 0.35)
    for _ in range(3):
        cr = rng.uniform(0, grid.height)
        cc = rng.uniform(0, grid.width)
        spread = max(grid.height, grid.width) * rng.uniform(0.1, 0.25)
        profile += np.exp(-((rows - cr) ** 2 + (cols - cc) ** 2) / (2 * spread**2))
    return profile / profile.mean()


def generate_pattern_flows(grid: GridSpec, num_intervals, config=None, seed=0):
    """Generate flows ``(T, 2, H, W)`` from harmonic patterns.

    Outflow and inflow share the temporal rhythm but use mirrored
    spatial profiles (morning flow drains residential cells and fills
    business cells; evenings reverse), so the two channels are related
    but not identical — as in real commuter data.
    """
    config = config if config is not None else PatternConfig()
    rng = np.random.default_rng(seed)
    hours = grid.hour_of_day(np.arange(num_intervals))
    weekend = grid.is_weekend(np.arange(num_intervals))

    morning = np.exp(-0.5 * ((hours - config.morning_hour) / config.peak_width_hours) ** 2)
    evening = np.exp(-0.5 * ((hours - config.evening_hour) / config.peak_width_hours) ** 2)
    midday = np.exp(-0.5 * ((hours - 14.0) / 3.0) ** 2)
    weekday_rhythm = morning + evening
    weekend_rhythm = 0.6 * midday
    rhythm = np.where(weekend, weekend_rhythm, weekday_rhythm)
    weekly = 1.0 + (config.weekly_amplitude / config.base_level) * np.where(weekend, -0.5, 0.25)

    temporal = config.base_level * 0.25 + config.daily_amplitude * rhythm * weekly

    profile_out = _spatial_profile(grid, rng)
    profile_in = _spatial_profile(grid, rng)
    # Morning vs evening asymmetry between channels.
    direction = np.where(weekend, 0.5, morning / (morning + evening + 1e-9))

    flows = np.empty((num_intervals, 2, grid.height, grid.width))
    flows[:, 0] = temporal[:, None, None] * (
        direction[:, None, None] * profile_out + (1 - direction)[:, None, None] * profile_in
    )
    flows[:, 1] = temporal[:, None, None] * (
        direction[:, None, None] * profile_in + (1 - direction)[:, None, None] * profile_out
    )

    if config.level_shift is not None:
        start, factor = config.level_shift
        flows[start:] *= factor

    for interval, row, col, magnitude, duration in config.events:
        stop = min(interval + duration, num_intervals)
        flows[interval:stop, 1, row, col] += magnitude
        flows[interval:stop, 0, row, col] += magnitude * 0.5

    for start, duration, row, col in config.closures:
        stop = min(start + duration, num_intervals)
        flows[start:stop, :, row, col] = 0.0

    for start, duration, row, col, factor in config.surges:
        stop = min(start + duration, num_intervals)
        flows[start:stop, :, row, col] *= factor

    flows += rng.normal(0.0, config.noise_std, size=flows.shape)
    np.maximum(flows, 0.0, out=flows)
    return flows
