"""Beyond traffic: the paper's future-work application domains.

The MUSE-Net conclusion argues the method transfers to "population-
level epidemic forecasting, air-quality forecasting, and energy
forecasting" once the sensors are mapped to grids and the series
intercepted into closeness/period/trend.  These generators build grid
datasets for each domain with the periodic structure and shift
phenomena the model targets, all compatible with the standard pipeline.

Every generator returns a :class:`~repro.data.datasets.TrafficDataset`
whose two channels carry the domain's paired quantities (analogous to
outflow/inflow).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import TrafficDataset
from repro.data.grid import GridSpec
from repro.data.periodicity import MultiPeriodicity

__all__ = ["epidemic_dataset", "air_quality_dataset", "energy_dataset"]


def _hotspots(grid, rng, count=3):
    """Random smooth positive intensity field over the grid."""
    rows = np.arange(grid.height)[:, None]
    cols = np.arange(grid.width)[None, :]
    field = np.full((grid.height, grid.width), 0.2)
    for _ in range(count):
        cr = rng.uniform(0, grid.height)
        cc = rng.uniform(0, grid.width)
        spread = max(grid.height, grid.width) * rng.uniform(0.12, 0.3)
        field += np.exp(-((rows - cr) ** 2 + (cols - cc) ** 2) / (2 * spread**2))
    return field / field.mean()


def _diffuse(field, rate=0.15):
    """One step of 4-neighbour diffusion on a 2-D field."""
    padded = np.pad(field, 1, mode="edge")
    neighbours = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                  + padded[1:-1, :-2] + padded[1:-1, 2:])
    return field + rate * (neighbours / 4.0 - field)


def epidemic_dataset(height=6, width=6, days=180, seed=0):
    """Daily metapopulation SIR epidemic on a grid.

    Channels: 0 = new reported cases, 1 = active infections.  Data is
    daily (``samples_per_day = 1``), so the multi-periodic windows use
    {daily, weekly, monthly} resolutions per Definition 3's note:
    closeness = recent days, period lag = 7 days, trend lag = 28 days.
    Weekly reporting artifacts (weekend under-reporting) provide the
    period signal; a mid-series intervention (contact-rate drop)
    provides the level shift, and an imported-cases event the point
    shift.
    """
    rng = np.random.default_rng(seed)
    grid = GridSpec(height, width, interval_minutes=24 * 60, start_weekday=0)
    population = 1e4 * _hotspots(grid, rng)
    susceptible = population.copy()
    infected = np.zeros_like(population)
    recovered = np.zeros_like(population)
    # Seed the outbreak in one corner hotspot.
    seed_cell = np.unravel_index(population.argmax(), population.shape)
    infected[seed_cell] = 20.0
    susceptible[seed_cell] -= 20.0

    beta0, gamma = 0.35, 0.15
    intervention_day = days // 2
    import_day = days // 4
    flows = np.zeros((days, 2, height, width))

    for day in range(days):
        beta = beta0 * (0.55 if day >= intervention_day else 1.0)  # level shift
        if day == import_day:  # point shift: imported cluster
            row = rng.integers(0, height)
            col = rng.integers(0, width)
            infected[row, col] += 50.0
        # Commuting coupling: infection pressure diffuses between cells.
        pressure = _diffuse(infected / np.maximum(population, 1.0), rate=0.3)
        new_cases = beta * susceptible * pressure
        new_cases = np.minimum(new_cases, susceptible)
        recoveries = gamma * infected
        susceptible -= new_cases
        infected += new_cases - recoveries
        recovered += recoveries
        # Weekly reporting artifact: weekends under-report by 40%.
        weekday = (day + grid.start_weekday) % 7
        reporting = 0.6 if weekday >= 5 else 1.0
        reported = new_cases * reporting * rng.uniform(0.9, 1.1, size=new_cases.shape)
        flows[day, 0] = reported
        flows[day, 1] = infected

    periodicity = MultiPeriodicity(
        len_closeness=3, len_period=2, len_trend=2,
        samples_per_day=1, period_lag=7, trend_lag=28,
    )
    return TrafficDataset(name="epidemic", scale="application", grid=grid,
                          flows=flows, periodicity=periodicity)


def air_quality_dataset(height=6, width=8, days=35, seed=0):
    """Hourly pollutant concentrations on a grid.

    Channels: 0 = PM2.5-like, 1 = NO2-like.  Traffic-rhythm emissions
    (morning/evening peaks on weekdays) drive NO2; PM accumulates and
    diffuses with the wind.  A multi-day inversion episode (stagnant
    air) supplies the level shift; a wildfire-smoke day the point shift.
    """
    rng = np.random.default_rng(seed)
    grid = GridSpec(height, width, interval_minutes=60, start_weekday=0)
    steps = grid.intervals_for_days(days)
    sources = _hotspots(grid, rng)
    background = _hotspots(grid, rng)

    pm = np.full((height, width), 8.0)
    flows = np.zeros((steps, 2, height, width))
    inversion_start = grid.intervals_for_days(int(days * 0.6))
    inversion_stop = inversion_start + grid.intervals_for_days(4)
    smoke_step = grid.intervals_for_days(int(days * 0.3)) + 14

    for t in range(steps):
        hour = float(grid.hour_of_day(t))
        weekend = bool(grid.is_weekend(t))
        rush = (np.exp(-0.5 * ((hour - 8.0) / 1.5) ** 2)
                + np.exp(-0.5 * ((hour - 18.0) / 1.5) ** 2))
        traffic = (0.4 if weekend else 1.0) * rush
        emissions = sources * (2.0 * traffic + 0.5)

        stagnant = inversion_start <= t < inversion_stop
        dispersal = 0.02 if stagnant else 0.12  # inversion traps pollution
        pm = _diffuse(pm, rate=0.2)
        pm = pm * (1.0 - dispersal) + emissions
        if t == smoke_step:  # point shift: smoke plume hits one corner
            pm[: height // 2, : width // 2] += 80.0

        no2 = emissions * 3.0 + background + rng.normal(0, 0.3, size=pm.shape)
        flows[t, 0] = pm + rng.normal(0, 0.5, size=pm.shape)
        flows[t, 1] = np.maximum(no2, 0.0)

    np.maximum(flows, 0.0, out=flows)
    periodicity = MultiPeriodicity(3, 2, 2, samples_per_day=grid.samples_per_day)
    return TrafficDataset(name="air-quality", scale="application", grid=grid,
                          flows=flows, periodicity=periodicity)


def energy_dataset(height=5, width=8, days=35, seed=0):
    """Hourly electricity demand and rooftop-solar generation.

    Channels: 0 = consumption, 1 = solar generation.  Residential cells
    peak in the evening, commercial cells during office hours; weekends
    flatten the commercial load (weekly signal).  A heat wave raises
    demand for several days (level shift) and a grid fault blacks out a
    block for a few hours (point shift).
    """
    rng = np.random.default_rng(seed)
    grid = GridSpec(height, width, interval_minutes=60, start_weekday=0)
    steps = grid.intervals_for_days(days)
    residential = _hotspots(grid, rng)
    commercial = _hotspots(grid, rng)
    solar_capacity = _hotspots(grid, rng)

    flows = np.zeros((steps, 2, height, width))
    heat_start = grid.intervals_for_days(int(days * 0.55))
    heat_stop = heat_start + grid.intervals_for_days(5)
    fault_step = grid.intervals_for_days(int(days * 0.8)) + 20

    for t in range(steps):
        hour = float(grid.hour_of_day(t))
        weekend = bool(grid.is_weekend(t))
        evening = np.exp(-0.5 * ((hour - 20.0) / 2.5) ** 2)
        office = np.exp(-0.5 * ((hour - 13.0) / 3.5) ** 2)
        base = 5.0 + 10.0 * evening * residential
        base += 12.0 * office * commercial * (0.3 if weekend else 1.0)
        if heat_start <= t < heat_stop:  # level shift: AC load
            base *= 1.4
        demand = base + rng.normal(0, 0.4, size=base.shape)
        if t == fault_step:  # point shift: local blackout
            demand[:2, :3] *= 0.05

        daylight = max(0.0, np.sin(np.pi * (hour - 6.0) / 12.0))
        cloud = rng.uniform(0.6, 1.0)
        solar = solar_capacity * 6.0 * daylight * cloud

        flows[t, 0] = np.maximum(demand, 0.0)
        flows[t, 1] = solar

    periodicity = MultiPeriodicity(3, 2, 2, samples_per_day=grid.samples_per_day)
    return TrafficDataset(name="energy", scale="application", grid=grid,
                          flows=flows, periodicity=periodicity)
