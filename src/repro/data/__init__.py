"""Traffic data substrate: grids, trajectories, datasets, windowing."""

from repro.data.grid import GridSpec
from repro.data.trajectory import (
    CityConfig,
    LevelShift,
    TrafficEvent,
    TrajectorySimulator,
    flows_from_positions,
)
from repro.data.generator import PatternConfig, generate_pattern_flows
from repro.data.scaler import MinMaxScaler
from repro.data.periodicity import MultiPeriodicity, PeriodicSample
from repro.data.windows import (
    SampleBatch,
    build_samples,
    chronological_split,
    iterate_batches,
)
from repro.data.masks import non_peak_mask, peak_mask, weekday_mask, weekend_mask
from repro.data.datasets import (
    DATASET_NAMES,
    TrafficDataset,
    load_dataset,
    synthetic_nyc_bike,
    synthetic_nyc_taxi,
    synthetic_taxibj,
)
from repro.data.pipeline import ForecastData, prepare_forecast_data
from repro.data.io import load_dataset_file, save_dataset
from repro.data.applications import (
    air_quality_dataset,
    energy_dataset,
    epidemic_dataset,
)

__all__ = [
    "GridSpec",
    "CityConfig", "LevelShift", "TrafficEvent", "TrajectorySimulator",
    "flows_from_positions",
    "PatternConfig", "generate_pattern_flows",
    "MinMaxScaler",
    "MultiPeriodicity", "PeriodicSample",
    "SampleBatch", "build_samples", "chronological_split", "iterate_batches",
    "peak_mask", "non_peak_mask", "weekday_mask", "weekend_mask",
    "DATASET_NAMES", "TrafficDataset", "load_dataset",
    "synthetic_nyc_bike", "synthetic_nyc_taxi", "synthetic_taxibj",
    "ForecastData", "prepare_forecast_data",
    "save_dataset", "load_dataset_file",
    "epidemic_dataset", "air_quality_dataset", "energy_dataset",
]
