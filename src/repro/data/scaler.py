"""Min-max scaling to [-1, 1] (the paper's preprocessing).

The paper's final activation is ``tanh``, so flows are scaled into
``[-1, 1]`` on the *training* split and predictions are re-scaled back
before computing metrics.

Outputs follow the tensor library's precision policy
(:func:`repro.tensor.get_default_dtype`): under a float32 policy the
scaled arrays — and therefore every window the model sees — are
float32, keeping the training hot path in single precision end to end.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import get_default_dtype

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Scale arrays into ``[low, high]`` from the fitted data range."""

    def __init__(self, feature_range=(-1.0, 1.0)):
        low, high = feature_range
        if not low < high:
            raise ValueError(f"invalid feature range {feature_range}")
        self.low = low
        self.high = high
        self.data_min = None
        self.data_max = None
        # Raw (pre-degeneracy-adjustment) bounds, kept so update() can
        # fold new data in exactly as a full refit on the concatenation
        # would: the degenerate-range fix below rewrites data_max, and
        # folding into the *adjusted* bound would drift from a refit.
        self._raw_min = None
        self._raw_max = None

    @property
    def fitted(self):
        """Whether :meth:`fit` has been called."""
        return self.data_min is not None

    @staticmethod
    def _validate(data, method):
        data = np.asarray(data)
        if data.size == 0:
            raise ValueError(f"MinMaxScaler.{method} received an empty array")
        if not np.isfinite(data).all():
            nans = int(np.isnan(data).sum())
            infs = int(np.isinf(data).sum())
            raise ValueError(
                f"MinMaxScaler.{method}: data contains non-finite values "
                f"({nans} NaN, {infs} Inf of {data.size}); clean or mask "
                "the flows before scaling"
            )
        return data

    def _apply_bounds(self):
        self.data_min = self._raw_min
        self.data_max = self._raw_max
        if self.data_max == self.data_min:
            # Degenerate constant data: avoid dividing by zero.
            self.data_max = self.data_min + 1.0

    def fit(self, data):
        """Record the global min/max of ``data`` (train split only).

        Raises ``ValueError`` when ``data`` contains NaN/Inf: non-finite
        bounds would silently poison every transformed window (NaN
        propagates through min/max), so the pipeline fails loudly at
        the source instead.
        """
        data = self._validate(data, "fit")
        self._raw_min = float(data.min())
        self._raw_max = float(data.max())
        self._apply_bounds()
        return self

    def update(self, data):
        """Widen the fitted bounds with new data (rolling re-fit).

        Streaming re-training must not silently reuse stale
        normalization bounds: after a level shift the new regime can
        exceed the training-time range, clipping every transformed
        window against the tanh head's asymptotes.  ``update`` folds a
        new window of raw flows into the fitted min/max — the result is
        **bit-identical** to calling :meth:`fit` on the concatenation
        of everything seen so far, because the raw (pre-degeneracy-
        adjustment) bounds are what the new extrema fold into.  Bounds
        only ever widen; already-transformed arrays stay valid.
        """
        self._require_fitted()
        data = self._validate(data, "update")
        self._raw_min = min(self._raw_min, float(data.min()))
        self._raw_max = max(self._raw_max, float(data.max()))
        self._apply_bounds()
        return self

    def transform(self, data):
        """Map ``data`` into the feature range (policy dtype)."""
        self._require_fitted()
        unit = (np.asarray(data) - self.data_min) / (self.data_max - self.data_min)
        scaled = unit * (self.high - self.low) + self.low
        return scaled.astype(get_default_dtype(), copy=False)

    def fit_transform(self, data):
        """Fit then transform in one call."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data):
        """Map scaled values back to the original units.

        Keeps the input's floating dtype (a float32 prediction inverts
        to float32); integer inputs are mapped through the policy dtype.
        """
        self._require_fitted()
        data = np.asarray(data)
        if data.dtype.kind != "f":
            data = data.astype(get_default_dtype())
        unit = (data - self.low) / (self.high - self.low)
        return unit * (self.data_max - self.data_min) + self.data_min

    def _require_fitted(self):
        if not self.fitted:
            raise RuntimeError("scaler used before fit()")
