"""Instrumentation for the autodiff runtime.

- :func:`profile` / :class:`OpProfiler` — per-op forward/backward wall
  time, call counts, output bytes, and tape-memory accounting, hooked
  into the engine's two choke points (``Tensor._from_op`` and
  ``Tensor.backward``).  Zero cost when no profiler is installed.
- :func:`format_op_summary` — render a collected profile as a table.

See the "Profiling & telemetry" section of ``docs/api.md``.
"""

from repro.profiling.op_profiler import (
    OpProfiler,
    OpStats,
    format_op_summary,
    get_active_profiler,
    profile,
)

__all__ = ["OpProfiler", "OpStats", "profile", "get_active_profiler",
           "format_op_summary"]
