"""Low-overhead op profiler for the autodiff runtime.

The engine funnels every recorded operation through
:meth:`repro.tensor.Tensor._from_op` and every gradient closure through
:meth:`repro.tensor.Tensor.backward`, so those two choke points are the
only instrumentation hooks needed.  When no profiler is installed the
hooks reduce to a single ``None`` check; when one is installed via
:func:`profile`, it collects

- per-op *forward* wall time (interval attribution: the time elapsed
  since the previous recorded op, which in this synchronous single-
  threaded engine is dominated by the op's own numpy work),
- per-op *backward* wall time (each closure is timed directly),
- call counts and cumulative output bytes, and
- tape accounting: bytes of op outputs currently held by the tape,
  with a high-water mark (``peak_tape_bytes``) that drops when
  ``backward()`` frees the graph (see the tape-lifecycle notes in
  ``Tensor.backward``).

Forward attribution is an approximation at the boundaries: the first op
after non-tensor work (data slicing, an optimizer step) absorbs that
gap.  Call :meth:`OpProfiler.mark` right before a forward pass to reset
the clock — the trainer does this per batch, and ``backward()`` does it
on exit.
"""

from __future__ import annotations

import contextlib
import time

from repro.tensor import tensor as _tensor_core

__all__ = ["OpStats", "OpProfiler", "profile", "get_active_profiler",
           "format_op_summary"]


class OpStats:
    """Accumulated statistics for one op name."""

    __slots__ = ("calls", "forward_s", "backward_calls", "backward_s",
                 "output_bytes", "grad_bytes", "alloc_bytes")

    def __init__(self):
        self.calls = 0
        self.forward_s = 0.0
        self.backward_calls = 0
        self.backward_s = 0.0
        self.output_bytes = 0
        self.grad_bytes = 0
        self.alloc_bytes = 0

    def as_dict(self):
        """Plain-dict view (JSON-serialisable)."""
        return {
            "calls": self.calls,
            "forward_s": self.forward_s,
            "backward_calls": self.backward_calls,
            "backward_s": self.backward_s,
            "output_bytes": self.output_bytes,
            "grad_bytes": self.grad_bytes,
            "alloc_bytes": self.alloc_bytes,
        }

    def __repr__(self):
        return (f"OpStats(calls={self.calls}, forward_s={self.forward_s:.6f}, "
                f"backward_calls={self.backward_calls}, "
                f"backward_s={self.backward_s:.6f}, "
                f"output_bytes={self.output_bytes}, "
                f"grad_bytes={self.grad_bytes})")


class OpProfiler:
    """Collects per-op timing and tape-memory accounting.

    Install with :func:`profile`; read results from :attr:`stats`,
    :attr:`peak_tape_bytes`, or the rendered :meth:`summary`.
    """

    def __init__(self):
        self.stats = {}
        self.tape_bytes = 0
        self.peak_tape_bytes = 0
        # Allocation accounting: gradient buffers allocated during
        # backward (attributed per op below), and bytes the optimizer
        # reports allocating inside step() — zero per steady-state step
        # for the in-place kernels, ~a dozen temporaries per parameter
        # for the reference kernels.
        self.grad_alloc_bytes = 0
        self.optimizer_alloc_bytes = 0
        self.optimizer_steps = 0
        # Data-parallel counters (repro.parallel): time spent in the
        # parent's shared-memory gradient allreduce, and time the step
        # loop stalled waiting on the prefetch ring.
        self.parallel_steps = 0
        self.parallel_reduce_s = 0.0
        self.prefetch_stall_s = 0.0
        # Serving counters (repro.serve): micro-batched forwards run by
        # a ForecastServer, wall time inside them, requests coalesced,
        # and cumulative queue wait across those requests.
        self.serve_batches = 0
        self.serve_batch_s = 0.0
        self.serve_requests = 0
        self.serve_queue_wait_s = 0.0
        # Result-cache counters (repro.serve.results): streaming
        # forecasts answered from the generation-keyed cache (hits +
        # coalesced joiners) vs. forecasts that ran a model forward.
        self.serve_cache_hits = 0
        self.serve_cache_misses = 0
        # Forward-allocation accounting: bytes of *fresh* op-output
        # arrays (views excluded) materialised by the eager engine.
        # Compiled replay bypasses ``_from_op`` entirely, so this
        # counter is the eager-vs-compiled allocation delta the
        # throughput bench reports per arm.
        self.forward_alloc_bytes = 0
        # Compile counters (repro.compile): plans built, wall time
        # spent building them, arena footprint of the latest plan, its
        # buffer-reuse percentage, and replayed (non-eager) steps.
        self.compile_plans = 0
        self.compile_plan_s = 0.0
        self.arena_bytes = 0
        self.arena_reuse_pct = 0.0
        self.compiled_steps = 0
        # Streaming counters (repro.stream): ticks ingested, gap frames
        # carried forward, ticks quarantined, confirmed drifts, warm
        # retrains (and their wall time), and forecasts answered by the
        # degradation ladder instead of the model.
        self.stream_ticks = 0
        self.stream_gap_fills = 0
        self.stream_quarantined = 0
        self.stream_drifts = 0
        self.stream_retrains = 0
        self.stream_retrain_s = 0.0
        self.stream_fallbacks = 0
        self._last = time.perf_counter()

    # -- hooks called by the tensor core ------------------------------
    def mark(self):
        """Reset the forward-attribution clock to *now*."""
        self._last = time.perf_counter()

    def _record_forward(self, name, nbytes, on_tape, alloc_bytes=0):
        now = time.perf_counter()
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = OpStats()
        entry.calls += 1
        entry.forward_s += now - self._last
        entry.output_bytes += nbytes
        entry.alloc_bytes += alloc_bytes
        self.forward_alloc_bytes += alloc_bytes
        self._last = now
        if on_tape:
            self.tape_bytes += nbytes
            if self.tape_bytes > self.peak_tape_bytes:
                self.peak_tape_bytes = self.tape_bytes

    def _record_backward(self, name, seconds):
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = OpStats()
        entry.backward_calls += 1
        entry.backward_s += seconds

    def _record_tape_free(self, nbytes):
        self.tape_bytes = max(0, self.tape_bytes - nbytes)

    def _record_grad_alloc(self, name, nbytes):
        """A gradient buffer of ``nbytes`` was allocated for op ``name``."""
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = OpStats()
        entry.grad_bytes += nbytes
        self.grad_alloc_bytes += nbytes

    def _record_optimizer_step(self, alloc_bytes):
        """One optimizer step completed, having allocated ``alloc_bytes``."""
        self.optimizer_steps += 1
        self.optimizer_alloc_bytes += alloc_bytes

    def _record_parallel_step(self, reduce_seconds, stall_seconds):
        """One data-parallel step: allreduce time + prefetch stall."""
        self.parallel_steps += 1
        self.parallel_reduce_s += reduce_seconds
        self.prefetch_stall_s += stall_seconds

    def _record_serve_batch(self, seconds, requests, queue_wait_s):
        """One micro-batched serving forward over ``requests`` requests."""
        self.serve_batches += 1
        self.serve_batch_s += seconds
        self.serve_requests += requests
        self.serve_queue_wait_s += queue_wait_s

    def _record_serve_cache(self, hit):
        """One streaming forecast request hit (or missed) the result cache."""
        if hit:
            self.serve_cache_hits += 1
        else:
            self.serve_cache_misses += 1

    def _record_compile_plan(self, seconds, arena_bytes, reuse_pct):
        """One compiled plan was built in ``seconds`` wall time."""
        self.compile_plans += 1
        self.compile_plan_s += seconds
        self.arena_bytes = arena_bytes
        self.arena_reuse_pct = reuse_pct

    def _record_compiled_step(self):
        """One training/serving step executed via compiled replay."""
        self.compiled_steps += 1

    def _record_stream_tick(self, gap_fills=0, quarantined=0):
        """One tick processed by the stream runtime."""
        self.stream_ticks += 1
        self.stream_gap_fills += gap_fills
        self.stream_quarantined += quarantined

    def _record_stream_drift(self):
        """The drift sentinel confirmed one sustained drift."""
        self.stream_drifts += 1

    def _record_stream_retrain(self, seconds):
        """One warm re-training attempt took ``seconds`` wall time."""
        self.stream_retrains += 1
        self.stream_retrain_s += seconds

    def _record_stream_fallback(self):
        """One forecast was answered by the degradation ladder."""
        self.stream_fallbacks += 1

    # -- reading results ----------------------------------------------
    @property
    def total_forward_s(self):
        """Summed forward wall time over all ops."""
        return sum(s.forward_s for s in self.stats.values())

    @property
    def total_backward_s(self):
        """Summed backward wall time over all ops."""
        return sum(s.backward_s for s in self.stats.values())

    def reset(self):
        """Drop all collected statistics and tape counters."""
        self.stats = {}
        self.tape_bytes = 0
        self.peak_tape_bytes = 0
        self.grad_alloc_bytes = 0
        self.optimizer_alloc_bytes = 0
        self.optimizer_steps = 0
        self.parallel_steps = 0
        self.parallel_reduce_s = 0.0
        self.prefetch_stall_s = 0.0
        self.serve_batches = 0
        self.serve_batch_s = 0.0
        self.serve_requests = 0
        self.serve_queue_wait_s = 0.0
        self.serve_cache_hits = 0
        self.serve_cache_misses = 0
        self.forward_alloc_bytes = 0
        self.compile_plans = 0
        self.compile_plan_s = 0.0
        self.arena_bytes = 0
        self.arena_reuse_pct = 0.0
        self.compiled_steps = 0
        self.stream_ticks = 0
        self.stream_gap_fills = 0
        self.stream_quarantined = 0
        self.stream_drifts = 0
        self.stream_retrains = 0
        self.stream_retrain_s = 0.0
        self.stream_fallbacks = 0
        self.mark()

    def as_dict(self):
        """JSON-serialisable snapshot of everything collected."""
        return {
            "ops": {name: stats.as_dict() for name, stats in self.stats.items()},
            "total_forward_s": self.total_forward_s,
            "total_backward_s": self.total_backward_s,
            "peak_tape_bytes": self.peak_tape_bytes,
            "grad_alloc_bytes": self.grad_alloc_bytes,
            "optimizer_alloc_bytes": self.optimizer_alloc_bytes,
            "optimizer_steps": self.optimizer_steps,
            "parallel_steps": self.parallel_steps,
            "parallel_reduce_s": self.parallel_reduce_s,
            "prefetch_stall_s": self.prefetch_stall_s,
            "serve_batches": self.serve_batches,
            "serve_batch_s": self.serve_batch_s,
            "serve_requests": self.serve_requests,
            "serve_queue_wait_s": self.serve_queue_wait_s,
            "serve_cache_hits": self.serve_cache_hits,
            "serve_cache_misses": self.serve_cache_misses,
            "forward_alloc_bytes": self.forward_alloc_bytes,
            "compile_plans": self.compile_plans,
            "compile_plan_s": self.compile_plan_s,
            "arena_bytes": self.arena_bytes,
            "arena_reuse_pct": self.arena_reuse_pct,
            "compiled_steps": self.compiled_steps,
            "stream_ticks": self.stream_ticks,
            "stream_gap_fills": self.stream_gap_fills,
            "stream_quarantined": self.stream_quarantined,
            "stream_drifts": self.stream_drifts,
            "stream_retrains": self.stream_retrains,
            "stream_retrain_s": self.stream_retrain_s,
            "stream_fallbacks": self.stream_fallbacks,
        }

    def summary(self, limit=12):
        """Aligned text table of the most expensive ops."""
        return format_op_summary(self.as_dict(), limit=limit)


def format_op_summary(op_profile, limit=12):
    """Render an ``OpProfiler.as_dict()`` snapshot as a text table.

    Ops are sorted by combined forward+backward time, descending;
    ``limit`` truncates the table (``None`` shows everything).
    """
    ops = op_profile.get("ops", {})
    rows = sorted(ops.items(),
                  key=lambda kv: kv[1]["forward_s"] + kv[1]["backward_s"],
                  reverse=True)
    dropped = 0
    if limit is not None and len(rows) > limit:
        dropped = len(rows) - limit
        rows = rows[:limit]
    header = (f"{'op':<16} {'calls':>8} {'fwd ms':>10} {'bwd calls':>10} "
              f"{'bwd ms':>10} {'out MiB':>9} {'grad MiB':>9}")
    lines = [header, "-" * len(header)]
    for name, s in rows:
        lines.append(
            f"{name:<16} {s['calls']:>8} {s['forward_s'] * 1e3:>10.2f} "
            f"{s['backward_calls']:>10} {s['backward_s'] * 1e3:>10.2f} "
            f"{s['output_bytes'] / 2**20:>9.2f} "
            f"{s.get('grad_bytes', 0) / 2**20:>9.2f}"
        )
    if dropped:
        lines.append(f"... {dropped} more op(s) omitted")
    lines.append(
        f"total forward {op_profile.get('total_forward_s', 0.0) * 1e3:.2f} ms, "
        f"backward {op_profile.get('total_backward_s', 0.0) * 1e3:.2f} ms, "
        f"peak tape {op_profile.get('peak_tape_bytes', 0) / 2**20:.2f} MiB, "
        f"fwd alloc {op_profile.get('forward_alloc_bytes', 0) / 2**20:.2f} MiB"
    )
    steps = op_profile.get("optimizer_steps", 0)
    if steps:
        opt_bytes = op_profile.get("optimizer_alloc_bytes", 0)
        lines.append(
            f"optimizer: {steps} step(s), {opt_bytes / 2**20:.2f} MiB "
            f"allocated ({opt_bytes / steps / 2**10:.1f} KiB/step)"
        )
    par_steps = op_profile.get("parallel_steps", 0)
    if par_steps:
        reduce_s = op_profile.get("parallel_reduce_s", 0.0)
        stall_s = op_profile.get("prefetch_stall_s", 0.0)
        lines.append(
            f"parallel: {par_steps} step(s), reduce "
            f"{reduce_s * 1e3:.2f} ms ({reduce_s / par_steps * 1e3:.3f} "
            f"ms/step), prefetch stall {stall_s * 1e3:.2f} ms"
        )
    serve_batches = op_profile.get("serve_batches", 0)
    if serve_batches:
        requests = op_profile.get("serve_requests", 0)
        batch_s = op_profile.get("serve_batch_s", 0.0)
        wait_s = op_profile.get("serve_queue_wait_s", 0.0)
        lines.append(
            f"serve: {serve_batches} micro-batch(es) over {requests} "
            f"request(s) ({requests / serve_batches:.1f} req/batch), "
            f"forward {batch_s * 1e3:.2f} ms, queue wait "
            f"{wait_s * 1e3:.2f} ms"
        )
    stream_ticks = op_profile.get("stream_ticks", 0)
    if stream_ticks:
        lines.append(
            f"stream: {stream_ticks} tick(s), "
            f"{op_profile.get('stream_gap_fills', 0)} gap fill(s), "
            f"{op_profile.get('stream_quarantined', 0)} quarantined, "
            f"{op_profile.get('stream_drifts', 0)} drift(s), "
            f"{op_profile.get('stream_retrains', 0)} retrain(s) in "
            f"{op_profile.get('stream_retrain_s', 0.0):.2f} s, "
            f"{op_profile.get('stream_fallbacks', 0)} fallback(s)"
        )
    plans = op_profile.get("compile_plans", 0)
    if plans:
        lines.append(
            f"compile: {plans} plan(s) built in "
            f"{op_profile.get('compile_plan_s', 0.0) * 1e3:.2f} ms, arena "
            f"{op_profile.get('arena_bytes', 0) / 2**20:.2f} MiB "
            f"({op_profile.get('arena_reuse_pct', 0.0):.1f}% reuse), "
            f"{op_profile.get('compiled_steps', 0)} compiled step(s)"
        )
    return "\n".join(lines)


def get_active_profiler():
    """Return the installed :class:`OpProfiler`, or ``None``."""
    return _tensor_core._PROFILER


@contextlib.contextmanager
def profile(profiler=None):
    """Install an op profiler for the duration of the block.

    Yields the active :class:`OpProfiler` (a fresh one unless
    ``profiler`` is given, which lets callers accumulate across several
    blocks).  Nesting restores the previous profiler on exit.

    >>> with profile() as prof:          # doctest: +SKIP
    ...     loss = model.training_loss(batch, rng)[0].total
    ...     loss.backward()
    >>> print(prof.summary())            # doctest: +SKIP
    """
    prof = profiler if profiler is not None else OpProfiler()
    previous = _tensor_core._set_profiler(prof)
    prof.mark()
    try:
        yield prof
    finally:
        _tensor_core._set_profiler(previous)
