"""ResPlus spatial network (adopted from DeepSTN+, paper §IV-E).

A ResPlus unit augments a residual convolution block with a "plus"
branch: a fully connected map over the *entire flattened grid* whose
output fills a few channels.  The conv branch captures local spatial
dependency; the plus branch captures long-range dependency that a 3x3
kernel cannot reach (e.g. two distant business districts exchanging
traffic), which is DeepSTN+'s core idea.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2d, Linear, Module, ModuleList
from repro.tensor import concat, relu, tanh

__all__ = ["ResPlusBlock", "ResPlusNetwork"]


class ResPlusBlock(Module):
    """One residual unit with a long-range "plus" branch.

    Input/output: ``(N, channels, H, W)``.  ``plus_channels`` of the
    output come from the fully connected branch, the remaining
    ``channels - plus_channels`` from the 3x3 conv branch; their
    concatenation is added back to the input.
    """

    def __init__(self, channels, plus_channels, height, width, rng=None,
                 plus_reduce=None):
        super().__init__()
        if not 0 < plus_channels < channels:
            raise ValueError(
                f"plus_channels must be in (0, {channels}); got {plus_channels}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.plus_channels = plus_channels
        self.height = height
        self.width = width
        self.conv = Conv2d(channels, channels - plus_channels, 3, padding="same", rng=rng)
        # The plus branch sees the whole grid at once.  On large grids a
        # flat channels*H*W -> plus*H*W map is enormous (DeepSTN+'s
        # PlusNet compresses channels with a 1x1 conv first); pass
        # ``plus_reduce`` to enable that compression.
        if plus_reduce is not None:
            if plus_reduce < 1:
                raise ValueError(f"plus_reduce must be >= 1; got {plus_reduce}")
            self.plus_compress = Conv2d(channels, plus_reduce, 1, rng=rng)
            plus_in = plus_reduce * height * width
        else:
            self.plus_compress = None
            plus_in = channels * height * width
        self.plus = Linear(plus_in, plus_channels * height * width, rng=rng)

    def forward(self, x):
        batch = x.shape[0]
        activated = relu(x)
        local = self.conv(activated)
        if self.plus_compress is not None:
            flat = relu(self.plus_compress(activated)).flatten(start_axis=1)
        else:
            flat = activated.flatten(start_axis=1)
        far = self.plus(flat).reshape((batch, self.plus_channels, self.height, self.width))
        return x + concat([local, far], axis=1)


class ResPlusNetwork(Module):
    """Stack of ResPlus blocks with input/output projections.

    Fuses the (concatenated) exclusive + interactive representations and
    predicts the next flow grid through a final ``tanh`` (the paper's
    output activation, matching the [-1, 1] scaling).
    """

    def __init__(self, in_channels, channels, height, width, num_blocks=2,
                 plus_channels=4, out_channels=2, rng=None, plus_reduce=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.entry = Conv2d(in_channels, channels, 3, padding="same", rng=rng)
        self.blocks = ModuleList([
            ResPlusBlock(channels, plus_channels, height, width, rng=rng,
                         plus_reduce=plus_reduce)
            for _ in range(num_blocks)
        ])
        self.exit = Conv2d(channels, out_channels, 3, padding="same", rng=rng)

    def forward(self, x):
        x = self.entry(x)
        for block in self.blocks:
            x = block(x)
        return tanh(self.exit(relu(x)))
