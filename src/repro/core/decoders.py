"""Reconstruction decoders ``q(i | z^i, z^s)``.

Each decoder rebuilds one time sub-series from the concatenation of its
sampled exclusive latent and the shared interactive latent, providing
the generative term the semantic-pushing bound maximizes (Eq. 28).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module
from repro.tensor import concat, relu

__all__ = ["ReconstructionDecoder"]


class ReconstructionDecoder(Module):
    """FC decoder from ``[z^i, z^s]`` to a flattened sub-series.

    Parameters
    ----------
    exclusive_dim, interactive_dim:
        Latent sizes of ``z^i`` and ``z^s``.
    output_shape:
        The sub-series shape ``(L, 2, H, W)`` to reconstruct.
    hidden_dim:
        Width of the single hidden layer.
    """

    def __init__(self, exclusive_dim, interactive_dim, output_shape,
                 hidden_dim=128, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.output_shape = tuple(output_shape)
        out_features = int(np.prod(output_shape))
        self.hidden = Linear(exclusive_dim + interactive_dim, hidden_dim, rng=rng)
        self.out = Linear(hidden_dim, out_features, rng=rng)

    def forward(self, z_exclusive, z_interactive):
        latent = concat([z_exclusive, z_interactive], axis=-1)
        hidden = relu(self.hidden(latent))
        flat = self.out(hidden).tanh()  # sub-series live in [-1, 1]
        batch = flat.shape[0]
        return flat.reshape((batch,) + self.output_shape)
