"""MUSE-Net: the paper's primary contribution."""

from repro.core.variational import GaussianHead, GaussianPosterior, reparameterize
from repro.core.encoders import (
    DuplexEncoder,
    ExclusiveEncoder,
    InteractiveEncoder,
    SeriesStem,
    SimplexEncoder,
)
from repro.core.decoders import ReconstructionDecoder
from repro.core.resplus import ResPlusBlock, ResPlusNetwork
from repro.core.losses import LossBreakdown, muse_training_loss
from repro.core.model import MUSENet, MuseConfig, MuseOutputs
from repro.core.variants import PairwiseMUSENet, VARIANT_NAMES, make_variant

__all__ = [
    "GaussianHead", "GaussianPosterior", "reparameterize",
    "SeriesStem", "ExclusiveEncoder", "InteractiveEncoder",
    "SimplexEncoder", "DuplexEncoder",
    "ReconstructionDecoder",
    "ResPlusBlock", "ResPlusNetwork",
    "LossBreakdown", "muse_training_loss",
    "MUSENet", "MuseConfig", "MuseOutputs",
    "PairwiseMUSENet", "VARIANT_NAMES", "make_variant",
]
