"""The MUSE-Net model (paper §IV, Fig. 3).

Dataflow per forward pass:

1. Each sub-series (closeness/period/trend, frames stacked on the
   channel axis) passes through its stem to "convolutional features".
2. Exclusive encoders produce the representations ``Z^c, Z^p, Z^t`` and
   posteriors ``r(z^i | i)``; the interactive encoder produces ``Z^s``
   and ``r(z^s | c, p, t)``.
3. Latents are sampled by reparameterization; reconstruction decoders
   rebuild each sub-series from ``[z^i, z^s]`` (semantic pushing).
4. Simplex/duplex variational encoders emit ``g(z^s | i)`` and
   ``d(z^s | i, j)`` (semantic pulling).
5. The four representations are concatenated and fused by the ResPlus
   network into the flow prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decoders import ReconstructionDecoder
from repro.core.encoders import (
    DuplexEncoder,
    ExclusiveEncoder,
    InteractiveEncoder,
    SeriesStem,
    SimplexEncoder,
)
from repro.core.losses import UNORDERED_PAIRS, muse_training_loss
from repro.core.resplus import ResPlusNetwork
from repro.nn import Conv2d, Module
from repro.tensor import Tensor, concat, make_rng, no_grad, tanh

__all__ = ["MuseConfig", "MuseOutputs", "MUSENet"]

SERIES = ("c", "p", "t")


class _PlainConvHead(Module):
    """Local conv fusion head (spatial_mode="conv"): 3x3 convs, no
    long-range plus branch.  Ends in tanh like the other heads."""

    def __init__(self, in_channels, hidden, out_channels, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, hidden, 3, padding="same", rng=rng)
        self.conv2 = Conv2d(hidden, hidden, 3, padding="same", rng=rng)
        self.out = Conv2d(hidden, out_channels, 3, padding="same", rng=rng)

    def forward(self, x):
        from repro.tensor import relu

        x = relu(self.conv1(x))
        x = x + relu(self.conv2(x))
        return tanh(self.out(x))


@dataclass
class MuseConfig:
    """Hyper-parameters of MUSE-Net.

    Paper defaults: representation dimension ``d = 64``, sampled
    distribution dimension ``k = 128`` (interactive; exclusives use
    ``k / 4``), balance coefficient ``lambda = 1``, sub-series lengths
    ``(L_c, L_p, L_t) = (3, 4, 4)``.  The reduced defaults here fit the
    CPU-scale benchmark datasets; pass the paper values for full runs.
    """

    len_closeness: int = 3
    len_period: int = 4
    len_trend: int = 4
    height: int = 10
    width: int = 20
    flow_channels: int = 2
    rep_channels: int = 64  # d
    latent_interactive: int = 128  # k
    latent_exclusive: int = None  # defaults to k // 4
    lam: float = 1.0
    gen_weight: float = 1.0  # weight of dis+push+pull vs regression
    pull_mode: str = "alternating"  # or "joint" (diverges; ablation only)
    spatial_mode: str = "resplus"  # "resplus" | "conv" | "none"
    res_blocks: int = 2
    plus_channels: int = 4
    # 1x1-conv channel compression before the plus branch's dense map
    # (None = no compression).  Essential at paper-scale grids: without
    # it the 32x32/d=64 plus branch alone is a half-billion parameters.
    plus_reduce: int = None
    decoder_hidden: int = 128
    seed: int = 0

    def __post_init__(self):
        if self.latent_exclusive is None:
            self.latent_exclusive = max(1, self.latent_interactive // 4)

    @property
    def spatial_size(self):
        """Number of grid cells ``H * W``."""
        return self.height * self.width

    def series_length(self, key):
        """Sub-series length for key ``'c' | 'p' | 't'``."""
        return {"c": self.len_closeness, "p": self.len_period, "t": self.len_trend}[key]

    @classmethod
    def for_data(cls, forecast_data, **overrides):
        """Build a config matching a prepared dataset's geometry."""
        periodicity = forecast_data.periodicity
        grid = forecast_data.grid
        defaults = dict(
            len_closeness=periodicity.len_closeness,
            len_period=periodicity.len_period,
            len_trend=periodicity.len_trend,
            height=grid.height,
            width=grid.width,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class MuseOutputs:
    """Everything the forward pass produces (prediction + posteriors)."""

    prediction: Tensor
    representations: dict  # 'c'/'p'/'t'/'s' -> (N, d, H, W)
    exclusive_posteriors: dict  # 'c'/'p'/'t' -> GaussianPosterior
    interactive_posterior: object  # GaussianPosterior
    simplex_posteriors: dict  # 'c'/'p'/'t' -> GaussianPosterior
    duplex_posteriors: dict  # ('c','p')... -> GaussianPosterior
    latents: dict  # 'c'/'p'/'t'/'s' -> sampled z
    reconstructions: dict  # 'c'/'p'/'t' -> reconstructed sub-series
    series_inputs: dict  # 'c'/'p'/'t' -> the (N, L*2, H, W) inputs


class MUSENet(Module):
    """Multi-periodicity disentanglement network.

    Use :meth:`training_loss` during optimization and :meth:`predict`
    for inference (posterior means, no sampling noise).
    """

    def __init__(self, config: MuseConfig, use_spatial=True, use_push=True,
                 use_pull=True):
        super().__init__()
        self.config = config
        # `use_spatial=False` (the Table VI ablation) is shorthand for
        # spatial_mode="none"; otherwise the config decides the head.
        self.spatial_mode = config.spatial_mode if use_spatial else "none"
        if self.spatial_mode not in ("resplus", "conv", "none"):
            raise ValueError(f"unknown spatial_mode {self.spatial_mode!r}")
        self.use_spatial = self.spatial_mode != "none"
        self.use_push = use_push
        self.use_pull = use_pull
        rng = np.random.default_rng(config.seed)
        d = config.rep_channels
        cells = config.spatial_size
        k_int = config.latent_interactive
        k_exc = config.latent_exclusive

        self.stem_c = SeriesStem(config.len_closeness * config.flow_channels, d, rng=rng)
        self.stem_p = SeriesStem(config.len_period * config.flow_channels, d, rng=rng)
        self.stem_t = SeriesStem(config.len_trend * config.flow_channels, d, rng=rng)

        self.exclusive_c = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        self.exclusive_p = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        self.exclusive_t = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        self.interactive = InteractiveEncoder(d, cells, k_int, rng=rng)

        self.simplex_c = SimplexEncoder(d, cells, k_int, rng=rng)
        self.simplex_p = SimplexEncoder(d, cells, k_int, rng=rng)
        self.simplex_t = SimplexEncoder(d, cells, k_int, rng=rng)
        self.duplex_cp = DuplexEncoder(d, cells, k_int, rng=rng)
        self.duplex_ct = DuplexEncoder(d, cells, k_int, rng=rng)
        self.duplex_pt = DuplexEncoder(d, cells, k_int, rng=rng)

        def decoder(key):
            shape = (config.series_length(key) * config.flow_channels,
                     config.height, config.width)
            return ReconstructionDecoder(k_exc, k_int, shape,
                                         hidden_dim=config.decoder_hidden, rng=rng)

        self.decoder_c = decoder("c")
        self.decoder_p = decoder("p")
        self.decoder_t = decoder("t")

        if self.spatial_mode == "resplus":
            self.spatial = ResPlusNetwork(
                4 * d, d, config.height, config.width,
                num_blocks=config.res_blocks,
                plus_channels=config.plus_channels,
                out_channels=config.flow_channels, rng=rng,
                plus_reduce=config.plus_reduce,
            )
        elif self.spatial_mode == "conv":
            # Extension ablation (DESIGN.md §4): local 3x3 conv fusion
            # without the long-range "plus" branch — isolates how much
            # of the win comes from ResPlus specifically.
            self.spatial = _PlainConvHead(4 * d, d, config.flow_channels, rng=rng)
        else:
            # Table VI "w/o Spatial": a pointwise fusion with no spatial
            # mixing at all — the model becomes temporal-only.
            self.spatial = Conv2d(4 * d, config.flow_channels, 1, rng=rng)

        self._sample_rng = np.random.default_rng(rng.integers(0, 2**31))

    # ------------------------------------------------------------------
    @staticmethod
    def _stack_frames(series):
        """(N, L, 2, H, W) array/Tensor -> (N, L*2, H, W) Tensor."""
        if not isinstance(series, Tensor):
            series = Tensor(series)
        n, length, channels, h, w = series.shape
        return series.reshape((n, length * channels, h, w))

    def forward(self, closeness, period, trend, rng=None):
        """Full forward pass; returns :class:`MuseOutputs`."""
        rng = make_rng(rng) if rng is not None else self._sample_rng
        inputs = {
            "c": self._stack_frames(closeness),
            "p": self._stack_frames(period),
            "t": self._stack_frames(trend),
        }
        features = {
            "c": self.stem_c(inputs["c"]),
            "p": self.stem_p(inputs["p"]),
            "t": self.stem_t(inputs["t"]),
        }
        exclusive_encoders = {"c": self.exclusive_c, "p": self.exclusive_p,
                              "t": self.exclusive_t}
        representations = {}
        exclusive_posteriors = {}
        for key in SERIES:
            rep, posterior = exclusive_encoders[key](features[key])
            representations[key] = rep
            exclusive_posteriors[key] = posterior

        rep_s, interactive_posterior = self.interactive(
            features["c"], features["p"], features["t"]
        )
        representations["s"] = rep_s

        simplex_encoders = {"c": self.simplex_c, "p": self.simplex_p,
                            "t": self.simplex_t}
        simplex_posteriors = {key: simplex_encoders[key](features[key])
                              for key in SERIES}
        duplex_encoders = {("c", "p"): self.duplex_cp, ("c", "t"): self.duplex_ct,
                           ("p", "t"): self.duplex_pt}
        duplex_posteriors = {
            pair: duplex_encoders[pair](features[pair[0]], features[pair[1]])
            for pair in UNORDERED_PAIRS
        }

        latents = {key: exclusive_posteriors[key].sample(rng) for key in SERIES}
        latents["s"] = interactive_posterior.sample(rng)

        decoders = {"c": self.decoder_c, "p": self.decoder_p, "t": self.decoder_t}
        reconstructions = {key: decoders[key](latents[key], latents["s"])
                           for key in SERIES}

        fused = concat([representations[k] for k in ("c", "p", "t", "s")], axis=1)
        prediction = self.spatial(fused)
        if not self.use_spatial:
            prediction = tanh(prediction)

        return MuseOutputs(
            prediction=prediction,
            representations=representations,
            exclusive_posteriors=exclusive_posteriors,
            interactive_posterior=interactive_posterior,
            simplex_posteriors=simplex_posteriors,
            duplex_posteriors=duplex_posteriors,
            latents=latents,
            reconstructions=reconstructions,
            series_inputs=inputs,
        )

    # ------------------------------------------------------------------
    def training_loss(self, batch, rng=None, use_push=None, use_pull=None):
        """Forward + loss assembly for a :class:`SampleBatch`.

        The push/pull switches default to the flags set at construction
        (which is how the Table VI ablation variants are built).
        """
        use_push = self.use_push if use_push is None else use_push
        use_pull = self.use_pull if use_pull is None else use_pull
        outputs = self(batch.closeness, batch.period, batch.trend, rng=rng)
        targets = Tensor(batch.target)
        breakdown = muse_training_loss(
            outputs, targets, lam=self.config.lam,
            use_push=use_push, use_pull=use_pull,
            gen_weight=self.config.gen_weight,
            pull_mode=self.config.pull_mode,
        )
        return breakdown, outputs

    def predict(self, batch):
        """Deterministic prediction (no grad, eval mode preserved)."""
        with no_grad():
            outputs = self(batch.closeness, batch.period, batch.trend)
        return outputs.prediction.data

    def encode(self, batch):
        """Return detached representations and posteriors for analysis."""
        with no_grad():
            outputs = self(batch.closeness, batch.period, batch.trend)
        return outputs
