"""Gaussian posterior heads and the reparameterization trick.

Every distribution in MUSE-Net — the exclusive posteriors
``r(z^i | i)``, the interactive posterior ``r(z^s | c, p, t)``, the
simplex ``g(z^s | i)`` and duplex ``d(z^s | i, j)`` variational
distributions — is a diagonal Gaussian whose mean and log-variance are
produced by a fully connected head over convolutional features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Linear, Module
from repro.tensor import Tensor, exp, reparameterize_noise

__all__ = ["GaussianPosterior", "GaussianHead", "reparameterize"]


@dataclass
class GaussianPosterior:
    """A diagonal Gaussian ``N(mu, exp(logvar))`` over the latent axis."""

    mu: Tensor
    logvar: Tensor

    @property
    def dim(self):
        """Latent dimensionality."""
        return self.mu.shape[-1]

    def sample(self, rng):
        """Reparameterized sample ``mu + sigma * eps``; differentiable."""
        return reparameterize(self.mu, self.logvar, rng)

    def detach(self):
        """A stop-gradient copy (used for bound-tightening terms)."""
        return GaussianPosterior(mu=self.mu.detach(), logvar=self.logvar.detach())


def reparameterize(mu, logvar, rng):
    """Draw ``z = mu + exp(logvar / 2) * eps`` with ``eps ~ N(0, I)``.

    Gradients flow through ``mu`` and ``logvar`` but not ``eps``.
    """
    eps = reparameterize_noise(mu.shape, rng, dtype=mu.dtype)
    return mu + exp(logvar * 0.5) * eps


class GaussianHead(Module):
    """FC head mapping flattened features to ``(mu, logvar)``.

    The paper extracts each distribution "by a fully connected layer"
    from the representation; this head emits both parameters.  The
    log-variance output is soft-bounded to keep KL terms finite early
    in training.
    """

    LOGVAR_BOUND = 8.0

    def __init__(self, in_features, latent_dim, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.latent_dim = latent_dim
        self.mu_head = Linear(in_features, latent_dim, rng=rng)
        self.logvar_head = Linear(in_features, latent_dim, rng=rng)

    def forward(self, features):
        flat = features.flatten(start_axis=1)
        mu = self.mu_head(flat)
        logvar = self.logvar_head(flat).tanh() * self.LOGVAR_BOUND
        return GaussianPosterior(mu=mu, logvar=logvar)
