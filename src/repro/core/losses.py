"""MUSE-Net's lower-bound training objective (paper Eqs. 26-30).

The paper maximizes

    L-hat_Dis + L-hat_Push + L-hat_Pull - L_Reg

so the training *loss* implemented here is the negation.  Term by term
(all KLs between diagonal Gaussians):

- **Disentanglement** (Eq. 27): ``(1 + lambda)``-weighted KL of each
  exclusive posterior ``r(z^i | i)`` to the standard normal prior, plus
  the KL of the interactive posterior ``r(z^s | c, p, t)``.
- **Semantic pushing** (Eq. 28): ``(1 + lambda)``-weighted
  reconstruction log-likelihood ``log q(i | z^i, z^s)`` of each
  sub-series from its exclusive latent and the shared latent.
- **Semantic pulling** (Eq. 29): ``lambda``-weighted sum of
  ``-KL(d(z^s|i,j) || g(z^s|i))`` over ordered pairs ``i != j`` (the
  duplex posterior for a pair must look like each member's simplex
  posterior) and ``+KL(r(z^s|c,p,t) || d(z^s|i,j))`` over the three
  unordered pairs (the full posterior must stay informative beyond any
  pair).
- **Regression** (Eq. 30): squared error between the prediction and the
  true next-interval flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn import kl_diag_gaussians, kl_standard_normal
from repro.tensor import Tensor, mean, sum_

__all__ = ["LossBreakdown", "muse_training_loss"]

SERIES = ("c", "p", "t")
UNORDERED_PAIRS = (("c", "p"), ("c", "t"), ("p", "t"))


@dataclass
class LossBreakdown:
    """Total training loss plus its components (all scalar tensors).

    Component signs follow the *loss* convention (lower is better);
    ``dis``, ``push``, ``pull`` are the negations of the paper's
    L-hat terms.
    """

    total: Tensor
    dis: Tensor
    push: Tensor
    pull: Tensor
    reg: Tensor

    def scalars(self):
        """Plain-float view for logging."""
        return {
            "total": self.total.item(),
            "dis": self.dis.item(),
            "push": self.push.item(),
            "pull": self.pull.item(),
            "reg": self.reg.item(),
        }


def _reconstruction_nll(target, reconstruction):
    """Unit-variance Gaussian NLL of a sub-series (per-sample sum)."""
    diff = target - reconstruction
    flat = (diff * diff).flatten(start_axis=1)
    return mean(sum_(0.5 * flat, axis=-1))


def muse_training_loss(outputs, targets, lam=1.0, use_push=True, use_pull=True,
                       gen_weight=1.0, pull_mode="alternating"):
    """Assemble the total minimization objective.

    Parameters
    ----------
    outputs:
        A :class:`~repro.core.model.MuseOutputs` from the model forward.
    targets:
        Scaled ground-truth flows ``(N, 2, H, W)`` (Tensor).
    lam:
        The balance coefficient ``lambda`` (paper default 1).
    use_push, use_pull:
        Ablation switches for Table VI: dropping pushing removes the
        Eq. (9) contribution, i.e. the ``(1 + lambda)`` weights revert
        to 1; dropping pulling removes Eq. (29) entirely.
    gen_weight:
        Global weight on the generative terms (dis + push + pull)
        relative to regression.  1.0 is the paper's objective at the
        paper's geometry; reduced-scale grids shrink the summed
        regression term relative to the latent KLs, so small-profile
        runs rebalance with ``gen_weight < 1`` (see DESIGN.md).
    pull_mode:
        ``"alternating"`` (default) uses the stop-gradient treatment of
        the ``+KL(r || d)`` bound term; ``"joint"`` optimizes Eq. (29)
        literally as written, which is adversarial between the full
        posterior and the duplex distributions and diverges — kept as
        an ablation to demonstrate why the alternating scheme is
        necessary.
    """
    if pull_mode not in ("alternating", "joint"):
        raise ValueError(f"unknown pull_mode {pull_mode!r}")
    push_weight = (1.0 + lam) if use_push else 1.0

    # -- Eq. 27 (negated): KL regularizers ------------------------------
    kl_exclusive = sum(
        kl_standard_normal(outputs.exclusive_posteriors[i].mu,
                           outputs.exclusive_posteriors[i].logvar)
        for i in SERIES
    )
    kl_interactive = kl_standard_normal(outputs.interactive_posterior.mu,
                                        outputs.interactive_posterior.logvar)
    dis = push_weight * kl_exclusive + kl_interactive

    # -- Eq. 28 (negated): reconstruction -------------------------------
    recon = sum(
        _reconstruction_nll(outputs.series_inputs[i], outputs.reconstructions[i])
        for i in SERIES
    )
    push = push_weight * recon

    # -- Eq. 29 (negated): pulling --------------------------------------
    # The +KL(r || d) bound term (Eq. 23) is valid for ANY duplex
    # distribution d, and is tight when d equals the pair-marginal
    # posterior.  Optimizing it jointly is adversarial — d would flee r
    # and the objective diverges — so we use the standard VIIM-style
    # alternating treatment expressed with stop-gradients:
    #   * the encoder ascends KL(r || sg(d))   (stays informative
    #     beyond any pair),
    #   * the duplex descends KL(sg(r) || d)   (chases r to keep the
    #     bound tight).
    # The two terms have equal value, so the reported `pull` magnitude
    # reflects only the duplex-vs-simplex KLs, but their gradients
    # implement the max-min bound correctly and stably.
    if use_pull:
        duplex_vs_simplex = 0.0
        for i, j in UNORDERED_PAIRS:
            duplex = outputs.duplex_posteriors[(i, j)]
            for member in (i, j):
                simplex = outputs.simplex_posteriors[member]
                duplex_vs_simplex = duplex_vs_simplex + kl_diag_gaussians(
                    duplex.mu, duplex.logvar, simplex.mu, simplex.logvar
                )
        full = outputs.interactive_posterior
        if pull_mode == "joint":
            # Literal Eq. (29): maximize KL(r || d) jointly over both
            # sides.  Adversarial — r flees d and d flees r.
            full_vs_duplex = 0.0
            for pair in UNORDERED_PAIRS:
                duplex = outputs.duplex_posteriors[pair]
                full_vs_duplex = full_vs_duplex + kl_diag_gaussians(
                    full.mu, full.logvar, duplex.mu, duplex.logvar
                )
            pull = lam * (duplex_vs_simplex - full_vs_duplex)
        else:
            encoder_term = 0.0  # -KL(r || sg(d)): encoder ascends the bound
            tighten_term = 0.0  # +KL(sg(r) || d): duplex chases r
            for pair in UNORDERED_PAIRS:
                duplex = outputs.duplex_posteriors[pair]
                frozen_duplex = duplex.detach()
                frozen_full = full.detach()
                encoder_term = encoder_term - kl_diag_gaussians(
                    full.mu, full.logvar, frozen_duplex.mu, frozen_duplex.logvar
                )
                tighten_term = tighten_term + kl_diag_gaussians(
                    frozen_full.mu, frozen_full.logvar, duplex.mu, duplex.logvar
                )
            pull = lam * (duplex_vs_simplex + encoder_term + tighten_term)
    else:
        pull = Tensor(0.0)

    # -- Eq. 30: regression ----------------------------------------------
    # The paper's L_Reg is the summed squared error ||X - Y||_2^2 (a
    # per-sample sum, like the KL and reconstruction terms), not the
    # elementwise mean — using the mean under-weights regression by a
    # factor of 2*H*W and lets the generative terms swamp it.
    diff = outputs.prediction - targets
    reg = mean(sum_((diff * diff).flatten(start_axis=1), axis=-1))

    if gen_weight != 1.0:
        dis = gen_weight * dis
        push = gen_weight * push
        if use_pull:
            pull = gen_weight * pull

    total = dis + push + pull + reg
    return LossBreakdown(total=total, dis=dis, push=push, pull=pull, reg=reg)
