"""Ablation variants of MUSE-Net (paper Table VI).

- ``w/o Spatial``          — the ResPlus network is replaced by a
  pointwise fusion, leaving a temporal-only model.
- ``w/o MultiDisentangle`` — the single interactive representation
  ``Z^S`` shared by all sub-series is replaced by three *pairwise*
  interactive representations ``Z^{CP}, Z^{CT}, Z^{PT}`` (cross-variate
  disentanglement), implemented by :class:`PairwiseMUSENet`.
- ``w/o SemanticPushing``  — the Eq. (9) contribution is removed, so the
  ``(1 + lambda)`` weights in the merged bound revert to 1.
- ``w/o SemanticPulling``  — the Eq. (16)/(29) term is removed.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.core.decoders import ReconstructionDecoder
from repro.core.encoders import DuplexEncoder, ExclusiveEncoder, SeriesStem
from repro.core.losses import LossBreakdown, UNORDERED_PAIRS
from repro.core.model import MuseConfig, MUSENet
from repro.core.resplus import ResPlusNetwork
from repro.nn import Module, kl_standard_normal
from repro.tensor import Tensor, concat, make_rng, mean, no_grad, sum_

__all__ = ["PairwiseMUSENet", "VARIANT_NAMES", "make_variant"]

SERIES = ("c", "p", "t")

VARIANT_NAMES = (
    "full",
    "w/o-Spatial",
    "w/o-MultiDisentangle",
    "w/o-SemanticPushing",
    "w/o-SemanticPulling",
)


class PairwiseMUSENet(Module):
    """Cross-variate (pairwise) disentanglement baseline variant.

    Instead of one ``Z^S`` shared across all three sub-series, each pair
    of sub-series gets its own interactive representation, as in
    bivariate cross-domain disentanglement work.  The decoder for a
    sub-series consumes its exclusive latent plus the latents of the two
    pairs it belongs to.
    """

    def __init__(self, config: MuseConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.rep_channels
        cells = config.spatial_size
        k_int = config.latent_interactive
        k_exc = config.latent_exclusive

        self.stem_c = SeriesStem(config.len_closeness * config.flow_channels, d, rng=rng)
        self.stem_p = SeriesStem(config.len_period * config.flow_channels, d, rng=rng)
        self.stem_t = SeriesStem(config.len_trend * config.flow_channels, d, rng=rng)
        self.exclusive_c = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        self.exclusive_p = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        self.exclusive_t = ExclusiveEncoder(d, cells, k_exc, rng=rng)
        # Pairwise interactive encoders reuse the duplex architecture
        # but here their representations feed prediction directly.
        self.pair_cp = DuplexEncoder(d, cells, k_int, rng=rng)
        self.pair_ct = DuplexEncoder(d, cells, k_int, rng=rng)
        self.pair_pt = DuplexEncoder(d, cells, k_int, rng=rng)
        # Pairwise reps for fusion come from the duplex conv features; a
        # light projection produces them per pair.
        self.rep_cp = SeriesStem(2 * d, d, rng=rng)
        self.rep_ct = SeriesStem(2 * d, d, rng=rng)
        self.rep_pt = SeriesStem(2 * d, d, rng=rng)

        def decoder(key):
            shape = (config.series_length(key) * config.flow_channels,
                     config.height, config.width)
            return ReconstructionDecoder(k_exc, 2 * k_int, shape,
                                         hidden_dim=config.decoder_hidden, rng=rng)

        self.decoder_c = decoder("c")
        self.decoder_p = decoder("p")
        self.decoder_t = decoder("t")

        self.spatial = ResPlusNetwork(
            6 * d, d, config.height, config.width,
            num_blocks=config.res_blocks, plus_channels=config.plus_channels,
            out_channels=config.flow_channels, rng=rng,
        )
        self._sample_rng = np.random.default_rng(rng.integers(0, 2**31))

    def forward(self, closeness, period, trend, rng=None):
        rng = make_rng(rng) if rng is not None else self._sample_rng
        inputs = {
            "c": MUSENet._stack_frames(closeness),
            "p": MUSENet._stack_frames(period),
            "t": MUSENet._stack_frames(trend),
        }
        features = {
            "c": self.stem_c(inputs["c"]),
            "p": self.stem_p(inputs["p"]),
            "t": self.stem_t(inputs["t"]),
        }
        exclusive = {"c": self.exclusive_c, "p": self.exclusive_p, "t": self.exclusive_t}
        reps, posteriors = {}, {}
        for key in SERIES:
            reps[key], posteriors[key] = exclusive[key](features[key])

        pair_enc = {("c", "p"): self.pair_cp, ("c", "t"): self.pair_ct,
                    ("p", "t"): self.pair_pt}
        pair_rep = {("c", "p"): self.rep_cp, ("c", "t"): self.rep_ct,
                    ("p", "t"): self.rep_pt}
        pair_posteriors, pair_reps = {}, {}
        for pair in UNORDERED_PAIRS:
            fi, fj = features[pair[0]], features[pair[1]]
            pair_posteriors[pair] = pair_enc[pair](fi, fj)
            pair_reps[pair] = pair_rep[pair](concat([fi, fj], axis=1))

        latents = {key: posteriors[key].sample(rng) for key in SERIES}
        pair_latents = {pair: pair_posteriors[pair].sample(rng)
                        for pair in UNORDERED_PAIRS}

        def pairs_of(key):
            return [pair for pair in UNORDERED_PAIRS if key in pair]

        decoders = {"c": self.decoder_c, "p": self.decoder_p, "t": self.decoder_t}
        reconstructions = {}
        for key in SERIES:
            shared = concat([pair_latents[p] for p in pairs_of(key)], axis=-1)
            reconstructions[key] = decoders[key](latents[key], shared)

        fused = concat(
            [reps[k] for k in SERIES] + [pair_reps[p] for p in UNORDERED_PAIRS],
            axis=1,
        )
        prediction = self.spatial(fused)
        return prediction, posteriors, pair_posteriors, reconstructions, inputs

    def training_loss(self, batch, rng=None):
        """Regression + KL + reconstruction loss (no pull terms: there is
        no single shared representation to pull)."""
        prediction, posteriors, pair_posteriors, recons, inputs = self(
            batch.closeness, batch.period, batch.trend, rng=rng
        )
        lam = self.config.lam
        kl = sum(
            kl_standard_normal(posteriors[k].mu, posteriors[k].logvar)
            for k in SERIES
        )
        kl = kl + sum(
            kl_standard_normal(pair_posteriors[p].mu, pair_posteriors[p].logvar)
            for p in UNORDERED_PAIRS
        )
        recon = Tensor(0.0)
        for key in SERIES:
            diff = inputs[key] - recons[key]
            recon = recon + mean(sum_((0.5 * diff * diff).flatten(start_axis=1), axis=-1))
        diff = prediction - Tensor(batch.target)
        reg = mean(sum_((diff * diff).flatten(start_axis=1), axis=-1))
        total = self.config.gen_weight * (1.0 + lam) * (kl + recon) + reg
        breakdown = LossBreakdown(total=total, dis=kl, push=recon,
                                  pull=Tensor(0.0), reg=reg)
        outputs = SimpleNamespace(prediction=prediction)
        return breakdown, outputs

    def predict(self, batch):
        """Deterministic prediction."""
        with no_grad():
            prediction, *_rest = self(batch.closeness, batch.period, batch.trend)
        return prediction.data


def make_variant(name, config: MuseConfig):
    """Build a Table VI variant by name."""
    if name == "full":
        return MUSENet(config)
    if name == "w/o-Spatial":
        return MUSENet(config, use_spatial=False)
    if name == "w/o-MultiDisentangle":
        return PairwiseMUSENet(config)
    if name == "w/o-SemanticPushing":
        return MUSENet(config, use_push=False)
    if name == "w/o-SemanticPulling":
        return MUSENet(config, use_pull=False)
    raise ValueError(f"unknown variant {name!r}; choose from {VARIANT_NAMES}")
