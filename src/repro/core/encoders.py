"""MUSE-Net encoders.

The joint-training framework (paper §IV-E, Fig. 3) uses:

- a **stem** per sub-series producing its "convolutional features",
- an **exclusive encoder** per sub-series: a convolution producing the
  exclusive representation ``Z^i`` plus an FC head for ``r(z^i | i)``,
- one **interactive encoder** over all three stems' features producing
  ``Z^S`` and ``r(z^s | c, p, t)``,
- **simplex** (``g(z^s | i)``) and **duplex** (``d(z^s | i, j)``)
  variational encoders used only inside the semantic-pulling bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.variational import GaussianHead
from repro.nn import Conv2d, Module
from repro.tensor import concat, relu

__all__ = [
    "SeriesStem",
    "ExclusiveEncoder",
    "InteractiveEncoder",
    "SimplexEncoder",
    "DuplexEncoder",
]


class SeriesStem(Module):
    """Convolutional feature extractor for one time sub-series.

    Input ``(N, L*2, H, W)`` (the sub-series frames stacked on the
    channel axis) -> features ``(N, d, H, W)``.
    """

    def __init__(self, in_channels, rep_channels, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(in_channels, rep_channels, 3, padding="same", rng=rng)

    def forward(self, x):
        return relu(self.conv(x))


class ExclusiveEncoder(Module):
    """Exclusive representation + posterior for one sub-series.

    Maps stem features to the exclusive representation ``Z^i`` (a conv
    layer) and its diagonal-Gaussian posterior ``r(z^i | i)`` (an FC
    head), per the paper's description of the exclusive encoder.
    """

    def __init__(self, rep_channels, spatial_size, latent_dim, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(rep_channels, rep_channels, 3, padding="same", rng=rng)
        self.head = GaussianHead(rep_channels * spatial_size, latent_dim, rng=rng)

    def forward(self, features):
        representation = relu(self.conv(features))
        return representation, self.head(representation)


class InteractiveEncoder(Module):
    """Interactive representation + posterior from all three stems.

    Concatenates the ternary convolutional features on the channel axis
    and maps them to ``Z^S`` and ``r(z^s | c, p, t)``.
    """

    def __init__(self, rep_channels, spatial_size, latent_dim, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(3 * rep_channels, rep_channels, 3, padding="same", rng=rng)
        self.head = GaussianHead(rep_channels * spatial_size, latent_dim, rng=rng)

    def forward(self, features_c, features_p, features_t):
        fused = concat([features_c, features_p, features_t], axis=1)
        representation = relu(self.conv(fused))
        return representation, self.head(representation)


class SimplexEncoder(Module):
    """Variational distribution ``g(z^s | i)`` for a single sub-series."""

    def __init__(self, rep_channels, spatial_size, latent_dim, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(rep_channels, rep_channels, 3, padding="same", rng=rng)
        self.head = GaussianHead(rep_channels * spatial_size, latent_dim, rng=rng)

    def forward(self, features):
        return self.head(relu(self.conv(features)))


class DuplexEncoder(Module):
    """Variational distribution ``d(z^s | i, j)`` for a pair of sub-series."""

    def __init__(self, rep_channels, spatial_size, latent_dim, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv = Conv2d(2 * rep_channels, rep_channels, 3, padding="same", rng=rng)
        self.head = GaussianHead(rep_channels * spatial_size, latent_dim, rng=rng)

    def forward(self, features_i, features_j):
        fused = concat([features_i, features_j], axis=1)
        return self.head(relu(self.conv(fused)))
