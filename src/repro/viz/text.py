"""Text-based charts for terminals.

The offline environment has no plotting stack, so the figure runners
and examples render their series and grids as Unicode charts: compact
sparklines, multi-row line charts, shaded heatmaps, and histograms.
Pure functions over numpy arrays; all return strings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "line_chart", "heatmap", "histogram"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SHADE_LEVELS = " ░▒▓█"


def _normalize(values, low=None, high=None):
    values = np.asarray(values, dtype=float)
    low = float(np.nanmin(values)) if low is None else low
    high = float(np.nanmax(values)) if high is None else high
    if high == low:
        return np.zeros_like(values)
    return np.clip((values - low) / (high - low), 0.0, 1.0)


def sparkline(values, low=None, high=None):
    """One-line bar chart: ``sparkline([1,5,3]) == '▁█▄'``.

    ``low``/``high`` pin the scale (useful when aligning several
    sparklines); NaNs render as spaces.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    unit = _normalize(values, low, high)
    chars = []
    for value, u in zip(values, unit):
        if np.isnan(value):
            chars.append(" ")
        else:
            chars.append(_SPARK_LEVELS[int(round(u * (len(_SPARK_LEVELS) - 1)))])
    return "".join(chars)


def line_chart(series, height=8, width=None, labels=None):
    """Multi-series ASCII line chart.

    ``series`` is a dict ``{name: 1-D array}`` (or a single array).
    Each series gets a distinct marker; a shared y-scale and a legend
    are included.  ``width`` resamples long series to fit.
    """
    if isinstance(series, (list, np.ndarray)):
        series = {"series": np.asarray(series)}
    markers = "•xo+*#@"
    arrays = {name: np.asarray(vals, dtype=float) for name, vals in series.items()}
    if not arrays:
        return "(no data)"
    length = max(len(a) for a in arrays.values())
    if width is not None and length > width:
        def resample(a):
            idx = np.linspace(0, len(a) - 1, width).round().astype(int)
            return a[idx]
        arrays = {name: resample(a) for name, a in arrays.items()}
        length = width

    low = min(float(np.nanmin(a)) for a in arrays.values())
    high = max(float(np.nanmax(a)) for a in arrays.values())
    grid = [[" "] * length for _ in range(height)]
    for index, (name, values) in enumerate(arrays.items()):
        marker = markers[index % len(markers)]
        unit = _normalize(values, low, high)
        for x, u in enumerate(unit):
            if np.isnan(values[x]):
                continue
            y = height - 1 - int(round(u * (height - 1)))
            grid[y][x] = marker
    lines = [f"{high:10.2f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.2f} ┤" + "".join(grid[-1]))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    return "\n".join(lines) + "\n" + " " * 12 + legend


def heatmap(matrix, low=None, high=None, row_labels=None):
    """Shaded-block rendering of a 2-D array.

    Intensity maps to ``' ░▒▓█'``; pass ``low``/``high`` to pin the
    scale across several heatmaps.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    unit = _normalize(matrix, low, high)
    lines = []
    for r, row in enumerate(unit):
        cells = "".join(
            _SHADE_LEVELS[int(round(u * (len(_SHADE_LEVELS) - 1)))] * 2 for u in row
        )
        label = f"{row_labels[r]:>8} " if row_labels is not None else ""
        lines.append(label + cells)
    return "\n".join(lines)


def histogram(values, bins=10, width=40):
    """Horizontal bar histogram of a 1-D sample."""
    values = np.asarray(values, dtype=float).ravel()
    counts, edges = np.histogram(values, bins=bins)
    top = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * count / top))
        lines.append(f"[{left:8.2f}, {right:8.2f}) {bar} {count}")
    return "\n".join(lines)
