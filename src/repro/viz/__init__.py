"""Terminal visualization (no plotting libraries available offline)."""

from repro.viz.text import (
    heatmap,
    histogram,
    line_chart,
    sparkline,
)

__all__ = ["sparkline", "line_chart", "heatmap", "histogram"]
