"""Graph-compiled training steps: record once, replay in place.

:class:`StepCompiler` wraps the trainer's serial step.  The first time
a batch signature (field shapes + dtypes + default-dtype policy) is
seen, it runs one *real* eager step under a
:class:`~repro.compile.recorder.Recorder` with
``backward(retain_graph=True)``, keeping the whole graph — every
forward buffer, every backward closure — alive as a template.  The
recorded kernels form an :class:`~repro.compile.plan.ExecutionPlan`
that refreshes those same buffers in place; replaying a step is then

1. copy the new batch into the pinned warmup input arrays (the graph's
   leaves alias them),
2. mark every node's gradient buffer *stale* (``_grad_stale`` — the
   allocation-free equivalent of ``zero_grad``),
3. execute the plan (fused ``out=`` kernels, zero forward allocations),
4. re-walk the retained backward closures over the precomputed
   topological order, depositing gradients into the reused buffers.

Correctness gates (both bitwise, ``atol=0``):

- **build validation** — after recording, the rng is rewound and the
  plan replayed on the *same* batch; loss, reg, and every parameter
  gradient must equal the eager warmup exactly, else the signature is
  pinned to eager;
- **shadow validation** — the first replay on a *new* batch is shadowed
  by a full eager step on the same batch (rng rewound in between); any
  divergence — including stale-input bugs the build check cannot see —
  permanently falls back to eager for that signature.

Compilation is refused up front when a module would update running
statistics outside the op layer (train-mode normalization) and per-call
whenever ``detect_anomaly()`` is active; both are reported via
:meth:`StepCompiler.report`.
"""

from __future__ import annotations

import copy
from time import perf_counter

import numpy as np

from repro.compile.plan import ExecutionPlan, batch_signature
from repro.compile.recorder import Recorder
from repro.data.windows import SampleBatch
from repro.profiling import get_active_profiler
from repro.tensor import tensor as _core

__all__ = ["CompiledStep", "StepCompiler", "private_batch"]


def private_batch(batch):
    """A deep copy of ``batch`` the plan may own as its pinned inputs.

    The warmup batch's arrays become the graph's leaves *and* the
    buffers every replay copies fresh data into — they must never be
    views of caller data (the serving path hands out zero-copy slices
    of the test split; replaying through those would overwrite it).
    """
    return SampleBatch(
        closeness=batch.closeness.copy(),
        period=batch.period.copy(),
        trend=batch.trend.copy(),
        target=batch.target.copy(),
        indices=batch.indices.copy(),
    )


def _rng_state(rng):
    return copy.deepcopy(rng.bit_generator.state)


def _free_graph(loss, profiler=None):
    """Release a retained tape (mirrors ``backward``'s default free)."""
    for node in loss._topological_order():
        if node._backward is not None:
            if profiler is not None:
                profiler._record_tape_free(node.data.nbytes)
            node._backward = None
            node._parents = ()
            node._freed = True


class CompiledStep:
    """One signature's retained graph + replay schedule."""

    __slots__ = ("plan", "loss", "reg", "order", "pins", "ones", "trusted",
                 "arena_bytes", "arena_reuse_pct")

    def __init__(self, plan, breakdown, pins, arena_bytes, arena_reuse_pct):
        self.plan = plan
        self.loss = breakdown.total
        self.reg = breakdown.reg
        self.order = self.loss._topological_order()
        self.pins = pins  # (closeness, period, trend, target) warmup arrays
        self.ones = np.ones_like(self.loss.data)  # lint: ignore[alloc]
        self.trusted = False
        self.arena_bytes = arena_bytes
        self.arena_reuse_pct = arena_reuse_pct

    def replay(self, batch):
        """Run one step in place; returns ``(loss, reg)`` scalars.

        Gradients land on the parameters exactly as after an eager
        ``zero_grad → training_loss → backward`` sequence.
        """
        pin_c, pin_p, pin_t, pin_y = self.pins
        np.copyto(pin_c, batch.closeness)
        np.copyto(pin_p, batch.period)
        np.copyto(pin_t, batch.trend)
        np.copyto(pin_y, batch.target)
        order = self.order
        for node in order:
            node._grad_stale = True
        self.plan.execute()
        loss = self.loss
        loss._accumulate_grad(self.ones)
        for node in reversed(order):
            # Parity with the eager walk's ``grad is None`` skip: a
            # still-stale node received no deposit this step.
            if node._backward is None or node._grad_stale:
                continue
            node._backward(node.grad)
        return loss.item(), self.reg.item()

    def free(self, profiler=None):
        """Drop the retained tape (plan invalidated)."""
        _free_graph(self.loss, profiler)


class StepCompiler:
    """Per-signature plan cache around a model/optimizer/rng triple."""

    def __init__(self, model, optimizer, rng):
        self.model = model
        self.optimizer = optimizer
        self.rng = rng
        self._plans = {}  # signature -> CompiledStep | fallback-reason str
        self._fallbacks = {}  # short signature repr -> reason
        self.plans_built = 0
        self.plans_validated = 0
        self.compiled_steps = 0
        self.eager_steps = 0

    # ------------------------------------------------------------------
    def step(self, batch, profiler=None):
        """Run one training step; compiled replay when a plan is trusted.

        Always leaves the same post-state as the eager step: loss/reg
        returned, per-parameter gradients deposited, rng advanced by
        exactly one step's draws.
        """
        if profiler is None:
            profiler = get_active_profiler()
        if _core._ANOMALY_HOOK is not None:
            # Anomaly mode instruments every _from_op call; replay
            # bypasses _from_op entirely, so honor the debug request.
            self._note("detect_anomaly", "detect_anomaly() is active")
            return self._eager(batch, profiler)
        signature = batch_signature(batch)
        entry = self._plans.get(signature)
        if isinstance(entry, str):
            return self._eager(batch, profiler)
        if entry is None:
            return self._build(signature, batch, profiler)
        if not entry.trusted:
            return self._shadow(signature, entry, batch, profiler)
        result = entry.replay(batch)
        self.compiled_steps += 1
        if profiler is not None:
            profiler._record_compiled_step()
            profiler.mark()
        return result

    def report(self):
        """JSON-serialisable summary for ``History.compiled``."""
        plans = [p for p in self._plans.values()
                 if isinstance(p, CompiledStep)]
        return {
            "plans_built": self.plans_built,
            "plans_validated": self.plans_validated,
            "compiled_steps": self.compiled_steps,
            "eager_steps": self.eager_steps,
            "arena_bytes": max((p.arena_bytes for p in plans), default=0),
            "arena_reuse_pct": max((p.arena_reuse_pct for p in plans),
                                   default=0.0),
            "kernels": sum(p.plan.kernel_count for p in plans),
            "fused_chains": sum(p.plan.fused_chains for p in plans),
            "fallbacks": dict(self._fallbacks),
        }

    # ------------------------------------------------------------------
    def _note(self, key, reason):
        self._fallbacks.setdefault(str(key), reason)

    def _eager(self, batch, profiler):
        self.eager_steps += 1
        self.optimizer.zero_grad()
        if profiler is not None:
            profiler.mark()
        breakdown, _outputs = self.model.training_loss(batch, rng=self.rng)
        breakdown.total.backward()
        return breakdown.total.item(), breakdown.reg.item()

    def _compile_guard(self):
        for module in self.model.modules():
            if getattr(module, "training", False) and (
                    hasattr(module, "running_mean")
                    or hasattr(module, "running_var")):
                return ("train-mode normalization updates running "
                        f"statistics outside the op layer "
                        f"({type(module).__name__})")
        return None

    def _param_grads(self):
        return [(p, None if p.grad is None else p.grad.copy())
                for p in self.optimizer.parameters]

    @staticmethod
    def _grads_equal(saved, parameters):
        for (param, grad), live in zip(saved, parameters):
            live_grad = live.grad
            if grad is None or live_grad is None:
                if (grad is None) != (live_grad is None):
                    return False
                continue
            if not np.array_equal(grad, live_grad, equal_nan=True):
                return False
        return True

    # ------------------------------------------------------------------
    def _build(self, signature, batch, profiler):
        reason = self._compile_guard()
        if reason is not None:
            self._plans[signature] = reason
            self._note("guard", reason)
            return self._eager(batch, profiler)

        started = perf_counter()
        state_pre = _rng_state(self.rng)
        batch = private_batch(batch)  # replay pins must not alias caller data
        # The warmup is a *real* eager step (the recorder is passive),
        # so whatever happens below, a valid (loss, reg) comes out and
        # the gradients it deposited stand.
        self.optimizer.zero_grad()
        if profiler is not None:
            profiler.mark()
        recorder = Recorder()
        previous = _core._set_recorder(recorder)
        try:
            breakdown, _outputs = self.model.training_loss(batch,
                                                           rng=self.rng)
            breakdown.total.backward(retain_graph=True)
        finally:
            _core._set_recorder(previous)
        loss_value = breakdown.total.item()
        reg_value = breakdown.reg.item()

        failure = recorder.finalize()
        if failure is not None:
            _free_graph(breakdown.total, profiler)
            reason = f"recording failed: {failure}"
            self._plans[signature] = reason
            self._note(signature, reason)
            self.eager_steps += 1
            return loss_value, reg_value

        plan = ExecutionPlan(recorder.records)
        arena_bytes = plan.buffer_bytes + recorder.scratch.nbytes
        reuse_pct = recorder.scratch.reuse_pct()
        pins = (batch.closeness, batch.period, batch.trend, batch.target)
        step = CompiledStep(plan, breakdown, pins, arena_bytes, reuse_pct)

        # Build validation: rewind the rng and replay the same batch —
        # everything observable must be bitwise the eager warmup.
        state_post = _rng_state(self.rng)
        saved = self._param_grads()
        self.rng.bit_generator.state = _rng_state_copy(state_pre)
        replay_loss, replay_reg = step.replay(batch)
        self.rng.bit_generator.state = _rng_state_copy(state_post)
        if (replay_loss != loss_value or replay_reg != reg_value
                or not self._grads_equal(saved, self.optimizer.parameters)):
            for param, grad in saved:
                if grad is None:
                    param.grad = None
                elif param.grad is not None:
                    np.copyto(param.grad, grad)
                param._grad_stale = False
            step.free(profiler)
            reason = "build validation failed: replay diverged from eager"
            self._plans[signature] = reason
            self._note(signature, reason)
            self.eager_steps += 1
            return loss_value, reg_value

        self._plans[signature] = step
        self.plans_built += 1
        if profiler is not None:
            profiler._record_compile_plan(perf_counter() - started,
                                          arena_bytes, reuse_pct)
            profiler.mark()
        self.eager_steps += 1  # the warmup itself ran eagerly
        return loss_value, reg_value

    def _shadow(self, signature, step, batch, profiler):
        """First replay on fresh data, shadow-checked by a full eager step."""
        state_pre = _rng_state(self.rng)
        replay_loss, replay_reg = step.replay(batch)
        saved = self._param_grads()
        self.rng.bit_generator.state = _rng_state_copy(state_pre)
        eager_loss, eager_reg = self._eager(batch, profiler)
        if (eager_loss == replay_loss and eager_reg == replay_reg
                and self._grads_equal(saved, self.optimizer.parameters)):
            step.trusted = True
            self.plans_validated += 1
        else:
            step.free(profiler)
            reason = ("shadow validation failed: replay diverged from "
                      "eager on fresh inputs")
            self._plans[signature] = reason
            self._note(signature, reason)
        # Either way the eager results are authoritative (identical when
        # validation passed).
        return eager_loss, eager_reg


def _rng_state_copy(state):
    return copy.deepcopy(state)
