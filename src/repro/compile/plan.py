"""Execution plans: linearized replay schedules over recorded kernels.

:class:`ExecutionPlan` turns a :class:`~repro.compile.recorder.Recorder`
record list into the flattest structure that can re-execute it: view
records are dropped (aliases refresh with their bases), and maximal
runs of consecutive ``_Spec`` records are fused into
:class:`_FusedChain` objects — one python object per chain, dispatching
every ``out=`` ufunc from a local tuple loop with no per-op graph or
tape work.  Everything else (opaque closures, rng draws) executes in
schedule order between chains.
"""

from __future__ import annotations

import numpy as np

from repro.compile.recorder import _Rng, _Run, _Spec, _View
from repro.tensor.tensor import get_default_dtype

__all__ = ["ExecutionPlan", "batch_signature"]


class _FusedChain:
    """A maximal run of consecutive specs, dispatched from one object."""

    __slots__ = ("ops",)

    def __init__(self, specs):
        self.ops = tuple((s.fn, s.srcs, s.out, s.kwargs) for s in specs)

    def execute(self):
        for fn, srcs, out, kwargs in self.ops:
            fn(*srcs, out=out, **kwargs)

    def __len__(self):
        return len(self.ops)


class ExecutionPlan:
    """Compiled replay schedule for one recorded step.

    Attributes
    ----------
    schedule:
        Executable items (:class:`_FusedChain`, ``_Run``, ``_Rng``) in
        program order.
    kernel_count / fused_chains:
        Raw executable-record count and the number of chains they were
        fused into, for reporting.
    buffer_bytes:
        Total bytes of the distinct output buffers the plan writes —
        the retained forward arena (every replay rewrites these same
        buffers; nothing is reallocated).
    """

    def __init__(self, records):
        schedule = []
        chain = []
        kernel_count = 0
        fused_chains = 0
        buffers = {}
        for item in records:
            if isinstance(item, _Spec):
                chain.append(item)
                kernel_count += 1
                out = item.out
                root = out if out.base is None else out.base
                buffers[id(root)] = root
                continue
            if chain:
                schedule.append(_FusedChain(chain))
                fused_chains += 1
                chain = []
            if isinstance(item, _View):
                continue
            kernel_count += 1
            schedule.append(item)
            if isinstance(item, (_Run, _Rng)):
                for out in item.writes:
                    root = out if out.base is None else out.base
                    buffers[id(root)] = root
        if chain:
            schedule.append(_FusedChain(chain))
            fused_chains += 1
        self.schedule = tuple(schedule)
        self.kernel_count = kernel_count
        self.fused_chains = fused_chains
        self.buffer_bytes = sum(b.nbytes for b in buffers.values())

    def execute(self):
        for item in self.schedule:
            item.execute()


def batch_signature(batch):
    """Plan-cache key for a :class:`~repro.data.windows.SampleBatch`.

    Covers every per-field shape and dtype plus the ambient
    default-dtype policy: a shape change (last ragged batch of an
    epoch), a dtype change, or a policy change each resolve to a
    different plan (or fall back to eager while one builds).
    """
    fields = []
    for name in ("closeness", "period", "trend", "target"):
        array = getattr(batch, name)
        fields.append((name, array.shape, array.dtype.str))
    return tuple(fields) + (("default_dtype", np.dtype(get_default_dtype()).str),)
