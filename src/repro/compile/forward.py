"""Tape-free compiled forwards for the serving hot path.

:class:`ForwardCompiler` records ``model.predict`` once per batch size
under ``no_grad()`` and compiles the record into a
:class:`CompiledForward`: a fused kernel schedule whose *intermediate*
buffers live in one liveness-packed arena.  Unlike the training
:class:`~repro.compile.step.CompiledStep` — which must retain every
forward buffer because backward closures read them — a forward-only
plan frees each intermediate the moment its last reader has run, so
buffers with disjoint lifetimes share arena bytes
(:func:`repro.inspect.compute_liveness` / ``plan_arena``).

Packing is conservative: only buffers that every kernel touches
*directly* (never through a view, never from an opaque closure, never
the final output) are relocated into the arena; everything else stays
pinned in place.  Replay copies the request batch into the pinned input
arrays, executes the schedule, and returns a *copy* of the output
buffer — the arena rows are reused by the next replay while callers
(the micro-batcher's futures) may still hold the result.

Hot-swapping is compatible by construction:
``Module.load_state_dict`` writes parameter arrays in place, and the
kernels read those same arrays on every replay.
"""

from __future__ import annotations

import copy
from time import perf_counter

import numpy as np

from repro.compile.plan import ExecutionPlan, batch_signature
from repro.compile.recorder import Recorder, _Rng, _Run, _Spec, _View
from repro.compile.step import private_batch
from repro.inspect.liveness import compute_liveness, plan_arena
from repro.tensor import tensor as _core
from repro.tensor.tensor import no_grad

__all__ = ["CompiledForward", "ForwardCompiler"]


def _root_of(array):
    while array.base is not None:
        array = array.base
    return array


def _pack_arena(records, output):
    """Relocate safely-packable intermediates into one shared arena.

    Returns ``(records, arena, arena_bytes, packable_bytes)`` where
    ``records`` reference arena-backed buffers for every packed key.
    """
    pinned = set()
    spec_roots = {}
    events = []

    def note(array, reads_or_writes, pin=False):
        root = _root_of(array)
        if pin or array is not root:
            pinned.add(id(root))
        reads_or_writes.append(id(root))
        return root

    for item in records:
        reads, writes = [], []
        if isinstance(item, _Spec):
            for src in item.srcs:
                if isinstance(src, np.ndarray):
                    note(src, reads)
            root = note(item.out, writes)
            if item.out is root:
                spec_roots[id(root)] = root
        elif isinstance(item, _View):
            note(item.out, reads, pin=True)
            note(item.base, reads, pin=True)
        else:  # _Run / _Rng: opaque — pin everything it touches
            for src in getattr(item, "reads", ()):
                note(src, reads, pin=True)
            for dst in item.writes:
                note(dst, writes, pin=True)
        events.append((reads, writes))

    pinned.add(id(_root_of(output)))
    candidates = {key: root for key, root in spec_roots.items()
                  if key not in pinned}
    intervals = {key: span
                 for key, span in compute_liveness(events).items()
                 if key in candidates}
    sizes = {key: candidates[key].nbytes for key in intervals}
    offsets, arena_bytes = plan_arena(intervals, sizes)
    arena = np.empty(arena_bytes, dtype=np.uint8)  # lint: ignore[alloc]
    remap = {}
    for key, offset in offsets.items():
        old = candidates[key]
        remap[key] = arena[offset:offset + old.nbytes] \
            .view(old.dtype).reshape(old.shape)

    packed = []
    for item in records:
        if isinstance(item, _Spec) and remap:
            srcs = tuple(remap.get(id(src), src)
                         if isinstance(src, np.ndarray) else src
                         for src in item.srcs)
            out = remap.get(id(item.out), item.out)
            packed.append(_Spec(item.fn, srcs, out, item.kwargs))
        else:
            packed.append(item)
    packable_bytes = sum(sizes.values())
    return packed, arena, arena_bytes, packable_bytes


class CompiledForward:
    """One batch size's compiled predict: copy in, execute, copy out."""

    __slots__ = ("plan", "pins", "output", "arena", "trusted",
                 "arena_bytes", "arena_reuse_pct")

    def __init__(self, plan, pins, output, arena, arena_bytes, reuse_pct):
        self.plan = plan
        self.pins = pins
        self.output = output
        self.arena = arena  # keep the packed buffers alive
        self.trusted = False
        self.arena_bytes = arena_bytes
        self.arena_reuse_pct = reuse_pct

    def replay(self, batch):
        pin_c, pin_p, pin_t = self.pins
        np.copyto(pin_c, batch.closeness)
        np.copyto(pin_p, batch.period)
        np.copyto(pin_t, batch.trend)
        self.plan.execute()
        # The output buffer is rewritten by the next replay; callers
        # (micro-batcher futures) keep their own rows.
        return self.output.copy()


class ForwardCompiler:
    """Per-batch-size plan cache around ``model.predict``."""

    def __init__(self, model, profiler=None):
        self.model = model
        self.profiler = profiler
        self._plans = {}  # signature -> CompiledForward | reason str
        self._fallbacks = {}
        self.plans_built = 0
        self.plans_validated = 0
        self.compiled_forwards = 0
        self.eager_forwards = 0

    # ------------------------------------------------------------------
    def forward(self, batch):
        """Predict for ``batch``; compiled replay once a plan is trusted.

        Not thread-safe by itself — the server calls it under its
        forward lock, the same discipline the eager path uses.
        """
        signature = batch_signature(batch)
        entry = self._plans.get(signature)
        if isinstance(entry, str):
            return self._eager(batch)
        if entry is None:
            return self._build(signature, batch)
        if not entry.trusted:
            return self._shadow(signature, entry, batch)
        result = entry.replay(batch)
        self.compiled_forwards += 1
        if self.profiler is not None:
            self.profiler._record_compiled_step()
        return result

    def report(self):
        plans = [p for p in self._plans.values()
                 if isinstance(p, CompiledForward)]
        return {
            "plans_built": self.plans_built,
            "plans_validated": self.plans_validated,
            "compiled_forwards": self.compiled_forwards,
            "eager_forwards": self.eager_forwards,
            "arena_bytes": max((p.arena_bytes for p in plans), default=0),
            "arena_reuse_pct": max((p.arena_reuse_pct for p in plans),
                                   default=0.0),
            "fallbacks": dict(self._fallbacks),
        }

    # ------------------------------------------------------------------
    def _eager(self, batch):
        self.eager_forwards += 1
        with no_grad():
            return np.asarray(self.model.predict(batch))

    def _rngs(self):
        """Generators ``predict`` may draw from (rewound for shadows)."""
        rng = getattr(self.model, "_sample_rng", None)
        return [rng] if isinstance(rng, np.random.Generator) else []

    def _snapshot_rngs(self):
        return [(rng, copy.deepcopy(rng.bit_generator.state))
                for rng in self._rngs()]

    @staticmethod
    def _restore_rngs(states):
        for rng, state in states:
            rng.bit_generator.state = copy.deepcopy(state)

    def _build(self, signature, batch):
        for module in self.model.modules():
            if getattr(module, "training", False) and (
                    hasattr(module, "running_mean")
                    or hasattr(module, "running_var")):
                reason = ("train-mode normalization updates running "
                          "statistics outside the op layer")
                self._plans[signature] = reason
                self._fallbacks.setdefault("guard", reason)
                return self._eager(batch)

        started = perf_counter()
        states = self._snapshot_rngs()
        batch = private_batch(batch)  # replay pins must not alias caller data
        recorder = Recorder()
        previous = _core._set_recorder(recorder)
        try:
            with no_grad():
                prediction = np.asarray(self.model.predict(batch))
        finally:
            _core._set_recorder(previous)
        self.eager_forwards += 1

        failure = recorder.finalize()
        if failure is not None:
            reason = f"recording failed: {failure}"
            self._plans[signature] = reason
            self._fallbacks.setdefault(str(signature), reason)
            return prediction

        records, arena, arena_bytes, packable = _pack_arena(
            recorder.records, prediction)
        plan = ExecutionPlan(records)
        reuse_pct = (100.0 * (1.0 - arena_bytes / packable)
                     if packable else 0.0)
        pins = (batch.closeness, batch.period, batch.trend)
        step = CompiledForward(plan, pins, prediction, arena,
                               arena_bytes, reuse_pct)

        # Build validation: rewind the rng(s), replay the same batch —
        # the compiled output must equal the eager one bitwise.
        post = self._snapshot_rngs()
        self._restore_rngs(states)
        replayed = step.replay(batch)
        self._restore_rngs(post)
        if not (replayed.shape == prediction.shape
                and replayed.dtype == prediction.dtype
                and np.array_equal(replayed, prediction, equal_nan=True)):
            reason = "build validation failed: replay diverged from eager"
            self._plans[signature] = reason
            self._fallbacks.setdefault(str(signature), reason)
            return prediction

        self._plans[signature] = step
        self.plans_built += 1
        if self.profiler is not None:
            self.profiler._record_compile_plan(perf_counter() - started,
                                               arena_bytes, reuse_pct)
        # ``prediction`` is now the plan's output buffer — the next
        # replay rewrites it, so the caller gets its own copy.
        return prediction.copy()

    def _shadow(self, signature, step, batch):
        """First replay on fresh data, shadowed by an eager predict."""
        states = self._snapshot_rngs()
        replayed = step.replay(batch)
        self._restore_rngs(states)
        eager = self._eager(batch)
        if (replayed.shape == eager.shape and replayed.dtype == eager.dtype
                and np.array_equal(replayed, eager, equal_nan=True)):
            step.trusted = True
            self.plans_validated += 1
        else:
            reason = ("shadow validation failed: replay diverged from "
                      "eager on fresh inputs")
            self._plans[signature] = reason
            self._fallbacks.setdefault(str(signature), reason)
        return eager
