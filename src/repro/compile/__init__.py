"""Graph-compiled execution: record one step, replay it in place.

The eager engine rebuilds the whole graph — every output array, tape
entry, and scratch buffer — on each step, even though a training run
executes the *same* graph thousands of times.  This package compiles
that repetition away:

* :class:`~repro.compile.recorder.Recorder` captures, from one real
  eager step, an in-place *refresh kernel* per op (installed via the
  tensor core's ``_RECORDER`` hook; ops without a kernel are detected
  and force eager fallback);
* :class:`~repro.compile.plan.ExecutionPlan` linearizes the record into
  fused ``out=`` kernel chains;
* :class:`~repro.compile.step.StepCompiler` replays full training steps
  (forward + retained backward closures + stale-marked gradient
  buffers) — used by ``Trainer(compile=True)`` / ``repro train
  --compile``;
* :class:`~repro.compile.forward.ForwardCompiler` replays tape-free
  ``predict`` calls against a liveness-packed buffer arena — used by
  ``repro.serve``'s micro-batch hot path.

Every plan is gated twice, bitwise (``atol=0``): a build-time replay of
the recorded batch, and a shadow eager step on the first *fresh* batch.
A plan that cannot prove equivalence is discarded and its signature
pinned to eager, with the reason surfaced in ``report()`` /
``History.compiled``.  See ``docs/performance.md``.
"""

from repro.compile.forward import CompiledForward, ForwardCompiler
from repro.compile.plan import ExecutionPlan, batch_signature
from repro.compile.recorder import Recorder, record
from repro.compile.step import CompiledStep, StepCompiler

__all__ = [
    "CompiledForward", "ForwardCompiler", "ExecutionPlan",
    "batch_signature", "Recorder", "record", "CompiledStep", "StepCompiler",
]
