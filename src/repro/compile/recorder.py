"""Kernel recording: capture one step as an in-place replay schedule.

A :class:`Recorder` installs into the tensor core's ``_RECORDER`` hook
(see :func:`record`).  While active, every op site registers a *refresh
record* describing how to recompute its output buffer in place:

``_Spec``
    A single ``out=``-dispatched numpy call — ``fn(*srcs, out=out,
    **kwargs)``.  Specs are the fusable common case (elementwise ops,
    matmul, plain reductions); consecutive specs compile into one fused
    chain with no per-op bookkeeping at replay time.
``_Run``
    An opaque closure for ops with auxiliary state (tie masks, scales,
    conv scratch packing).  ``reads``/``writes`` list the arrays the
    closure touches, for liveness analysis.
``_View``
    A no-op marker: the op's output aliases its input's memory, so
    refreshing the input refreshes the output.  Recorded so arena
    planners know the base buffer escapes through an alias.
``_Rng``
    A draw from a captured ``numpy.random.Generator`` *object*.  Replay
    draws in schedule order, consuming the exact stream the eager step
    would have.

Safety net: ``_from_op`` pings :meth:`Recorder._on_op` for every op
*before* the op site (maybe) registers its record.  An op with no
registered kernel leaves the ping unclaimed, which marks the recording
as failed — the compiler then falls back to eager instead of silently
replaying stale buffers.  The recorder is passive: a failed recording
never corrupts the eager step that was running under it.
"""

from __future__ import annotations

from repro.tensor import tensor as _core
from repro.tensor.scratch import ScratchPool

__all__ = ["Recorder", "record"]


class _Spec:
    """One ``fn(*srcs, out=out, **kwargs)`` dispatch (fusable)."""

    __slots__ = ("fn", "srcs", "out", "kwargs")

    def __init__(self, fn, srcs, out, kwargs):
        self.fn = fn
        self.srcs = srcs
        self.out = out
        self.kwargs = kwargs

    def execute(self):
        self.fn(*self.srcs, out=self.out, **self.kwargs)


class _Run:
    """An opaque refresh closure with declared reads/writes."""

    __slots__ = ("fn", "reads", "writes")

    def __init__(self, fn, reads, writes):
        self.fn = fn
        self.reads = reads
        self.writes = writes

    def execute(self):
        self.fn()


class _View:
    """Output aliases ``base``'s memory; nothing to execute."""

    __slots__ = ("out", "base")

    def __init__(self, out, base):
        self.out = out
        self.base = base


class _Rng:
    """A generator draw; replay consumes the same stream in order."""

    __slots__ = ("fn", "writes")

    def __init__(self, fn, writes):
        self.fn = fn
        self.writes = writes

    def execute(self):
        self.fn()


class Recorder:
    """Collects replay records for one recorded step.

    Attributes
    ----------
    records:
        The schedule, in program order.
    scratch:
        A private :class:`~repro.tensor.scratch.ScratchPool`.  Replay
        kernels capture scratch buffers by reference, so the plan owns
        its pool outright — it doubles as the single persistent im2col
        scratch shared by every conv call in the plan.
    failure:
        ``None`` while the recording is viable, else the first reason
        it is not (an op without a replay kernel).
    """

    def __init__(self):
        self.records = []
        self.scratch = ScratchPool()
        self.failure = None
        self._pending = None

    # -- hook called by Tensor._from_op -------------------------------
    def _on_op(self, name, out, parents):
        if self._pending is not None:
            self.fail(f"op '{self._pending}' registered no replay kernel")
        self._pending = name

    def fail(self, reason):
        """Mark the recording unusable (first reason wins)."""
        if self.failure is None:
            self.failure = reason
        self._pending = None

    # -- records registered by op sites -------------------------------
    def ufunc(self, fn, srcs, out, **kwargs):
        """Register a fusable ``fn(*srcs, out=out, **kwargs)`` refresh."""
        self._pending = None
        self.records.append(_Spec(fn, tuple(srcs), out, kwargs))

    def run(self, fn, reads=(), writes=()):
        """Register an opaque refresh closure."""
        self._pending = None
        self.records.append(_Run(fn, tuple(reads), tuple(writes)))

    def view(self, out, base):
        """Register that ``out`` aliases ``base`` (no refresh needed)."""
        self._pending = None
        self.records.append(_View(out, base))

    def leaf(self, fn, reads=(), writes=()):
        """Register a refresh for a data-dependent *leaf* tensor.

        Leaves never fire ``_on_op`` so this does not claim a pending
        op (e.g. logsumexp's shift, created between two recorded ops).
        """
        self.records.append(_Run(fn, tuple(reads), tuple(writes)))

    def rng(self, fn, writes=()):
        """Register a generator draw (non-claiming, like :meth:`leaf`)."""
        self.records.append(_Rng(fn, tuple(writes)))

    # ------------------------------------------------------------------
    def finalize(self):
        """Close the recording; returns the failure reason or ``None``."""
        if self._pending is not None:
            self.fail(f"op '{self._pending}' registered no replay kernel")
        return self.failure


class record:
    """Context manager installing a :class:`Recorder` on the op hook.

    >>> with record() as rec:              # doctest: +SKIP
    ...     loss = model.training_loss(batch, rng)[0].total
    >>> rec.finalize() is None             # doctest: +SKIP
    """

    def __init__(self, recorder=None):
        self.recorder = recorder if recorder is not None else Recorder()
        self._previous = None

    def __enter__(self):
        self._previous = _core._set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb):
        _core._set_recorder(self._previous)
        return False
