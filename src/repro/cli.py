"""Command-line interface.

Everything the experiment runners can do, from the shell:

    python -m repro info
    python -m repro simulate nyc-bike --scale tiny --out bike.npz
    python -m repro train MUSE-Net --dataset nyc-bike --profile ci
    python -m repro train MUSE-Net --checkpoint-dir runs/bike --resume
    python -m repro evaluate MUSE-Net --checkpoint runs/bike
    python -m repro experiment table2 --profile ci
    python -m repro complexity

Operational failures (missing or corrupt checkpoints, invalid config
values, diverged training) exit non-zero with a one-line actionable
message on stderr rather than a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.baselines import BASELINE_NAMES
from repro.core import VARIANT_NAMES
from repro.data import DATASET_NAMES, load_dataset
from repro.data.io import save_dataset
from repro.parallel import ParallelWorkerError
from repro.training import (
    CheckpointCorruptError,
    DivergenceError,
    find_latest_checkpoint,
)
from repro.experiments import (
    PROFILES,
    prepare,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    train_baseline,
    train_muse,
)

EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}


def _cmd_info(_args):
    print(f"repro {__version__} — MUSE-Net (ICDE 2024) reproduction")
    print(f"datasets:    {', '.join(DATASET_NAMES)}  (scales: full, small, tiny)")
    print(f"methods:     MUSE-Net, {', '.join(BASELINE_NAMES)}")
    print(f"variants:    {', '.join(VARIANT_NAMES)}")
    print(f"profiles:    {', '.join(PROFILES)}")
    print(f"experiments: {', '.join(EXPERIMENTS)}")
    return 0


def _cmd_simulate(args):
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(dataset.summary())
    if args.out:
        save_dataset(dataset, args.out)
        print(f"wrote {args.out}")
    return 0


def _train_overrides(args):
    """TrainConfig overrides from the robustness CLI flags."""
    overrides = {}
    if getattr(args, "sentinel", None) is not None:
        overrides["sentinel"] = None if args.sentinel == "off" else args.sentinel
    if getattr(args, "checkpoint_dir", None):
        overrides["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "resume", False):
        overrides["resume"] = True
    if getattr(args, "detect_anomaly", False):
        overrides["detect_anomaly"] = True
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if getattr(args, "compile", False):
        overrides["compile"] = True
    return overrides or None


def _cmd_train(args):
    data = prepare(args.dataset, args.profile, horizon=args.horizon)
    profile_ops = getattr(args, "profile_ops", False)
    dtype = getattr(args, "dtype", None)
    overrides = _train_overrides(args)
    if args.method == "MUSE-Net":
        trainer = train_muse(data, args.profile, seed=args.seed,
                             profile_ops=profile_ops, dtype=dtype,
                             train_overrides=overrides)
    elif args.method in BASELINE_NAMES:
        trainer = train_baseline(args.method, data, args.profile, seed=args.seed,
                                 profile_ops=profile_ops, dtype=dtype,
                                 train_overrides=overrides)
    else:
        print(f"unknown method {args.method!r}; choose MUSE-Net or one of "
              f"{', '.join(BASELINE_NAMES)}", file=sys.stderr)
        return 2
    report = trainer.evaluate(data)
    print(f"{args.method} on {args.dataset} [{args.profile}] horizon {args.horizon}")
    print(report)
    history = trainer.history
    if history is not None:
        print(history.telemetry_summary())
        if history.sentinel and history.sentinel.get("counts"):
            counts = ", ".join(f"{kind}: {n}" for kind, n
                               in sorted(history.sentinel["counts"].items()))
            print(f"sentinel [{history.sentinel['policy']}] triggered — {counts}")
        if history.parallel:
            par = history.parallel
            print(f"parallel: {par['workers']} workers, "
                  f"allreduce {par['reduce_s']:.2f}s over "
                  f"{par['reduce_count']} steps, "
                  f"prefetch stall {par['prefetch_stall_s']:.2f}s")
        if history.compiled:
            comp = history.compiled
            if comp.get("enabled") is False:
                print(f"compile: disabled — {comp['reason']}")
            else:
                print(f"compile: {comp['plans_built']} plan(s), "
                      f"{comp['compiled_steps']} compiled / "
                      f"{comp['eager_steps']} eager step(s), "
                      f"arena {comp['arena_bytes'] / 2**20:.2f} MiB "
                      f"({comp['arena_reuse_pct']:.0f}% scratch reuse), "
                      f"{comp['fused_chains']} fused chain(s) over "
                      f"{comp['kernels']} kernel(s)")
                for key, reason in sorted(comp["fallbacks"].items()):
                    print(f"compile fallback [{key}]: {reason}")
        if history.interrupted:
            print("run interrupted; resume with --resume and the same "
                  "--checkpoint-dir")
        if history.op_profile:
            from repro.profiling import format_op_summary

            print(format_op_summary(history.op_profile))
    return 0


def _cmd_evaluate(args):
    from repro.core import MUSENet
    from repro.baselines import BaselineConfig, make_baseline
    from repro.experiments.common import get_profile, muse_config
    from repro.training import Trainer, load_checkpoint

    data = prepare(args.dataset, args.profile, horizon=args.horizon)
    profile = get_profile(args.profile)
    if args.method == "MUSE-Net":
        model = MUSENet(muse_config(data, profile, seed=args.seed))
    elif args.method in BASELINE_NAMES:
        config = BaselineConfig.for_data(data, hidden=profile.hidden,
                                         seed=args.seed)
        model = make_baseline(args.method, config)
    else:
        print(f"unknown method {args.method!r}; choose MUSE-Net or one of "
              f"{', '.join(BASELINE_NAMES)}", file=sys.stderr)
        return 2

    path = args.checkpoint
    if os.path.isdir(path):
        found = find_latest_checkpoint(path)
        if found is None:
            print(f"error: no valid checkpoint found in {path!r} (corrupt "
                  "archives are skipped); train with --checkpoint-dir first",
                  file=sys.stderr)
            return 1
        path = found
    trainer = Trainer(model)
    load_checkpoint(path, model, trainer.optimizer)
    report = trainer.evaluate(data)
    print(f"{args.method} on {args.dataset} [{args.profile}] horizon "
          f"{args.horizon} (checkpoint {path})")
    print(report)
    return 0


def _serve_listen(args, server, data, test):
    """Socket-serving session: listen until a shutdown frame or ctrl-C.

    Warms the streaming window from the flow history preceding the test
    split (so ``forecast``/``push`` ops work immediately), binds the
    asyncio front-end, optionally writes the resolved address (ephemeral
    ports!) to ``--address-file``, and blocks until a client sends the
    ``shutdown`` op — then drains connections and exits 0.  Ctrl-C
    drains the same way and exits 130 (the interrupt contract).
    """
    from repro.serve import SocketFrontend
    from repro.serve import wire

    warm_to = int(test.indices[0])
    for frame in data.dataset.flows[:warm_to]:
        server.push_tick(frame)
    frontend = SocketFrontend(server, wire.parse_address(args.listen),
                              queries=test,
                              max_connections=args.max_connections)
    frontend.start()
    try:
        spec = wire.format_address(frontend.address)
        if args.address_file:
            # Write-then-rename: a polling client must never read a
            # half-written address.
            tmp = args.address_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(spec + "\n")
            os.replace(tmp, args.address_file)
        print(f"serving {args.method} on {spec} "
              f"({len(test)} replay samples; send a shutdown frame or "
              "ctrl-C to stop)", flush=True)
        frontend.wait_for_shutdown()
    except KeyboardInterrupt:
        print("interrupted — draining connections", file=sys.stderr)
        return 130
    finally:
        frontend.close()
    print("shutdown requested — drained cleanly", flush=True)
    return 0


def _cmd_serve(args):
    """Run a serving session: replay test traffic, report latency stats."""
    import json
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    from repro.core import MUSENet
    from repro.baselines import BaselineConfig, make_baseline
    from repro.experiments.common import get_profile, muse_config
    from repro.serve import ForecastServer, ServeConfig
    from repro.training import Trainer

    if args.requests < 1:
        raise ValueError(f"--requests must be >= 1; got {args.requests}")
    if args.concurrency < 1:
        raise ValueError(f"--concurrency must be >= 1; got {args.concurrency}")
    data = prepare(args.dataset, args.profile, horizon=args.horizon)
    profile = get_profile(args.profile)
    if args.method == "MUSE-Net":
        model = MUSENet(muse_config(data, profile, seed=args.seed))
    elif args.method in BASELINE_NAMES:
        config = BaselineConfig.for_data(data, hidden=profile.hidden,
                                         seed=args.seed)
        model = make_baseline(args.method, config)
    else:
        print(f"unknown method {args.method!r}; choose MUSE-Net or one of "
              f"{', '.join(BASELINE_NAMES)}", file=sys.stderr)
        return 2

    serve_config = ServeConfig(max_batch=args.max_batch,
                               max_wait_ms=args.max_wait_ms,
                               replicas=args.replicas,
                               blas_threads=args.blas_threads,
                               compile=getattr(args, "compile", False),
                               min_replicas=getattr(args, "min_replicas", 0),
                               max_replicas=getattr(args, "max_replicas", 0))
    test = data.test
    server = ForecastServer(model, serve_config, scaler=data.scaler,
                            periodicity=data.periodicity,
                            frame_shape=test.target.shape[1:],
                            template=test)
    with server:
        if args.checkpoint:
            path = args.checkpoint
            if os.path.isdir(path):
                found = find_latest_checkpoint(path)
                if found is None:
                    print(f"error: no valid checkpoint found in {path!r} "
                          "(corrupt archives are skipped); train with "
                          "--checkpoint-dir first", file=sys.stderr)
                    return 1
                path = found
            generation = server.load_checkpoint(path)
            print(f"installed {path} (generation {generation})")

        if getattr(args, "listen", None):
            return _serve_listen(args, server, data, test)

        # Replay the test split as `--requests` single-sample queries
        # from `--concurrency` concurrent clients.
        requests = args.requests
        queries = [test.slice(i % len(test), i % len(test) + 1)
                   for i in range(requests)]
        with ThreadPoolExecutor(max_workers=args.concurrency) as clients:
            served = list(clients.map(server.forecast, queries))
        served = np.concatenate(served, axis=0)
        snap = server.snapshot()

    # Correctness gate: served rows must match the offline eval path.
    offline = Trainer(model).predict_scaled(test)
    reference = offline[[i % len(test) for i in range(requests)]]
    atol = 1e-6 if served.dtype == np.float32 else 1e-12
    max_err = float(np.abs(served - reference).max())
    snap["max_abs_error_vs_offline"] = max_err
    if args.format == "json":
        print(json.dumps(snap, indent=2))
    else:
        print(f"{args.method} serving on {args.dataset} [{args.profile}] — "
              f"{snap['requests']} requests, {snap['batches']} batches, "
              f"concurrency {args.concurrency}")
        lat, wait = snap["latency_ms"], snap["queue_wait_ms"]
        print(f"latency p50 {lat['p50']:.2f} ms  p99 {lat['p99']:.2f} ms  "
              f"max {lat['max']:.2f} ms")
        print(f"queue wait p50 {wait['p50']:.2f} ms  p99 {wait['p99']:.2f} ms")
        print(f"throughput {snap['queries_per_sec']:.1f} qps  "
              f"mean batch {snap['batch_size']['mean']:.2f}  "
              f"generation {snap['generation']}")
        print(f"served == offline predict_scaled: max|err| {max_err:.3g} "
              f"(atol {atol:g})")
    if max_err > atol:
        print(f"error: served forecasts diverge from the offline eval path "
              f"(max|err| {max_err:.3g} > atol {atol:g})", file=sys.stderr)
        return 1
    return 0


def _cmd_stream(args):
    """Replay a disruption scenario through the streaming runtime."""
    import json
    import tempfile

    import numpy as np

    from repro.data.windows import build_samples
    from repro.stream import simulate as sim
    from repro.training import Trainer

    scenario = sim.make_scenario(args.scenario, seed=args.seed)
    state = sim.train_offline(scenario, epochs=args.epochs, seed=args.seed)
    adaptive = not args.frozen
    with tempfile.TemporaryDirectory(prefix="repro-stream-") as ckpt_dir:
        runtime = sim.build_runtime(scenario, state, adaptive=adaptive,
                                    checkpoint_dir=ckpt_dir, seed=args.seed)
        with runtime:
            results = sim.run_scenario(scenario, runtime)
            telemetry = runtime.telemetry()
    report = sim.evaluate_results(scenario, results)

    # Clean-stream correctness gate: every model-sourced live forecast
    # must be bit-identical to the offline build_samples ->
    # predict_scaled path on the same interval.
    max_err = None
    if args.scenario == "clean":
        scaler = sim.fit_scaler(scenario)
        reference_model = sim.make_model(scenario.grid, scenario.periodicity,
                                         seed=args.seed)
        reference_model.load_state_dict(state)
        trainer = Trainer(reference_model)
        scaled = scaler.transform(scenario.flows)
        max_err = 0.0
        for result, _ in results:
            if result.source != "model":
                continue
            batch = build_samples(scaled, scenario.periodicity,
                                  [result.index])
            offline = scaler.inverse_transform(
                np.asarray(trainer.predict_scaled(batch))[0])
            max_err = max(max_err,
                          float(np.abs(result.flows - offline).max()))
        report["max_abs_error_vs_offline"] = max_err

    if args.format == "json":
        report["telemetry"] = telemetry
        print(json.dumps(report, indent=2, default=str))
    else:
        print(f"stream scenario {scenario.name!r}: {scenario.description}")
        print(f"mode: {'adaptive' if adaptive else 'frozen'}  seed: "
              f"{args.seed}  live ticks forecast: {report['ticks_forecast']}")
        for segment in ("pre", "post", "recovery"):
            stats = report[segment]
            if stats is None:
                continue
            print(f"{segment:>9}: {stats['ticks']:3d} ticks  "
                  f"rmse {stats['rmse']:.3f}  nrmse {stats['nrmse']:.4f}")
        print("sources: " + ", ".join(
            f"{name}={count}" for name, count in
            sorted(report["sources"].items())))
        ingest = telemetry["ingest"]
        print(f"ingest: {ingest['counts']['emitted']} emitted, "
              f"{ingest['counts']['gaps']} gaps, "
              f"{ingest['counts']['quarantined']} quarantined, "
              f"{ingest['counts']['reordered']} reordered")
        print(f"drift: {telemetry['drift']['drifts']} confirmed, "
              f"{telemetry['drift']['spikes']} spikes; "
              f"retrains {telemetry['retrains']}, "
              f"retrain failures {len(telemetry['retrain_failures'])}, "
              f"masked cells {telemetry['masked_cells']}")
        serve = telemetry["serve"]
        print(f"serve: generation {serve['generation']}, staleness "
              f"{serve['staleness_ticks']} ticks, degraded "
              f"{serve['degraded']}")
        if max_err is not None:
            print(f"clean stream == offline predict_scaled: max|err| "
                  f"{max_err:.3g}")

    if max_err is not None and max_err > 0.0:
        print(f"error: live forecasts diverge from the offline pipeline "
              f"(max|err| {max_err:.3g} > 0)", file=sys.stderr)
        return 1
    return 0


def _cmd_experiment(args):
    runner = EXPERIMENTS.get(args.name)
    if runner is None:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    result = runner(profile=args.profile)
    print(result)
    return 0


def _cmd_complexity(args):
    print(run_table1(profile=args.profile))
    return 0


def _cmd_report(args):
    from repro.experiments import build_dataset_report

    print(build_dataset_report(args.dataset))
    return 0


def _repo_root():
    """Repo root for lint paths: the directory holding pyproject.toml."""
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    if os.path.isfile(os.path.join(package_root, "pyproject.toml")):
        return package_root
    return os.getcwd()


def _cmd_check_model(args):
    import json

    import numpy as np

    from repro.inspect import check_method

    dtype = np.float32 if args.dtype == "float32" else np.float64
    methods = args.method or ["MUSE-Net"]
    reports = []
    try:
        for method in methods:
            reports.append(check_method(method, dtype=dtype))
    except ValueError:
        raise  # bad method/config -> exit 2 via main()
    except Exception as exc:  # internal checker failure -> exit 1
        print(f"error: check-model failed on {method!r}: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        print("\n".join(r.format_text() for r in reports))
    return 0 if all(r.ok for r in reports) else 2


def _cmd_lint(args):
    import json

    from repro.inspect import lint_paths, load_config

    root = _repo_root()
    paths = args.path or [os.path.join(root, "src", "repro")]
    try:
        config = load_config(root)
        report = lint_paths(paths, root=root, config=config)
    except ValueError:
        raise  # bad [tool.repro.lint] config -> exit 2 via main()
    except Exception as exc:  # internal linter failure -> exit 1
        print(f"error: lint failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 2


def _cmd_check_concurrency(args):
    import json

    from repro.inspect import check_concurrency, load_config

    root = _repo_root()
    paths = args.path or None
    try:
        config = load_config(root)
        report = check_concurrency(paths, root=root, config=config)
    except ValueError:
        raise  # bad [tool.repro.lint] config -> exit 2 via main()
    except Exception as exc:  # internal checker failure -> exit 1
        print(f"error: check-concurrency failed: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 2


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MUSE-Net (ICDE 2024) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="list datasets, methods, and experiments")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("simulate", help="simulate a dataset (optionally save it)")
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("--scale", default="tiny", choices=("full", "small", "tiny"))
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--out", default=None, help="write the dataset to this .npz")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("train", help="train one method and print test metrics")
    p.add_argument("method", help="MUSE-Net or a baseline name")
    p.add_argument("--dataset", default="nyc-bike", choices=DATASET_NAMES)
    p.add_argument("--profile", default="ci", choices=tuple(PROFILES))
    p.add_argument("--horizon", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile-ops", action="store_true",
                   help="collect and print a per-op runtime profile")
    p.add_argument("--dtype", default=None, choices=("float32", "float64"),
                   help="training compute precision (default: keep float64)")
    p.add_argument("--sentinel", default=None,
                   choices=("off", "raise", "skip_batch", "rollback"),
                   help="divergence sentinel policy (default: raise)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="write rotating periodic checkpoints here")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="checkpoint cadence in epochs (needs --checkpoint-dir)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest valid checkpoint in "
                        "--checkpoint-dir (corrupt archives are skipped)")
    p.add_argument("--detect-anomaly", action="store_true",
                   help="run under detect_anomaly() to pinpoint the op "
                        "introducing a NaN/Inf (slow; debugging only)")
    p.add_argument("--workers", type=int, default=None,
                   help="data-parallel worker processes (default: 0, "
                        "single-process; see docs/performance.md)")
    p.add_argument("--compile", action="store_true",
                   help="graph-compile the training step: record once per "
                        "batch signature, replay a fused in-place kernel "
                        "schedule (bit-identical to eager; see "
                        "docs/performance.md)")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("evaluate",
                       help="evaluate a saved checkpoint on the test split")
    p.add_argument("method", help="MUSE-Net or a baseline name")
    p.add_argument("--checkpoint", required=True,
                   help="checkpoint file, or a directory to pick the newest "
                        "valid archive from")
    p.add_argument("--dataset", default="nyc-bike", choices=DATASET_NAMES)
    p.add_argument("--profile", default="ci", choices=tuple(PROFILES))
    p.add_argument("--horizon", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "serve",
        help="serve forecasts with micro-batching; replay test traffic "
             "and print p50/p99 latency and throughput")
    p.add_argument("method", help="MUSE-Net or a baseline name")
    p.add_argument("--checkpoint", default=None,
                   help="hot-install this checkpoint (file, or a directory "
                        "to pick the newest valid archive from) before "
                        "serving; omit to serve the freshly seeded model")
    p.add_argument("--dataset", default="nyc-bike", choices=DATASET_NAMES)
    p.add_argument("--profile", default="ci", choices=tuple(PROFILES))
    p.add_argument("--horizon", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=64,
                   help="number of single-sample queries to replay "
                        "(default: 64)")
    p.add_argument("--concurrency", type=int, default=8,
                   help="concurrent client threads (default: 8)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="samples coalesced per forward (default: 32)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="batching window after the first request in ms "
                        "(default: 2.0)")
    p.add_argument("--replicas", type=int, default=0,
                   help="forked replica processes over one shared weight "
                        "buffer; 0 = in-process forwards (default)")
    p.add_argument("--min-replicas", type=int, default=0,
                   help="autoscaler lower bound; with --max-replicas, "
                        "the pool grows/shrinks between the bounds from "
                        "queue telemetry (0 = autoscaling off)")
    p.add_argument("--max-replicas", type=int, default=0,
                   help="autoscaler upper bound (requires --replicas >= 1 "
                        "as the starting size; 0 = autoscaling off)")
    p.add_argument("--blas-threads", type=int, default=1,
                   help="BLAS thread cap inside each replica (default: 1)")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve over a socket instead of replaying: bind "
                        "the asyncio front-end on HOST:PORT (port 0 = "
                        "ephemeral) or unix:PATH and run until a client "
                        "sends the shutdown op")
    p.add_argument("--address-file", default=None,
                   help="with --listen, write the resolved address spec "
                        "to this file once bound (how scripts discover "
                        "an ephemeral port)")
    p.add_argument("--max-connections", type=int, default=32,
                   help="with --listen, concurrent-connection cap; excess "
                        "connections get an explicit busy reply "
                        "(default: 32)")
    p.add_argument("--compile", action="store_true",
                   help="graph-compile the in-process forward: record "
                        "predict once per batch size, replay a fused "
                        "arena-backed kernel schedule (requires "
                        "--replicas 0; bit-identical to eager)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "stream",
        help="replay a disruption scenario through the streaming "
             "runtime; report segmented accuracy, fault telemetry, and "
             "the clean-stream correctness gate")
    p.add_argument("--scenario", default="clean",
                   help="disruption scenario "
                        "(clean, late, dropout, corrupt, outage, "
                        "level_shift, closure, surge)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=8,
                   help="offline pre-training epochs before the live "
                        "segment starts (default: 8)")
    p.add_argument("--frozen", action="store_true",
                   help="disable drift adaptation (the comparison arm); "
                        "default is the adaptive runtime")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("experiment", help="regenerate one paper table/figure")
    p.add_argument("name", help=f"one of: {', '.join(EXPERIMENTS)}")
    p.add_argument("--profile", default="ci", choices=tuple(PROFILES))
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("complexity", help="print the Table I comparison")
    p.add_argument("--profile", default="ci", choices=tuple(PROFILES))
    p.set_defaults(func=_cmd_complexity)

    p = sub.add_parser("report", help="diagnose a dataset's periodic structure")
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "check-model",
        help="statically check a model graph (shapes, dtypes, gradient "
             "reachability, numeric hazards) before training")
    p.add_argument("method", nargs="*",
                   help="MUSE-Net (default) and/or baseline names")
    p.add_argument("--dtype", default="float32",
                   choices=("float32", "float64"),
                   help="build the model under this precision policy "
                        "(default: float32, the training configuration)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=_cmd_check_model)

    p = sub.add_parser(
        "lint",
        help="run the repo lint rules (dtype policy, gradcheck coverage, "
             "optimizer out= contract, mutable defaults)")
    p.add_argument("path", nargs="*",
                   help="files or directories (default: src/repro)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "check-concurrency",
        help="whole-program lock-discipline analysis over the threaded "
             "serving/training stack (lock-order cycles, guarded-field "
             "violations, fork-while-locked)")
    p.add_argument("path", nargs="*",
                   help="files or directories (default: the configured "
                        "concurrency-paths)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=_cmd_check_concurrency)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code.

    Operational failures surface as one-line ``error:`` messages on
    stderr with a non-zero exit code — never a traceback: corrupt or
    missing checkpoints exit 1, invalid configuration values exit 2,
    diverged training exits 3, interruption exits 130.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CheckpointCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ParallelWorkerError as exc:
        print(f"error: {exc}\nhint: rerun with --workers 0 to reproduce "
              "single-process, or --detect-anomaly to localise a NaN/Inf",
              file=sys.stderr)
        return 1
    except DivergenceError as exc:
        print(f"error: {exc}\nhint: retry with --sentinel skip_batch or "
              "--sentinel rollback, or localise the op with --detect-anomaly",
              file=sys.stderr)
        return 3
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
