"""Divergence sentinel: cheap per-step guards for the training loop.

A single non-finite loss silently poisons the weights, the optimizer
moments, and every later history entry; on a multi-hour run that is a
lost day.  :class:`DivergenceSentinel` watches three signals after each
backward pass and *before* the optimizer applies the update:

- **non-finite loss** — ``loss.item()`` is NaN/Inf;
- **non-finite gradients** — any parameter gradient contains NaN/Inf;
- **gradient-norm spike** — the global grad norm exceeds
  ``spike_factor`` times its running mean (tracked by an EMA that only
  updates on healthy steps, so a spike cannot drag its own baseline
  up).  Spike detection arms after ``warmup`` healthy steps.

What happens next is the *policy*:

- ``"raise"`` (default) — abort with :class:`DivergenceError` before
  the bad update is applied;
- ``"skip_batch"`` — drop the batch (no optimizer step, loss excluded
  from the epoch mean) and keep training;
- ``"rollback"`` — restore the last good in-memory snapshot of the
  weights and optimizer state, multiply the learning rate by
  ``lr_backoff``, and continue; after ``max_rollbacks`` restores the
  sentinel escalates to :class:`DivergenceError`.

Every trigger is recorded as a :class:`SentinelEvent`; the trainer
attaches the full report (policy, thresholds, events) to
``History.sentinel``.  The checks are read-only on the model — a run
that never triggers is bit-identical to a sentinel-off run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["POLICIES", "DivergenceError", "DivergenceSentinel", "SentinelEvent"]

POLICIES = ("raise", "skip_batch", "rollback")

# Bound the per-run report; a pathological run can trigger on every
# step and the events list must not become the memory leak it guards.
_MAX_RECORDED_EVENTS = 100


class DivergenceError(RuntimeError):
    """Training diverged (or exhausted its rollback budget).

    Carries the triggering :class:`SentinelEvent` as ``event``.
    """

    def __init__(self, message, event=None):
        super().__init__(message)
        self.event = event


@dataclass
class SentinelEvent:
    """One sentinel trigger: what fired, where, and what was done."""

    step: int          # global optimizer step index (0-based)
    epoch: int
    kind: str          # "nonfinite_loss" | "nonfinite_grad" | "grad_spike"
    action: str        # the policy applied: "raise"|"skip_batch"|"rollback"
    loss: float
    grad_norm: float = None
    detail: str = ""


class DivergenceSentinel:
    """Per-step divergence detector with a configurable response policy."""

    def __init__(self, policy="raise", spike_factor=1e3, warmup=10,
                 lr_backoff=0.5, max_rollbacks=3):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown sentinel policy {policy!r}; choose from {POLICIES}")
        if spike_factor <= 1.0:
            raise ValueError(
                f"spike_factor must be > 1; got {spike_factor}")
        if not 0.0 < lr_backoff < 1.0:
            raise ValueError(
                f"lr_backoff must be in (0, 1); got {lr_backoff}")
        self.policy = policy
        self.spike_factor = float(spike_factor)
        self.warmup = int(warmup)
        self.lr_backoff = float(lr_backoff)
        self.max_rollbacks = int(max_rollbacks)
        self.events = []
        self.counts = {}
        self.rollbacks = 0
        # Norm computed by the most recent healthy check(); the trainer
        # hands it to clip_grad_norm so the sentinel's scan replaces —
        # not duplicates — the clip's own norm pass.
        self.last_norm = None
        self._healthy_steps = 0
        self._norm_ema = 0.0
        self._ema_beta = 0.9

    # ------------------------------------------------------------------
    @staticmethod
    def grad_norm(parameters):
        """Global L2 norm of all parameter gradients (pre-clip)."""
        total = 0.0
        for param in parameters:
            grad = param.grad
            if grad is not None:
                total += float(np.vdot(grad, grad).real)
        return float(np.sqrt(total))

    def check(self, loss_value, parameters, step, epoch):
        """Inspect one step; returns a :class:`SentinelEvent` or ``None``.

        Call after ``backward()`` and before ``optimizer.step()`` so a
        flagged update never reaches the weights.  ``None`` means the
        step is healthy and the update may proceed.
        """
        loss_value = float(loss_value)
        self.last_norm = None
        if not np.isfinite(loss_value):
            return self._event(step, epoch, "nonfinite_loss", loss_value, None,
                               "loss is NaN/Inf")
        norm = self.grad_norm(parameters)
        self.last_norm = norm
        if not np.isfinite(norm):
            return self._event(step, epoch, "nonfinite_grad", loss_value, norm,
                               "a parameter gradient contains NaN/Inf")
        if (self._healthy_steps >= max(self.warmup, 1)
                and norm > self.spike_factor * self._norm_ema
                and self._norm_ema > 0.0):
            return self._event(
                step, epoch, "grad_spike", loss_value, norm,
                f"grad norm {norm:.3e} exceeds {self.spike_factor:g}x "
                f"running mean {self._norm_ema:.3e}")
        # Healthy: fold this norm into the spike baseline.
        self._healthy_steps += 1
        self._norm_ema = (self._ema_beta * self._norm_ema
                          + (1.0 - self._ema_beta) * norm
                          if self._healthy_steps > 1 else norm)
        return None

    def _event(self, step, epoch, kind, loss, norm, detail):
        event = SentinelEvent(step=step, epoch=epoch, kind=kind,
                              action=self.policy, loss=loss,
                              grad_norm=norm, detail=detail)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.events) < _MAX_RECORDED_EVENTS:
            self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def rearm(self):
        """Reset the spike baseline and re-enter warmup.

        Called after a rollback restore (and by the streaming adapter
        after a successful hot swap): the restored weights × backed-off
        learning rate produce a different grad-norm distribution, so
        the old EMA is no longer a valid spike baseline.  Spike
        detection re-arms only after ``warmup`` fresh healthy steps;
        the first healthy step after a rearm re-seeds the EMA with its
        own norm (cold start), exactly like step one of a run.
        Non-finite detection is unaffected — it never needs a baseline.
        """
        self._healthy_steps = 0
        self._norm_ema = 0.0
        self.last_norm = None

    def note_rollback(self):
        """Count one rollback; raise once the budget is exhausted."""
        self.rollbacks += 1
        if self.rollbacks > self.max_rollbacks:
            last = self.events[-1] if self.events else None
            raise DivergenceError(
                f"training diverged: {self.rollbacks} rollbacks exceed the "
                f"budget of {self.max_rollbacks}; last trigger: "
                f"{last.kind if last else 'unknown'} "
                f"({last.detail if last else ''})",
                event=last,
            )

    def raise_(self, event):
        """Abort the run for ``event`` (the ``raise`` policy)."""
        raise DivergenceError(
            f"training diverged at step {event.step} (epoch {event.epoch}): "
            f"{event.kind} — {event.detail}; loss={event.loss!r}"
            + (f", grad_norm={event.grad_norm:.3e}"
               if event.grad_norm is not None else ""),
            event=event,
        )

    def report(self):
        """JSON-able summary for ``History.sentinel``.

        ``counts`` tallies every trigger; ``events`` carries the first
        100 in full (the cap keeps a pathological run's report bounded).
        """
        counts = dict(self.counts)
        return {
            "policy": self.policy,
            "spike_factor": self.spike_factor,
            "warmup": self.warmup,
            "lr_backoff": self.lr_backoff,
            "max_rollbacks": self.max_rollbacks,
            "rollbacks": self.rollbacks,
            "counts": counts,
            "events": [asdict(event) for event in self.events],
        }
