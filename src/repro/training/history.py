"""Training history record."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["History"]


@dataclass
class History:
    """Per-epoch curves and run telemetry collected by the trainer.

    Besides the loss/validation curves, the trainer records wall-clock
    telemetry: ``epoch_time`` (seconds per epoch, including validation)
    and ``batches_per_sec`` (training-section throughput).  When op
    profiling is enabled (``TrainConfig.profile_ops``), ``op_profile``
    holds the :meth:`repro.profiling.OpProfiler.as_dict` snapshot for
    the whole fit and ``peak_tape_bytes`` the tape's high-water mark.

    Robustness bookkeeping: ``interrupted`` is set when a fit was
    stopped by SIGINT/SIGTERM (the run is resumable from its final
    checkpoint), and ``sentinel`` holds the divergence sentinel's
    JSON-able report — policy, thresholds, and the anomalous steps it
    acted on (see :mod:`repro.training.sentinel`).
    """

    train_loss: list = field(default_factory=list)
    train_reg: list = field(default_factory=list)
    val_rmse: list = field(default_factory=list)
    epoch_time: list = field(default_factory=list)
    batches_per_sec: list = field(default_factory=list)
    best_epoch: int = -1
    best_val_rmse: float = float("inf")
    stopped_early: bool = False
    interrupted: bool = False
    # Set when TrainConfig.max_steps ended the fit mid-run: the step
    # budget, not convergence or early stopping, decided the stop
    # (bounded warm re-training, docs/streaming.md).
    budget_exhausted: bool = False
    peak_tape_bytes: int = 0
    op_profile: dict = None
    sentinel: dict = None
    # Data-parallel run telemetry (ParallelEngine.telemetry()): worker
    # count, allreduce time, prefetch stalls, per-worker BLAS pinning.
    parallel: dict = None
    # Graph-compiled stepping report (StepCompiler.report()): plans
    # built/validated, compiled vs eager step counts, arena bytes and
    # scratch reuse, and any per-signature fallback reasons.  When
    # TrainConfig.compile was requested but unavailable, holds
    # {"enabled": False, "reason": ...} instead.
    compiled: dict = None

    @property
    def epochs_run(self):
        """Number of completed epochs."""
        return len(self.train_loss)

    def record(self, train_loss, train_reg, val_rmse, min_delta=0.0):
        """Append one epoch; returns True when this is a new best.

        ``min_delta`` is the minimum improvement that counts as a new
        best (standard early-stopping slack).
        """
        self.train_loss.append(train_loss)
        self.train_reg.append(train_reg)
        self.val_rmse.append(val_rmse)
        if val_rmse < self.best_val_rmse - min_delta:
            self.best_val_rmse = val_rmse
            self.best_epoch = len(self.val_rmse) - 1
            return True
        return False

    def record_telemetry(self, epoch_seconds, batches_per_sec):
        """Append one epoch's wall-clock telemetry."""
        self.epoch_time.append(float(epoch_seconds))
        self.batches_per_sec.append(float(batches_per_sec))

    @property
    def total_time(self):
        """Total training wall time in seconds."""
        return float(sum(self.epoch_time))

    def telemetry_summary(self):
        """One-line human-readable run telemetry."""
        if not self.epoch_time:
            return "telemetry: none recorded"
        mean_bps = sum(self.batches_per_sec) / len(self.batches_per_sec)
        line = (f"telemetry: {self.epochs_run} epochs in {self.total_time:.2f}s "
                f"(mean {mean_bps:.1f} batches/s")
        if self.peak_tape_bytes:
            line += f", peak tape {self.peak_tape_bytes / 2**20:.2f} MiB"
        if self.parallel:
            line += f", {self.parallel.get('workers', '?')} workers"
        if self.compiled and self.compiled.get("compiled_steps"):
            line += f", {self.compiled['compiled_steps']} compiled steps"
        line += ")"
        if self.stopped_early:
            line += " [stopped early]"
        if self.interrupted:
            line += " [interrupted]"
        if self.sentinel and self.sentinel.get("events"):
            line += f" [{len(self.sentinel['events'])} sentinel event(s)]"
        return line
