"""Training history record."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["History"]


@dataclass
class History:
    """Per-epoch curves collected by the trainer."""

    train_loss: list = field(default_factory=list)
    train_reg: list = field(default_factory=list)
    val_rmse: list = field(default_factory=list)
    best_epoch: int = -1
    best_val_rmse: float = float("inf")
    stopped_early: bool = False

    @property
    def epochs_run(self):
        """Number of completed epochs."""
        return len(self.train_loss)

    def record(self, train_loss, train_reg, val_rmse, min_delta=0.0):
        """Append one epoch; returns True when this is a new best.

        ``min_delta`` is the minimum improvement that counts as a new
        best (standard early-stopping slack).
        """
        self.train_loss.append(train_loss)
        self.train_reg.append(train_reg)
        self.val_rmse.append(val_rmse)
        if val_rmse < self.best_val_rmse - min_delta:
            self.best_val_rmse = val_rmse
            self.best_epoch = len(self.val_rmse) - 1
            return True
        return False
