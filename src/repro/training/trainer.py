"""Generic trainer for MUSE-Net and the baselines.

Every model follows the same protocol:

- ``training_loss(batch, rng) -> (LossBreakdown, outputs)`` where
  ``outputs.prediction`` is the scaled flow prediction, and
- ``predict(batch) -> ndarray`` of scaled predictions.

The trainer mirrors the paper's setup — Adam, batch size 8 — with
early stopping on validation RMSE and restoration of the best weights.

Fault tolerance (see ``docs/robustness.md``): a per-step divergence
sentinel guards against NaN/Inf losses and gradients and grad-norm
spikes (``TrainConfig.sentinel``), periodic checkpoints go to
``TrainConfig.checkpoint_dir`` with rotation and best-pinning, SIGINT/
SIGTERM finish the current step and write a resumable final snapshot,
and ``fit(resume_from=...)`` / ``TrainConfig.resume`` continue a run
from the newest valid checkpoint.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.data.pipeline import ForecastData
from repro.data.windows import SampleBatch, iterate_batches
from repro.metrics import evaluate_flows, rmse
from repro.optim import Adam, clip_grad_norm
from repro.profiling import OpProfiler, profile
from repro.tensor import Tensor, default_dtype, detect_anomaly, no_grad
from repro.training.checkpoint import CheckpointManager, find_latest_checkpoint, \
    load_checkpoint
from repro.training.history import History
from repro.training.sentinel import POLICIES, DivergenceSentinel

__all__ = ["TrainConfig", "Trainer"]


def _cast_model(model, dtype):
    """Cast a module tree's floating state to ``dtype`` in place.

    Covers registered parameters, plain ndarray buffers (BatchNorm
    running statistics), constant tensors (graph adjacencies), and
    lists/tuples of constant tensors (Chebyshev operator stacks).
    """
    for module in model.modules():
        for attr, value in vars(module).items():
            if attr in ("_parameters", "_modules"):
                continue
            if isinstance(value, Tensor):
                if value.data.dtype.kind == "f" and value.data.dtype != dtype:
                    value.data = value.data.astype(dtype)
                    value.grad = None
            elif isinstance(value, np.ndarray):
                if value.dtype.kind == "f" and value.dtype != dtype:
                    setattr(module, attr, value.astype(dtype))
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if (isinstance(item, Tensor)
                            and item.data.dtype.kind == "f"
                            and item.data.dtype != dtype):
                        item.data = item.data.astype(dtype)
                        item.grad = None


@dataclass
class TrainConfig:
    """Trainer hyper-parameters (paper defaults where applicable)."""

    epochs: int = 20
    batch_size: int = 8
    lr: float = 2e-4  # the paper's Adam learning rate
    clip_norm: float = 5.0
    # Early stopping: stop after `patience` consecutive epochs without a
    # val-RMSE improvement of at least `min_delta`; None disables (use
    # patience >= 1).
    patience: int | None = None
    min_delta: float = 0.0
    seed: int = 0
    verbose: bool = False
    eval_batch_size: int = 64
    profile_ops: bool = False  # collect a per-op profile during fit()
    # Compute precision: "float32", "float64", or None to keep whatever
    # the model/data already use.  float32 halves the tape footprint
    # and speeds up the hot path (see docs/performance.md).
    dtype: str | None = None
    # Divergence sentinel: per-step non-finite/spike guard applied
    # before each optimizer step.  One of "raise", "skip_batch",
    # "rollback", or None/"off" to disable (docs/robustness.md).
    sentinel: str | None = "raise"
    sentinel_spike_factor: float = 1e3  # grad-norm spike threshold (x EMA)
    sentinel_warmup: int = 10           # healthy steps before spike arming
    rollback_lr_factor: float = 0.5     # lr multiplier per rollback
    max_rollbacks: int = 3              # rollback budget before raising
    # Pinpoint the op introducing a NaN/Inf by running the whole fit
    # under repro.tensor.detect_anomaly() (slow; debugging only).
    detect_anomaly: bool = False
    # Hard step budget for this fit: stop after this many steps
    # (applied or sentinel-dropped), even mid-epoch.  The warm-restart
    # path online adaptation uses (docs/streaming.md): a rolling
    # re-train must return in bounded time, not run `epochs` to the
    # end.  None (default) leaves the fit unbounded.
    max_steps: int | None = None
    # Periodic durable checkpoints: every `checkpoint_every` epochs into
    # `checkpoint_dir`, keeping the newest `keep_last` plus a pinned
    # best snapshot.  `resume=True` restarts fit() from the newest
    # valid checkpoint in `checkpoint_dir` (corrupt files skipped).
    checkpoint_dir: str | None = None
    checkpoint_every: int | None = None
    keep_last: int = 3
    resume: bool = False
    # Data-parallel training: number of forked worker processes.  0
    # (default) keeps the single-process path; >= 1 routes every epoch
    # through repro.parallel's shared-memory worker pool (deterministic
    # sharding, flat gradient allreduce, prefetching batch ring — see
    # docs/performance.md).
    workers: int = 0
    # Graph-compiled stepping (repro.compile): record each batch
    # signature's step once, then replay a fused in-place kernel
    # schedule over the retained graph.  Bit-identical to eager by
    # construction (build + shadow validation gates, atol 0); falls
    # back to eager per signature whenever equivalence can't be proven.
    # Incompatible with workers > 0 and ignored (eager per step) while
    # detect_anomaly is active.  See docs/performance.md.
    compile: bool = False

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0; got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {self.batch_size}")
        if self.eval_batch_size < 1:
            raise ValueError(
                f"eval_batch_size must be >= 1; got {self.eval_batch_size}")
        if self.sentinel in ("off", "none"):
            self.sentinel = None
        if self.sentinel is not None and self.sentinel not in POLICIES:
            raise ValueError(
                f"unknown sentinel policy {self.sentinel!r}; choose from "
                f"{POLICIES} or None")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1; got {self.max_steps}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1; got {self.checkpoint_every}")
        if self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1; got {self.keep_last}")
        if self.checkpoint_every is not None and self.checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError(
                "resume=True requires checkpoint_dir to discover the "
                "newest checkpoint in")


class Trainer:
    """Fit a forecasting model on prepared :class:`ForecastData`."""

    def __init__(self, model, config: TrainConfig = None, dtype=None,
                 compile=None):
        self.model = model
        self.config = config if config is not None else TrainConfig()
        if compile is not None:
            self.config.compile = bool(compile)
        if dtype is None:
            dtype = self.config.dtype
        self.dtype = None if dtype is None else np.dtype(dtype)
        if self.dtype is not None and self.dtype.kind != "f":
            raise ValueError(f"dtype must be floating; got {self.dtype}")
        if self.dtype is not None:
            _cast_model(model, self.dtype)
        # Build the optimizer *after* the cast so its state and scratch
        # buffers are allocated in the target dtype from step one.
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self._rng = np.random.default_rng(self.config.seed)
        self.history = None  # set by fit()
        self._interrupt_requested = False

    # ------------------------------------------------------------------
    # Rollback snapshots (in-memory, weights + optimizer slots)
    # ------------------------------------------------------------------
    def _take_snapshot(self):
        """Deep-copy the model weights and optimizer state."""
        return {
            "model": self.model.state_dict(),  # state_dict copies
            "opt_state": [
                {key: value.copy() if isinstance(value, np.ndarray) else value
                 for key, value in state.items()}
                for state in self.optimizer._state
            ],
            "step_count": self.optimizer._step_count,
        }

    def _restore_snapshot(self, snapshot):
        """Reinstall a :meth:`_take_snapshot` copy (keeps the current lr).

        Installs *copies* of the optimizer slot arrays so the in-place
        update kernels cannot mutate the snapshot itself — rolling back
        twice to the same snapshot must restore the same state.
        """
        self.model.load_state_dict(snapshot["model"])
        self.optimizer._state = [
            {key: value.copy() if isinstance(value, np.ndarray) else value
             for key, value in state.items()}
            for state in snapshot["opt_state"]
        ]
        self.optimizer._step_count = snapshot["step_count"]
        for param in self.optimizer.parameters:
            param.zero_grad()

    # ------------------------------------------------------------------
    # Graceful interruption
    # ------------------------------------------------------------------
    def _install_signal_handlers(self):
        """Trap SIGINT/SIGTERM (main thread only); returns the old handlers."""
        if threading.current_thread() is not threading.main_thread():
            return []

        def request_interrupt(signum, frame):
            if self._interrupt_requested:
                # Second signal: the user really means it.
                raise KeyboardInterrupt
            self._interrupt_requested = True

        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((signum, signal.signal(signum,
                                                        request_interrupt)))
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return installed

    # ------------------------------------------------------------------
    def fit(self, data: ForecastData, resume_from=None):
        """Train with early stopping; restores the best-val weights.

        Telemetry (per-epoch wall time, batches/sec) is always recorded
        on the returned :class:`History`; with
        ``TrainConfig.profile_ops`` the fit additionally runs under
        :func:`repro.profiling.profile` and attaches the per-op
        timing/tape snapshot as ``history.op_profile``.

        ``resume_from`` restores a checkpoint (path, or implicitly the
        newest valid archive in ``config.checkpoint_dir`` when
        ``config.resume`` is set) before training continues from the
        epoch after the snapshot.  On SIGINT/SIGTERM the current step
        finishes, a final checkpoint is written (when a checkpoint
        directory is configured), ``history.interrupted`` is set, and
        fit returns with the *current* (not best) weights so the
        in-memory model matches the resumable snapshot.
        """
        config = self.config
        history = History()
        start_epoch = 0
        if resume_from is None and config.resume:
            resume_from = find_latest_checkpoint(config.checkpoint_dir)
        if resume_from is not None:
            restored, ckpt_epoch = load_checkpoint(resume_from, self.model,
                                                   self.optimizer)
            if restored is not None:
                history = restored
                history.interrupted = False  # this attempt starts clean
                start_epoch = history.epochs_run
            elif ckpt_epoch is not None:
                start_epoch = ckpt_epoch + 1
        self.history = history
        best_state = None
        bad_epochs = 0
        profiler = OpProfiler() if config.profile_ops else None
        sentinel = None
        if config.sentinel is not None:
            sentinel = DivergenceSentinel(
                policy=config.sentinel,
                spike_factor=config.sentinel_spike_factor,
                warmup=config.sentinel_warmup,
                lr_backoff=config.rollback_lr_factor,
                max_rollbacks=config.max_rollbacks,
            )
        manager = None
        if config.checkpoint_dir is not None:
            manager = CheckpointManager(config.checkpoint_dir,
                                        keep_last=config.keep_last)
        parameters = self.optimizer.parameters
        global_step = self.optimizer._step_count
        snapshot = None
        engine = None
        compiler = None
        if config.compile:
            if config.workers:
                # Worker processes run their own step loops; the
                # retained-graph replay is a single-process construct.
                history.compiled = {
                    "enabled": False,
                    "reason": "workers > 0: steps execute in forked "
                              "worker processes"}
            else:
                from repro.compile import StepCompiler

                compiler = StepCompiler(self.model, self.optimizer,
                                        self._rng)
        self._interrupt_requested = False
        old_handlers = self._install_signal_handlers()

        try:
            with contextlib.ExitStack() as stack:
                if self.dtype is not None:
                    # Scope the precision policy to the fit: python scalars
                    # and fresh arrays created inside the loop follow the
                    # training dtype, and the splits are cast once up front.
                    stack.enter_context(default_dtype(self.dtype))
                    data = data.astype(self.dtype)
                if profiler is not None:
                    stack.enter_context(profile(profiler))
                if config.detect_anomaly:
                    stack.enter_context(detect_anomaly())
                if config.workers:
                    # Fork the pool *after* the dtype cast and any resume
                    # restore so the replicas inherit the final weights;
                    # the ExitStack drains the workers on every exit path.
                    from repro.parallel import ParallelEngine

                    engine = stack.enter_context(ParallelEngine(
                        self.model, self.optimizer, data.train,
                        config.batch_size, config.workers, seed=config.seed,
                        detect_anomaly=config.detect_anomaly))
                steps_this_fit = 0
                budget_exhausted = False
                for epoch in range(start_epoch, config.epochs):
                    self.model.train()
                    if sentinel is not None and sentinel.policy == "rollback":
                        snapshot = self._take_snapshot()
                    epoch_start = perf_counter()
                    num_batches = 0
                    epoch_losses = []
                    epoch_regs = []
                    mid_epoch_stop = False
                    if engine is None:
                        steps = self._serial_steps(data, config, profiler,
                                                   compiler)
                    else:
                        # Same rng draw as iterate_batches: one shuffle
                        # per epoch, so the global sample order matches
                        # the single-process path at any worker count.
                        order = np.arange(len(data.train))
                        self._rng.shuffle(order)
                        steps = engine.epoch_steps(order, epoch)
                    try:
                        for loss_value, reg_value in steps:
                            step_done = self._fit_step_tail(
                                loss_value, reg_value, sentinel, snapshot,
                                parameters, config, global_step, epoch,
                                epoch_losses, epoch_regs)
                            global_step += 1
                            steps_this_fit += 1
                            if step_done:
                                num_batches += 1
                            if (config.max_steps is not None
                                    and steps_this_fit >= config.max_steps):
                                budget_exhausted = True
                                mid_epoch_stop = True
                                break
                            if self._interrupt_requested:
                                mid_epoch_stop = True
                                break
                    finally:
                        # Breaking mid-epoch must stop the prefetch
                        # producer / serial generator deterministically.
                        steps.close()

                    if mid_epoch_stop:
                        # Don't record a partial epoch; the resumable
                        # state is "epochs_run epochs completed".
                        break
                    train_seconds = perf_counter() - epoch_start
                    val_rmse = self._validation_rmse(data)
                    epoch_seconds = perf_counter() - epoch_start
                    history.record_telemetry(
                        epoch_seconds, num_batches / max(train_seconds, 1e-9))
                    improved = history.record(
                        float(np.mean(epoch_losses)) if epoch_losses
                        else float("nan"),
                        float(np.mean(epoch_regs)) if epoch_regs
                        else float("nan"),
                        val_rmse,
                        min_delta=config.min_delta,
                    )
                    if improved:
                        best_state = self.model.state_dict()
                        bad_epochs = 0
                    else:
                        bad_epochs += 1
                    if config.verbose:
                        print(
                            f"epoch {epoch + 1}/{config.epochs} "
                            f"loss {history.train_loss[-1]:.4f} "
                            f"reg {history.train_reg[-1]:.4f} val-rmse {val_rmse:.4f} "
                            f"[{epoch_seconds:.2f}s, "
                            f"{history.batches_per_sec[-1]:.1f} batches/s]"
                        )
                    if (manager is not None and config.checkpoint_every
                            and (epoch + 1) % config.checkpoint_every == 0):
                        if sentinel is not None:
                            history.sentinel = sentinel.report()
                        manager.save(self.model, self.optimizer,
                                     history=history, epoch=epoch,
                                     is_best=history.best_epoch == epoch)
                    if config.patience is not None and bad_epochs >= config.patience:
                        history.stopped_early = True
                        break
                    if self._interrupt_requested:
                        break
        finally:
            for signum, old in old_handlers:
                signal.signal(signum, old)

        history.budget_exhausted = budget_exhausted
        if sentinel is not None:
            history.sentinel = sentinel.report()
        if engine is not None:
            history.parallel = engine.telemetry()
        if compiler is not None:
            history.compiled = compiler.report()
        if profiler is not None:
            history.op_profile = profiler.as_dict()
            history.peak_tape_bytes = profiler.peak_tape_bytes
        if self._interrupt_requested:
            history.interrupted = True
            if manager is not None:
                # Final resumable snapshot with the *current* weights.
                manager.save(self.model, self.optimizer, history=history,
                             tag="final")
        elif best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history

    def _serial_steps(self, data, config, profiler, compiler=None):
        """Single-process step source: yields ``(loss, reg)`` per batch.

        Each yield happens after ``backward()``, with the batch
        gradients deposited on the parameters — the same post-state the
        parallel engine presents after its allreduce, so the fit loop's
        sentinel/clip/step tail is shared between the two paths.  With
        ``compiler`` set, each step routes through
        :meth:`repro.compile.StepCompiler.step`, which preserves that
        exact post-state (bit-identical, validated) while replaying a
        compiled plan whenever one is trusted for the batch signature.
        """
        for batch in iterate_batches(data.train, config.batch_size,
                                     rng=self._rng):
            if compiler is not None:
                yield compiler.step(batch, profiler)
                continue
            self.optimizer.zero_grad()
            if profiler is not None:
                profiler.mark()  # don't attribute batch prep to op 1
            breakdown, _outputs = self.model.training_loss(
                batch, rng=self._rng)
            breakdown.total.backward()
            yield breakdown.total.item(), breakdown.reg.item()

    def _fit_step_tail(self, loss_value, reg_value, sentinel, snapshot,
                       parameters, config, global_step, epoch,
                       epoch_losses, epoch_regs):
        """Sentinel → clip → optimizer step, once gradients are in place.

        Returns ``True`` when the update was applied (and the losses
        recorded), ``False`` when the sentinel dropped the batch.
        """
        if sentinel is not None:
            event = sentinel.check(loss_value, parameters, global_step,
                                   epoch)
            if event is not None:
                self._handle_divergence(sentinel, event, snapshot)
                return False
        if config.clip_norm:
            # Reuse the sentinel's norm (bit-identical ordered vdot
            # sum) instead of recomputing.
            clip_grad_norm(parameters, config.clip_norm,
                           norm=None if sentinel is None
                           else sentinel.last_norm)
        self.optimizer.step()
        epoch_losses.append(loss_value)
        epoch_regs.append(reg_value)
        return True

    def _handle_divergence(self, sentinel, event, snapshot):
        """Apply the sentinel's policy to a flagged step."""
        if sentinel.policy == "raise":
            sentinel.raise_(event)
        if sentinel.policy == "rollback":
            sentinel.note_rollback()  # raises past the budget
            if snapshot is not None:
                self._restore_snapshot(snapshot)
            self.optimizer.lr *= sentinel.lr_backoff
            # Restored weights + backed-off lr shift the grad-norm
            # distribution; the old EMA baseline no longer applies.
            sentinel.rearm()
        if self.config.verbose:
            print(f"sentinel[{sentinel.policy}] step {event.step}: "
                  f"{event.kind} — {event.detail}")

    # ------------------------------------------------------------------
    def predict_scaled(self, batch: SampleBatch):
        """Model predictions in scaled ([-1, 1]) space, chunked.

        The whole chunk loop runs under :func:`~repro.tensor.no_grad`:
        models whose ``predict`` doesn't guard itself (some baselines)
        would otherwise record — and leak — an autodiff tape for every
        evaluation batch.  Chunks are contiguous zero-copy views
        (:meth:`SampleBatch.slice`), not fancy-index copies.
        """
        self.model.eval()
        if self.dtype is not None and batch.target.dtype != self.dtype:
            batch = batch.astype(self.dtype)
        if len(batch) == 0:
            # np.concatenate rejects an empty piece list; predictions
            # share the target's per-sample shape, so the empty answer
            # is well-defined without calling the model.
            return np.empty((0,) + batch.target.shape[1:],
                            dtype=batch.target.dtype)
        pieces = []
        size = self.config.eval_batch_size
        with no_grad():
            for start in range(0, len(batch), size):
                pieces.append(self.model.predict(batch.slice(start, start + size)))
        return np.concatenate(pieces, axis=0)

    def predict_flows(self, data: ForecastData, batch: SampleBatch):
        """Predictions mapped back to flow units."""
        return data.inverse(self.predict_scaled(batch))

    def _validation_rmse(self, data: ForecastData):
        prediction = self.predict_flows(data, data.val)
        truth = data.inverse(data.val.target)
        return rmse(prediction, truth)

    def evaluate(self, data: ForecastData, batch: SampleBatch = None, sample_mask=None):
        """Full :class:`~repro.metrics.EvalReport` on a split (default test)."""
        batch = batch if batch is not None else data.test
        prediction = self.predict_flows(data, batch)
        truth = data.inverse(batch.target)
        return evaluate_flows(prediction, truth, sample_mask=sample_mask)
