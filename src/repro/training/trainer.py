"""Generic trainer for MUSE-Net and the baselines.

Every model follows the same protocol:

- ``training_loss(batch, rng) -> (LossBreakdown, outputs)`` where
  ``outputs.prediction`` is the scaled flow prediction, and
- ``predict(batch) -> ndarray`` of scaled predictions.

The trainer mirrors the paper's setup — Adam, batch size 8 — with
early stopping on validation RMSE and restoration of the best weights.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.data.pipeline import ForecastData
from repro.data.windows import SampleBatch, iterate_batches
from repro.metrics import evaluate_flows, rmse
from repro.optim import Adam, clip_grad_norm
from repro.profiling import OpProfiler, profile
from repro.tensor import Tensor, default_dtype
from repro.training.history import History

__all__ = ["TrainConfig", "Trainer"]


def _cast_model(model, dtype):
    """Cast a module tree's floating state to ``dtype`` in place.

    Covers registered parameters, plain ndarray buffers (BatchNorm
    running statistics), constant tensors (graph adjacencies), and
    lists/tuples of constant tensors (Chebyshev operator stacks).
    """
    for module in model.modules():
        for attr, value in vars(module).items():
            if attr in ("_parameters", "_modules"):
                continue
            if isinstance(value, Tensor):
                if value.data.dtype.kind == "f" and value.data.dtype != dtype:
                    value.data = value.data.astype(dtype)
                    value.grad = None
            elif isinstance(value, np.ndarray):
                if value.dtype.kind == "f" and value.dtype != dtype:
                    setattr(module, attr, value.astype(dtype))
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if (isinstance(item, Tensor)
                            and item.data.dtype.kind == "f"
                            and item.data.dtype != dtype):
                        item.data = item.data.astype(dtype)
                        item.grad = None


@dataclass
class TrainConfig:
    """Trainer hyper-parameters (paper defaults where applicable)."""

    epochs: int = 20
    batch_size: int = 8
    lr: float = 2e-4  # the paper's Adam learning rate
    clip_norm: float = 5.0
    # Early stopping: stop after `patience` consecutive epochs without a
    # val-RMSE improvement of at least `min_delta`; None disables (use
    # patience >= 1).
    patience: int | None = None
    min_delta: float = 0.0
    seed: int = 0
    verbose: bool = False
    eval_batch_size: int = 64
    profile_ops: bool = False  # collect a per-op profile during fit()
    # Compute precision: "float32", "float64", or None to keep whatever
    # the model/data already use.  float32 halves the tape footprint
    # and speeds up the hot path (see docs/performance.md).
    dtype: str | None = None


class Trainer:
    """Fit a forecasting model on prepared :class:`ForecastData`."""

    def __init__(self, model, config: TrainConfig = None, dtype=None):
        self.model = model
        self.config = config if config is not None else TrainConfig()
        if dtype is None:
            dtype = self.config.dtype
        self.dtype = None if dtype is None else np.dtype(dtype)
        if self.dtype is not None and self.dtype.kind != "f":
            raise ValueError(f"dtype must be floating; got {self.dtype}")
        if self.dtype is not None:
            _cast_model(model, self.dtype)
        # Build the optimizer *after* the cast so its state and scratch
        # buffers are allocated in the target dtype from step one.
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self._rng = np.random.default_rng(self.config.seed)
        self.history = None  # set by fit()

    # ------------------------------------------------------------------
    def fit(self, data: ForecastData):
        """Train with early stopping; restores the best-val weights.

        Telemetry (per-epoch wall time, batches/sec) is always recorded
        on the returned :class:`History`; with
        ``TrainConfig.profile_ops`` the fit additionally runs under
        :func:`repro.profiling.profile` and attaches the per-op
        timing/tape snapshot as ``history.op_profile``.
        """
        config = self.config
        history = History()
        self.history = history
        best_state = None
        bad_epochs = 0
        profiler = OpProfiler() if config.profile_ops else None

        with contextlib.ExitStack() as stack:
            if self.dtype is not None:
                # Scope the precision policy to the fit: python scalars
                # and fresh arrays created inside the loop follow the
                # training dtype, and the splits are cast once up front.
                stack.enter_context(default_dtype(self.dtype))
                data = data.astype(self.dtype)
            if profiler is not None:
                stack.enter_context(profile(profiler))
            for epoch in range(config.epochs):
                self.model.train()
                epoch_start = perf_counter()
                num_batches = 0
                epoch_losses = []
                epoch_regs = []
                for batch in iterate_batches(data.train, config.batch_size,
                                             rng=self._rng):
                    self.optimizer.zero_grad()
                    if profiler is not None:
                        profiler.mark()  # don't attribute batch prep to op 1
                    breakdown, _outputs = self.model.training_loss(batch, rng=self._rng)
                    breakdown.total.backward()
                    if config.clip_norm:
                        clip_grad_norm(self.model.parameters(), config.clip_norm)
                    self.optimizer.step()
                    epoch_losses.append(breakdown.total.item())
                    epoch_regs.append(breakdown.reg.item())
                    num_batches += 1

                train_seconds = perf_counter() - epoch_start
                val_rmse = self._validation_rmse(data)
                epoch_seconds = perf_counter() - epoch_start
                history.record_telemetry(
                    epoch_seconds, num_batches / max(train_seconds, 1e-9))
                improved = history.record(
                    float(np.mean(epoch_losses)), float(np.mean(epoch_regs)), val_rmse,
                    min_delta=config.min_delta,
                )
                if improved:
                    best_state = self.model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                if config.verbose:
                    print(
                        f"epoch {epoch + 1}/{config.epochs} "
                        f"loss {history.train_loss[-1]:.4f} "
                        f"reg {history.train_reg[-1]:.4f} val-rmse {val_rmse:.4f} "
                        f"[{epoch_seconds:.2f}s, "
                        f"{history.batches_per_sec[-1]:.1f} batches/s]"
                    )
                if config.patience is not None and bad_epochs >= config.patience:
                    history.stopped_early = True
                    break

        if profiler is not None:
            history.op_profile = profiler.as_dict()
            history.peak_tape_bytes = profiler.peak_tape_bytes
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history

    # ------------------------------------------------------------------
    def predict_scaled(self, batch: SampleBatch):
        """Model predictions in scaled ([-1, 1]) space, chunked."""
        self.model.eval()
        if self.dtype is not None and batch.target.dtype != self.dtype:
            batch = batch.astype(self.dtype)
        pieces = []
        size = self.config.eval_batch_size
        for start in range(0, len(batch), size):
            pieces.append(self.model.predict(batch.take(range(start, min(start + size, len(batch))))))
        return np.concatenate(pieces, axis=0)

    def predict_flows(self, data: ForecastData, batch: SampleBatch):
        """Predictions mapped back to flow units."""
        return data.inverse(self.predict_scaled(batch))

    def _validation_rmse(self, data: ForecastData):
        prediction = self.predict_flows(data, data.val)
        truth = data.inverse(data.val.target)
        return rmse(prediction, truth)

    def evaluate(self, data: ForecastData, batch: SampleBatch = None, sample_mask=None):
        """Full :class:`~repro.metrics.EvalReport` on a split (default test)."""
        batch = batch if batch is not None else data.test
        prediction = self.predict_flows(data, batch)
        truth = data.inverse(batch.target)
        return evaluate_flows(prediction, truth, sample_mask=sample_mask)
