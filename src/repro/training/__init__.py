"""Training harness: trainer, history, checkpoints, fault tolerance."""

from repro.training.history import History
from repro.training.trainer import TrainConfig, Trainer
from repro.training.uncertainty import (
    ConformalForecaster,
    ensemble_predict,
    interval_coverage,
)
from repro.training.checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    find_latest_checkpoint,
    load_checkpoint,
    read_weights,
    save_checkpoint,
    verify_checkpoint,
)
from repro.training.sentinel import DivergenceError, DivergenceSentinel, SentinelEvent
from repro.training.rollout import direct_vs_recursive_rmse, recursive_forecast

__all__ = [
    "History", "TrainConfig", "Trainer",
    "ConformalForecaster", "ensemble_predict", "interval_coverage",
    "save_checkpoint", "load_checkpoint", "read_weights", "verify_checkpoint",
    "CheckpointCorruptError", "CheckpointManager", "find_latest_checkpoint",
    "DivergenceError", "DivergenceSentinel", "SentinelEvent",
    "recursive_forecast", "direct_vs_recursive_rmse",
]
