"""Training harness: trainer, history, seeding."""

from repro.training.history import History
from repro.training.trainer import TrainConfig, Trainer
from repro.training.uncertainty import (
    ConformalForecaster,
    ensemble_predict,
    interval_coverage,
)
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.rollout import direct_vs_recursive_rmse, recursive_forecast

__all__ = [
    "History", "TrainConfig", "Trainer",
    "ConformalForecaster", "ensemble_predict", "interval_coverage",
    "save_checkpoint", "load_checkpoint",
    "recursive_forecast", "direct_vs_recursive_rmse",
]
