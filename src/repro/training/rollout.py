"""Recursive multi-step forecasting.

The paper's Table III uses *direct* multi-step forecasting (one model
per horizon, each with horizon-aligned period/trend lags).  The
standard alternative is *recursive* rollout: predict one step, append
the prediction to the closeness window, predict again.  This module
implements the rollout so the two strategies can be compared — error
compounds recursively but one model serves all horizons.
"""

from __future__ import annotations

import numpy as np

from repro.data.windows import SampleBatch

__all__ = ["recursive_forecast", "direct_vs_recursive_rmse"]


def recursive_forecast(model, batch: SampleBatch, horizons):
    """Roll a one-step model forward ``horizons`` steps.

    Parameters
    ----------
    model:
        Any forecaster with ``predict(batch) -> (N, 2, H, W)`` trained
        for one-step prediction in scaled space.
    batch:
        One-step samples whose targets anchor horizon 1.
    horizons:
        Number of steps to roll out (>= 1).

    Returns
    -------
    ndarray of shape ``(horizons, N, 2, H, W)`` — the prediction for
    each horizon.  Period and trend windows are held fixed (their lags
    are days/weeks, far beyond a few-step rollout); the closeness
    window is shifted and fed the model's own predictions.
    """
    if horizons < 1:
        raise ValueError("horizons must be >= 1")
    # asarray().copy() preserves the batch dtype; np.array would be
    # flagged by the dtype-policy lint (and rightly so for list input).
    closeness = np.asarray(batch.closeness).copy()
    outputs = []
    current = SampleBatch(
        closeness=closeness,
        period=batch.period,
        trend=batch.trend,
        target=batch.target,
        indices=batch.indices,
    )
    for _step in range(horizons):
        prediction = model.predict(current)
        outputs.append(prediction)
        # Shift the closeness window: drop the oldest frame, append the
        # prediction as the newest observation.
        closeness = np.concatenate(
            [closeness[:, 1:], prediction[:, None]], axis=1
        )
        current = SampleBatch(
            closeness=closeness,
            period=current.period,
            trend=current.trend,
            target=current.target,
            indices=current.indices + 1,
        )
    return np.stack(outputs)


def direct_vs_recursive_rmse(recursive_predictions, direct_predictions, truths):
    """Per-horizon RMSE table for the two strategies.

    All inputs are ``(horizons, N, 2, H, W)`` arrays (same scale).
    Returns a list of ``(horizon, recursive_rmse, direct_rmse)`` rows.
    """
    recursive_predictions = np.asarray(recursive_predictions)
    direct_predictions = np.asarray(direct_predictions)
    truths = np.asarray(truths)
    if not (recursive_predictions.shape == direct_predictions.shape == truths.shape):
        raise ValueError("all inputs must share the (horizons, N, 2, H, W) shape")
    rows = []
    for h in range(len(truths)):
        rec = float(np.sqrt(np.mean((recursive_predictions[h] - truths[h]) ** 2)))
        dir_ = float(np.sqrt(np.mean((direct_predictions[h] - truths[h]) ** 2)))
        rows.append((h + 1, rec, dir_))
    return rows
