"""Predictive uncertainty for flow forecasts.

The paper's related work points at uncertainty quantification for
traffic forecasting (Qian et al., ICDE 2023); this module adds two
standard, model-agnostic tools on top of any trained forecaster:

- **Split conformal intervals** — calibrate a residual quantile on the
  validation split; intervals carry a finite-sample marginal coverage
  guarantee under exchangeability.
- **Seed ensembles** — train the same architecture from several seeds
  and use the spread as an epistemic-uncertainty signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConformalForecaster", "ensemble_predict", "interval_coverage"]


@dataclass
class _Intervals:
    """Prediction intervals in flow units."""

    prediction: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    alpha: float


class ConformalForecaster:
    """Split conformal prediction around a fitted trainer.

    Parameters
    ----------
    trainer:
        A fitted :class:`~repro.training.Trainer`.
    data:
        The :class:`~repro.data.pipeline.ForecastData` it was fit on;
        the validation split provides the calibration residuals.
    """

    def __init__(self, trainer, data):
        self.trainer = trainer
        self.data = data
        prediction = trainer.predict_flows(data, data.val)
        truth = data.inverse(data.val.target)
        # One absolute-residual score per calibration sample (max over
        # cells would give joint coverage; per-cell pooling gives the
        # standard marginal guarantee per cell).
        self._scores = np.abs(prediction - truth).reshape(-1)
        if len(self._scores) == 0:
            raise ValueError("validation split is empty; cannot calibrate")

    def quantile(self, alpha):
        """The calibrated residual quantile for miscoverage ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1); got {alpha}")
        n = len(self._scores)
        # Finite-sample-corrected conformal quantile.
        level = min(1.0, np.ceil((n + 1) * (1.0 - alpha)) / n)
        return float(np.quantile(self._scores, level))

    def predict_intervals(self, batch, alpha=0.1):
        """Point predictions plus symmetric conformal intervals."""
        prediction = self.trainer.predict_flows(self.data, batch)
        margin = self.quantile(alpha)
        return _Intervals(
            prediction=prediction,
            lower=prediction - margin,
            upper=prediction + margin,
            alpha=alpha,
        )


def interval_coverage(intervals, truth):
    """Empirical fraction of cells whose truth falls in the interval."""
    truth = np.asarray(truth)
    inside = (truth >= intervals.lower) & (truth <= intervals.upper)
    return float(inside.mean())


def ensemble_predict(models, batch):
    """Mean and std of scaled predictions across an ensemble.

    ``models`` is any iterable of fitted forecasters implementing
    ``predict(batch)``; returns ``(mean, std)`` arrays.
    """
    predictions = np.stack([model.predict(batch) for model in models])
    if len(predictions) < 2:
        raise ValueError("an ensemble needs at least two models")
    return predictions.mean(axis=0), predictions.std(axis=0)
