"""Training checkpoints: model + optimizer + progress in one file.

Long paper-profile runs should survive interruption; a checkpoint
bundles the model weights, the optimizer's slot variables (Adam
moments etc.), the step count, and the training history into one
``.npz`` archive.
"""

from __future__ import annotations

import numpy as np

from repro.training.history import History

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(path, model, optimizer, history=None, epoch=None):
    """Write a resumable training snapshot.

    Parameters
    ----------
    model, optimizer:
        The :class:`~repro.nn.Module` and
        :class:`~repro.optim.Optimizer` to snapshot.  The optimizer
        must be tracking exactly the model's parameters (the usual
        setup).
    history:
        Optional :class:`~repro.training.History` to carry along.
    epoch:
        Optional epoch counter stored for bookkeeping.
    """
    parameters = model.parameters()
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "lr": np.array(optimizer.lr),
        "step_count": np.array(optimizer._step_count),
        "epoch": np.array(-1 if epoch is None else epoch),
        # Lets load_checkpoint detect archives that don't cover the
        # target optimizer's parameter list.
        "opt/num_states": np.array(len(optimizer._state)),
    }
    if parameters:
        # Records the training precision so a resume restores the same
        # compute dtype (the weight arrays themselves carry it, but the
        # explicit entry survives any future re-encoding of them).
        payload["model_dtype"] = np.array(str(parameters[0].data.dtype))
    for name, value in model.state_dict().items():
        payload[f"model/{name}"] = value
    for index, state in enumerate(optimizer._state):
        for key, value in state.items():
            payload[f"opt/{index}/{key}"] = np.asarray(value)
    if history is not None:
        payload["history/train_loss"] = np.array(history.train_loss)
        payload["history/train_reg"] = np.array(history.train_reg)
        payload["history/val_rmse"] = np.array(history.val_rmse)
        payload["history/best"] = np.array([history.best_epoch, history.best_val_rmse])
        payload["history/stopped_early"] = np.array(history.stopped_early)
        payload["history/epoch_time"] = np.array(history.epoch_time)
        payload["history/batches_per_sec"] = np.array(history.batches_per_sec)
    np.savez_compressed(path, **payload)


def load_checkpoint(path, model, optimizer):
    """Restore a snapshot in place; returns ``(history, epoch)``.

    ``history`` is ``None`` when the checkpoint carried none.
    """
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        if "model_dtype" in archive.files:
            # Restore the checkpointed compute precision: in-place
            # loading (`param.data[...] = value`) keeps the *current*
            # dtype, so recast any drifted parameter first.  Archives
            # from before this entry existed just skip the cast.
            saved_dtype = np.dtype(str(archive["model_dtype"]))
            for param in model.parameters():
                if (param.data.dtype.kind == "f"
                        and param.data.dtype != saved_dtype):
                    param.data = param.data.astype(saved_dtype)
                    param.grad = None
        model.load_state_dict({
            key[len("model/"):]: archive[key]
            for key in archive.files if key.startswith("model/")
        })
        optimizer.lr = float(archive["lr"])
        step_count = int(archive["step_count"])

        # Guard against archives that don't cover this optimizer's
        # parameter list: blindly installing empty per-parameter dicts
        # would silently reset Adam moments and corrupt the resume.
        saved_indices = {
            int(key.split("/", 2)[1])
            for key in archive.files
            if key.startswith("opt/") and key.count("/") >= 2
        }
        num_states = len(optimizer._state)
        if "opt/num_states" in archive.files:
            saved_states = int(archive["opt/num_states"])
            if saved_states != num_states:
                raise ValueError(
                    f"checkpoint stores optimizer state for {saved_states} "
                    f"parameter(s) but the optimizer tracks {num_states}; "
                    "rebuild the optimizer to match the checkpointed model"
                )
        elif step_count > 0 and not saved_indices:
            # Legacy archive (no opt/num_states): a stepped optimizer
            # must have saved slot variables for at least one parameter.
            raise ValueError(
                "checkpoint has step_count > 0 but no optimizer state "
                "entries; refusing to resume with reset moments"
            )
        if saved_indices and max(saved_indices) >= num_states:
            raise ValueError(
                f"checkpoint stores optimizer state for parameter index "
                f"{max(saved_indices)} but the optimizer tracks only "
                f"{num_states} parameter(s)"
            )
        optimizer._step_count = step_count
        for index in range(num_states):
            prefix = f"opt/{index}/"
            state = {}
            for key in archive.files:
                if key.startswith(prefix):
                    value = archive[key]
                    state[key[len(prefix):]] = (
                        int(value) if value.ndim == 0 and value.dtype.kind == "i"
                        else value.copy()
                    )
            optimizer._state[index] = state

        history = None
        if "history/train_loss" in archive.files:
            history = History(
                train_loss=list(archive["history/train_loss"]),
                train_reg=list(archive["history/train_reg"]),
                val_rmse=list(archive["history/val_rmse"]),
            )
            best_epoch, best_rmse = archive["history/best"]
            history.best_epoch = int(best_epoch)
            history.best_val_rmse = float(best_rmse)
            if "history/stopped_early" in archive.files:
                history.stopped_early = bool(archive["history/stopped_early"])
            if "history/epoch_time" in archive.files:
                history.epoch_time = [float(v) for v in archive["history/epoch_time"]]
            if "history/batches_per_sec" in archive.files:
                history.batches_per_sec = [
                    float(v) for v in archive["history/batches_per_sec"]
                ]
        epoch = int(archive["epoch"])
        return history, (None if epoch < 0 else epoch)
