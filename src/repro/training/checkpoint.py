"""Training checkpoints: model + optimizer + progress in one file.

Long paper-profile runs should survive interruption; a checkpoint
bundles the model weights, the optimizer's slot variables (Adam
moments etc.), the step count, and the training history into one
``.npz`` archive.
"""

from __future__ import annotations

import numpy as np

from repro.training.history import History

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(path, model, optimizer, history=None, epoch=None):
    """Write a resumable training snapshot.

    Parameters
    ----------
    model, optimizer:
        The :class:`~repro.nn.Module` and
        :class:`~repro.optim.Optimizer` to snapshot.  The optimizer
        must be tracking exactly the model's parameters (the usual
        setup).
    history:
        Optional :class:`~repro.training.History` to carry along.
    epoch:
        Optional epoch counter stored for bookkeeping.
    """
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "lr": np.array(optimizer.lr),
        "step_count": np.array(optimizer._step_count),
        "epoch": np.array(-1 if epoch is None else epoch),
    }
    for name, value in model.state_dict().items():
        payload[f"model/{name}"] = value
    for index, state in enumerate(optimizer._state):
        for key, value in state.items():
            payload[f"opt/{index}/{key}"] = np.asarray(value)
    if history is not None:
        payload["history/train_loss"] = np.array(history.train_loss)
        payload["history/train_reg"] = np.array(history.train_reg)
        payload["history/val_rmse"] = np.array(history.val_rmse)
        payload["history/best"] = np.array([history.best_epoch, history.best_val_rmse])
    np.savez_compressed(path, **payload)


def load_checkpoint(path, model, optimizer):
    """Restore a snapshot in place; returns ``(history, epoch)``.

    ``history`` is ``None`` when the checkpoint carried none.
    """
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        model.load_state_dict({
            key[len("model/"):]: archive[key]
            for key in archive.files if key.startswith("model/")
        })
        optimizer.lr = float(archive["lr"])
        optimizer._step_count = int(archive["step_count"])
        for index in range(len(optimizer._state)):
            prefix = f"opt/{index}/"
            state = {}
            for key in archive.files:
                if key.startswith(prefix):
                    value = archive[key]
                    state[key[len(prefix):]] = (
                        int(value) if value.ndim == 0 and value.dtype.kind == "i"
                        else value.copy()
                    )
            optimizer._state[index] = state

        history = None
        if "history/train_loss" in archive.files:
            history = History(
                train_loss=list(archive["history/train_loss"]),
                train_reg=list(archive["history/train_reg"]),
                val_rmse=list(archive["history/val_rmse"]),
            )
            best_epoch, best_rmse = archive["history/best"]
            history.best_epoch = int(best_epoch)
            history.best_val_rmse = float(best_rmse)
        epoch = int(archive["epoch"])
        return history, (None if epoch < 0 else epoch)
