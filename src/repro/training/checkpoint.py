"""Durable training checkpoints: model + optimizer + progress in one file.

Long paper-profile runs must survive interruption *and* the failure
modes interruption creates, so checkpoints here make three guarantees:

- **Atomicity** — :func:`save_checkpoint` writes to a temp file in the
  target directory, fsyncs it, and publishes with ``os.replace``.  A
  crash at any instant leaves either the previous archive or the new
  one, never a half-written file.
- **Integrity** — every archive embeds a SHA-256 digest of its payload
  arrays.  :func:`load_checkpoint` recomputes and compares it, so a
  truncated or bit-flipped file is rejected with a clear
  :class:`CheckpointCorruptError` instead of silently restoring garbage
  weights.
- **Discoverability** — :func:`find_latest_checkpoint` returns the
  newest archive in a directory that actually passes verification,
  falling back past corrupt ones, which is what ``repro train
  --resume`` uses.  :class:`CheckpointManager` layers rotation
  (``keep_last``) and best-checkpoint retention on top for periodic
  in-training snapshots.

Paths are normalised on both sides: ``save_checkpoint("ckpt")`` and
``load_checkpoint("ckpt")`` both refer to ``ckpt.npz`` (numpy's savez
appends the suffix; historically the loader did not, so a round trip
through a suffix-less path failed).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

from repro.training.history import History

__all__ = [
    "CheckpointCorruptError",
    "CheckpointManager",
    "find_latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
]

# Version 2: embedded SHA-256 payload checksum + history robustness
# fields (interrupted flag, sentinel report).
_FORMAT_VERSION = 2
_CHECKSUM_KEY = "checksum_sha256"


class CheckpointCorruptError(ValueError):
    """A checkpoint file failed structural or checksum verification.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    callers keep treating a bad archive as a bad value.
    """


def _normalize_path(path):
    """Give ``path`` the ``.npz`` suffix ``np.savez`` will add anyway."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def _payload_digest(payload):
    """SHA-256 over the payload arrays, independent of zip encoding.

    Hashes ``(key, dtype, shape, raw bytes)`` in sorted key order so
    the digest survives re-compression but changes when any array —
    or the key set — changes.  The checksum entry itself is excluded.
    """
    digest = hashlib.sha256()
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        value = np.ascontiguousarray(payload[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _build_payload(model, optimizer, history=None, epoch=None):
    """Assemble the flat ``{key: ndarray}`` archive contents."""
    parameters = model.parameters()
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "lr": np.array(optimizer.lr),
        "step_count": np.array(optimizer._step_count),
        "epoch": np.array(-1 if epoch is None else epoch),
        # Lets load_checkpoint detect archives that don't cover the
        # target optimizer's parameter list.
        "opt/num_states": np.array(len(optimizer._state)),
    }
    if parameters:
        # Records the training precision so a resume restores the same
        # compute dtype (the weight arrays themselves carry it, but the
        # explicit entry survives any future re-encoding of them).
        payload["model_dtype"] = np.array(str(parameters[0].data.dtype))
    for name, value in model.state_dict().items():
        payload[f"model/{name}"] = value
    for index, state in enumerate(optimizer._state):
        for key, value in state.items():
            payload[f"opt/{index}/{key}"] = np.asarray(value)
    if history is not None:
        payload["history/train_loss"] = np.array(history.train_loss)
        payload["history/train_reg"] = np.array(history.train_reg)
        payload["history/val_rmse"] = np.array(history.val_rmse)
        payload["history/best"] = np.array([history.best_epoch, history.best_val_rmse])
        payload["history/stopped_early"] = np.array(history.stopped_early)
        payload["history/interrupted"] = np.array(history.interrupted)
        payload["history/epoch_time"] = np.array(history.epoch_time)
        payload["history/batches_per_sec"] = np.array(history.batches_per_sec)
        if history.sentinel is not None:
            payload["history/sentinel_json"] = np.array(
                json.dumps(history.sentinel))
    return payload


def save_checkpoint(path, model, optimizer, history=None, epoch=None):
    """Atomically write a checksummed resumable snapshot; returns its path.

    Parameters
    ----------
    model, optimizer:
        The :class:`~repro.nn.Module` and
        :class:`~repro.optim.Optimizer` to snapshot.  The optimizer
        must be tracking exactly the model's parameters (the usual
        setup).
    history:
        Optional :class:`~repro.training.History` to carry along.
    epoch:
        Optional epoch counter stored for bookkeeping.

    The archive lands at ``path`` (with ``.npz`` appended if missing)
    via write-temp / fsync / ``os.replace``, so a crash mid-save never
    destroys an existing checkpoint at the same path.
    """
    path = _normalize_path(path)
    payload = _build_payload(model, optimizer, history=history, epoch=epoch)
    payload[_CHECKSUM_KEY] = np.array(_payload_digest(payload))

    directory = os.path.dirname(path) or "."
    # Temp file in the *target* directory so os.replace stays a same-
    # filesystem atomic rename; the ".tmp" suffix keeps half-written
    # files invisible to find_latest_checkpoint's "*.npz" scan.
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as stream:
            # Uncompressed on purpose: float weights are near-
            # incompressible (~8% on MUSE-Net) while zlib costs ~25x
            # the write time, which matters for in-training cadence.
            np.savez(stream, **payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Best-effort directory fsync so the rename itself is durable.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        pass
    else:
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return path


def _read_verified(path):
    """Load + checksum-verify an archive; returns the payload dict.

    Raises :class:`FileNotFoundError` when the file is missing and
    :class:`CheckpointCorruptError` when it exists but cannot be read
    back bit-exact (truncation, bit flips, missing checksum).
    """
    path = _normalize_path(path)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"checkpoint not found: {path!r} (save_checkpoint writes "
            "'.npz' archives; pass the same path used to save)"
        )
    try:
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, zlib.error, ValueError, OSError,
            EOFError, KeyError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is unreadable (truncated or corrupt "
            f"archive): {exc}"
        ) from exc
    if _CHECKSUM_KEY not in payload:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} carries no payload checksum (truncated "
            "write or pre-integrity format); re-save or discard it"
        )
    stored = str(payload[_CHECKSUM_KEY])
    actual = _payload_digest(payload)
    if stored != actual:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} failed checksum verification "
            f"(stored {stored[:12]}…, computed {actual[:12]}…); the file "
            "was corrupted on disk — fall back to an older checkpoint"
        )
    return payload


def verify_checkpoint(path):
    """Structurally verify an archive without touching any model.

    Returns ``{"path", "epoch", "format_version"}`` on success; raises
    :class:`CheckpointCorruptError` / :class:`FileNotFoundError` like
    :func:`load_checkpoint` otherwise.
    """
    payload = _read_verified(path)
    epoch = int(payload["epoch"]) if "epoch" in payload else -1
    return {
        "path": _normalize_path(path),
        "epoch": None if epoch < 0 else epoch,
        "format_version": int(payload["format_version"]),
    }


def read_weights(path):
    """Verified model weights from an archive, as ``{name: ndarray}``.

    The serving hot-swap path (:mod:`repro.serve`) uses this to obtain
    the state dict *without* touching any model, then installs it with
    one in-place write into its (possibly shared) parameter buffers.
    Raises the same corruption/version errors as :func:`load_checkpoint`.
    """
    archive = _read_verified(path)
    version = int(archive["format_version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    weights = {
        key[len("model/"):]: archive[key]
        for key in archive if key.startswith("model/")
    }
    if not weights:
        raise ValueError(
            f"checkpoint {_normalize_path(path)!r} carries no model weights")
    return weights


def find_latest_checkpoint(directory):
    """Newest *valid* checkpoint in ``directory``, or ``None``.

    Candidates are ``*.npz`` files ordered newest-first by mtime (file
    name as a tiebreak, so ``ckpt-epoch000009`` beats ``...008`` within
    the same clock tick).  Corrupt or unreadable archives are skipped —
    this is the ``--resume`` fallback path past a file damaged by the
    very crash being resumed from.
    """
    if not os.path.isdir(directory):
        return None
    candidates = []
    for name in os.listdir(directory):
        if not name.endswith(".npz"):
            continue
        full = os.path.join(directory, name)
        try:
            mtime = os.stat(full).st_mtime_ns
        except OSError:
            continue
        candidates.append((mtime, name, full))
    for _mtime, _name, full in sorted(candidates, reverse=True):
        try:
            verify_checkpoint(full)
        except (CheckpointCorruptError, FileNotFoundError, ValueError):
            continue
        return full
    return None


def load_checkpoint(path, model, optimizer=None):
    """Restore a verified snapshot in place; returns ``(history, epoch)``.

    ``history`` is ``None`` when the checkpoint carried none.  Raises
    :class:`CheckpointCorruptError` when the archive fails checksum or
    structural verification, and :class:`ValueError` when it is intact
    but does not match the given model/optimizer.

    ``optimizer=None`` performs an **inference-only load**: the archive
    needs no optimizer state (serving checkpoints may legitimately carry
    none), nothing optimizer-related is restored, and the weights are
    written *into the model's existing parameter buffers* — never
    rebound to fresh arrays.  That last property is what lets a serving
    replica pool (:mod:`repro.serve`) hot-swap a checkpoint with one
    write into its shared flat parameter block: every forked replica
    aliases the same mapping, so reallocating per-parameter copies here
    would silently detach the pool.  Values are cast to each
    parameter's current dtype on assignment; a training resume (with an
    optimizer) instead recasts the parameters to the checkpointed
    compute dtype.
    """
    archive = _read_verified(path)
    version = int(archive["format_version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    if optimizer is not None and "model_dtype" in archive:
        # Restore the checkpointed compute precision: in-place
        # loading (`param.data[...] = value`) keeps the *current*
        # dtype, so recast any drifted parameter first.  Skipped for
        # inference-only loads, which must preserve buffer identity.
        saved_dtype = np.dtype(str(archive["model_dtype"]))
        for param in model.parameters():
            if (param.data.dtype.kind == "f"
                    and param.data.dtype != saved_dtype):
                param.data = param.data.astype(saved_dtype)
                param.grad = None
    model.load_state_dict({
        key[len("model/"):]: archive[key]
        for key in archive if key.startswith("model/")
    })
    if optimizer is None:
        history, epoch = _load_history(archive), int(archive["epoch"])
        return history, (None if epoch < 0 else epoch)
    optimizer.lr = float(archive["lr"])
    step_count = int(archive["step_count"])

    # Guard against archives that don't cover this optimizer's
    # parameter list: blindly installing empty per-parameter dicts
    # would silently reset Adam moments and corrupt the resume.
    saved_indices = {
        int(key.split("/", 2)[1])
        for key in archive
        if key.startswith("opt/") and key.count("/") >= 2
    }
    num_states = len(optimizer._state)
    if "opt/num_states" in archive:
        saved_states = int(archive["opt/num_states"])
        if saved_states != num_states:
            raise ValueError(
                f"checkpoint stores optimizer state for {saved_states} "
                f"parameter(s) but the optimizer tracks {num_states}; "
                "rebuild the optimizer to match the checkpointed model"
            )
    elif step_count > 0 and not saved_indices:
        # Legacy archive (no opt/num_states): a stepped optimizer
        # must have saved slot variables for at least one parameter.
        raise ValueError(
            "checkpoint has step_count > 0 but no optimizer state "
            "entries; refusing to resume with reset moments"
        )
    if saved_indices and max(saved_indices) >= num_states:
        raise ValueError(
            f"checkpoint stores optimizer state for parameter index "
            f"{max(saved_indices)} but the optimizer tracks only "
            f"{num_states} parameter(s)"
        )
    optimizer._step_count = step_count
    for index in range(num_states):
        prefix = f"opt/{index}/"
        state = {}
        for key in archive:
            if key.startswith(prefix):
                value = archive[key]
                state[key[len(prefix):]] = (
                    int(value) if value.ndim == 0 and value.dtype.kind == "i"
                    else value.copy()
                )
        optimizer._state[index] = state

    history = _load_history(archive)
    epoch = int(archive["epoch"])
    return history, (None if epoch < 0 else epoch)


def _load_history(archive):
    """Rebuild the :class:`History` carried by an archive, or ``None``."""
    if "history/train_loss" not in archive:
        return None
    history = History(
        train_loss=list(archive["history/train_loss"]),
        train_reg=list(archive["history/train_reg"]),
        val_rmse=list(archive["history/val_rmse"]),
    )
    best_epoch, best_rmse = archive["history/best"]
    history.best_epoch = int(best_epoch)
    history.best_val_rmse = float(best_rmse)
    if "history/stopped_early" in archive:
        history.stopped_early = bool(archive["history/stopped_early"])
    if "history/interrupted" in archive:
        history.interrupted = bool(archive["history/interrupted"])
    if "history/epoch_time" in archive:
        history.epoch_time = [float(v) for v in archive["history/epoch_time"]]
    if "history/batches_per_sec" in archive:
        history.batches_per_sec = [
            float(v) for v in archive["history/batches_per_sec"]
        ]
    if "history/sentinel_json" in archive:
        history.sentinel = json.loads(str(archive["history/sentinel_json"]))
    return history


class CheckpointManager:
    """Rotating periodic checkpoints with best-snapshot retention.

    Writes ``<prefix>-epoch<NNNNNN>.npz`` archives into ``directory``,
    keeps the newest ``keep_last`` of them, and pins the best-so-far
    snapshot as ``<prefix>-best.npz`` (never rotated away).  A final
    interruption snapshot can be written with ``tag="final"``.
    """

    def __init__(self, directory, keep_last=3, prefix="ckpt"):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1; got {keep_last}")
        self.directory = os.fspath(directory)
        self.keep_last = keep_last
        self.prefix = prefix
        os.makedirs(self.directory, exist_ok=True)

    # -- paths ---------------------------------------------------------
    def _epoch_path(self, epoch):
        return os.path.join(self.directory,
                            f"{self.prefix}-epoch{epoch:06d}.npz")

    @property
    def best_path(self):
        """Path of the pinned best-so-far snapshot."""
        return os.path.join(self.directory, f"{self.prefix}-best.npz")

    def epoch_checkpoints(self):
        """Rotating epoch archives, oldest first."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith(f"{self.prefix}-epoch") and name.endswith(".npz")
        )
        return [os.path.join(self.directory, name) for name in names]

    # -- writing -------------------------------------------------------
    def save(self, model, optimizer, history=None, epoch=None,
             is_best=False, tag=None):
        """Write one snapshot (and its ``best`` pin) and rotate; returns path."""
        if tag is not None:
            path = os.path.join(self.directory, f"{self.prefix}-{tag}.npz")
        elif epoch is not None:
            path = self._epoch_path(epoch)
        else:
            raise ValueError("CheckpointManager.save needs an epoch or a tag")
        save_checkpoint(path, model, optimizer, history=history, epoch=epoch)
        if is_best:
            # A separate full write (not a copy-after-the-fact) so the
            # best pin gets the same atomicity guarantees.
            save_checkpoint(self.best_path, model, optimizer,
                            history=history, epoch=epoch)
        self._rotate()
        return path

    def _rotate(self):
        epochs = self.epoch_checkpoints()
        for stale in epochs[:max(0, len(epochs) - self.keep_last)]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    # -- reading -------------------------------------------------------
    def latest(self):
        """Newest valid checkpoint in the directory (best/final included)."""
        return find_latest_checkpoint(self.directory)
