"""Shared-memory array blocks for the fork-based worker pool.

A :class:`SharedArrayBlock` owns one
:class:`multiprocessing.shared_memory.SharedMemory` segment and exposes
named numpy views into it.  The parent creates every block *before*
forking; workers inherit the ``MAP_SHARED`` mappings through fork, so
no attach-by-name, pickling, or resource-tracker traffic happens on the
hot path — a write on either side of the fork is immediately visible to
the other.

Blocks are used for three things (see :mod:`repro.parallel.engine`):

- the flat **parameter** buffer the parent's in-place optimizer updates
  and every worker replica reads,
- the per-worker **gradient shard** matrix the parent allreduces with a
  single rank-ordered ``np.sum``, and
- the double-buffered **batch ring** the prefetch producer fills while
  workers compute.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayBlock"]


class SharedArrayBlock:
    """One shared-memory segment carved into named ndarray views.

    Parameters
    ----------
    spec:
        ``{name: (shape, dtype)}`` for every array the block holds.
        Offsets are laid out in ``spec`` order, each aligned to the
        array's itemsize.
    zero:
        Zero-fill the segment after creation (shared memory is
        zero-initialised on Linux already; this makes it explicit).
    """

    def __init__(self, spec, zero=False):
        offsets = {}
        cursor = 0
        for name, (shape, dtype) in spec.items():
            dtype = np.dtype(dtype)
            align = dtype.itemsize
            cursor = (cursor + align - 1) // align * align
            offsets[name] = cursor
            cursor += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        self.arrays = {}
        for name, (shape, dtype) in spec.items():
            view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                              offset=offsets[name])
            if zero:
                view.fill(0)
            self.arrays[name] = view
        self._closed = False

    @classmethod
    def for_arrays(cls, arrays, copy=True):
        """Build a block shaped like ``{name: ndarray}``, optionally copying.

        With ``copy=True`` each source array's values are written into
        the corresponding shared view — the one-time publication step a
        serving pool performs before forking replicas.
        """
        block = cls({name: (np.shape(value), np.asarray(value).dtype)
                     for name, value in arrays.items()})
        if copy:
            for name, value in arrays.items():
                block.arrays[name][...] = value
        return block

    def __getitem__(self, name):
        return self.arrays[name]

    @property
    def nbytes(self):
        """Size of the underlying segment in bytes."""
        return self._shm.size

    def close(self, unlink=True):
        """Release the views and the mapping; ``unlink`` destroys the segment.

        The creating (parent) process unlinks; forked workers only close
        their inherited mapping on exit.  Idempotent — the engine's
        cleanup paths may race a signal handler into calling this twice.
        """
        if self._closed:
            return
        self._closed = True
        # Drop the ndarray views first: SharedMemory.close() cannot
        # release a buffer that still has exported memoryviews.
        self.arrays = {}
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exotic teardown
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked by a peer
                pass
