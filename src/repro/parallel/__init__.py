"""Data-parallel training: fork pool, shared-memory allreduce, prefetch.

Public surface:

- :class:`~repro.parallel.engine.ParallelEngine` — the worker-pool step
  engine the trainer drives when ``TrainConfig.workers >= 1``;
- :func:`~repro.parallel.engine.worker_rank` — rank of the current
  process inside a pool (``None`` in the parent);
- :class:`~repro.parallel.engine.ParallelWorkerError` — a worker
  raised or died;
- :func:`~repro.parallel.blas.limit_blas_threads` — per-process BLAS
  thread cap (applied inside every worker);
- :func:`~repro.parallel.sharding.shard_bounds` /
  :func:`~repro.parallel.sharding.shard_weights` /
  :func:`~repro.parallel.sharding.epoch_batches` — the deterministic
  sharding contract (pure functions; see their module docstring for the
  equivalence guarantee).

Process discipline: this package is the only place in the codebase that
may fork (``repro lint`` enforces a ``fork-discipline`` rule); all
other code requests parallelism through ``TrainConfig.workers``.
"""

from repro.parallel.blas import limit_blas_threads
from repro.parallel.engine import ParallelEngine, ParallelWorkerError, worker_rank
from repro.parallel.sharding import epoch_batches, shard_bounds, shard_weights
from repro.parallel.shm import SharedArrayBlock

__all__ = [
    "ParallelEngine",
    "ParallelWorkerError",
    "worker_rank",
    "limit_blas_threads",
    "shard_bounds",
    "shard_weights",
    "epoch_batches",
    "SharedArrayBlock",
]
