"""Deterministic batch sharding for data-parallel training.

The contract that makes the parallel engine's gradients reproducible is
entirely contained in these pure functions:

- the *epoch order* is drawn from the trainer's rng exactly the way the
  single-process path draws it (one ``rng.shuffle`` per epoch), so the
  sequence of global batches is identical at every worker count;
- each global batch is split into **contiguous, order-preserving**
  per-worker shards (:func:`shard_bounds`), so concatenating the shards
  in rank order reconstructs the single-process batch sample-for-sample;
- each worker scales its shard-mean gradient by ``n_w / N``
  (:func:`shard_weights`), so the rank-ordered sum the parent computes
  equals the batch-mean gradient the single-process path would have
  produced, up to float summation tolerance — uneven tails included.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_bounds", "shard_weights", "epoch_batches"]


def shard_bounds(n, workers):
    """Split ``n`` samples into ``workers`` contiguous ``(start, stop)`` shards.

    The split is balanced (sizes differ by at most one, larger shards
    first) and order-preserving: concatenating ``range(start, stop)``
    over ranks yields ``range(n)`` exactly.  With ``n < workers`` the
    trailing shards are empty (``start == stop``).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1; got {workers}")
    if n < 0:
        raise ValueError(f"n must be >= 0; got {n}")
    base, rem = divmod(n, workers)
    bounds = []
    start = 0
    for rank in range(workers):
        size = base + (1 if rank < rem else 0)
        bounds.append((start, start + size))
        start += size
    return bounds

def shard_weights(bounds, n):
    """Per-shard averaging weights ``n_w / n`` for a batch of ``n`` samples.

    Weighting each worker's shard-mean gradient by its weight and
    summing reconstructs the batch mean: ``sum(w_i * mean_i) == mean``.
    Empty shards get weight 0; an empty batch returns all zeros.
    """
    if n <= 0:
        return [0.0 for _ in bounds]
    return [(stop - start) / n for start, stop in bounds]

def epoch_batches(order, batch_size):
    """Yield the epoch's global batches as index arrays, in order.

    Mirrors :func:`repro.data.windows.iterate_batches` exactly: the
    caller shuffles ``order`` with the training rng, and this slices it
    into consecutive ``batch_size`` chunks (last one possibly short).
    """
    order = np.asarray(order)
    for start in range(0, len(order), batch_size):
        yield order[start:start + batch_size]
