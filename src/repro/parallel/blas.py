"""BLAS thread guard: pin each worker to one BLAS thread.

Data-parallel workers each run the full numpy/BLAS stack; if every
replica also spins up a BLAS thread pool, ``workers x blas_threads``
threads fight over the same cores and throughput *drops* below the
single-process baseline (classic oversubscription).  The guard caps the
BLAS pool of the *current* process at ``n`` threads, trying, in order:

1. ``threadpoolctl`` (if installed) — covers OpenBLAS, MKL, and BLIS;
2. the C entry points of already-loaded BLAS libraries via
   ``ctypes`` (``openblas_set_num_threads`` / ``MKL_Set_Num_Threads``);
3. the standard environment variables (``OMP_NUM_THREADS`` etc.) — a
   best-effort fallback that only affects libraries initialised *after*
   the call.

The engine calls this inside every forked worker before its first
compute step and reports which mechanism took effect in the pool's
telemetry, so a silent fallback is visible rather than a mystery
slowdown.
"""

from __future__ import annotations

import ctypes
import os

__all__ = ["limit_blas_threads"]

_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def limit_blas_threads(n=1):
    """Cap this process's BLAS thread pools at ``n``; returns a description.

    Never raises: thread limiting is an optimisation, and a worker that
    cannot limit its pool must still train correctly.  The returned
    string names the mechanism that succeeded (``"threadpoolctl"``,
    ``"openblas_set_num_threads"``, ``"mkl_set_num_threads"``, or
    ``"env"`` for the environment-variable fallback).
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"BLAS thread cap must be >= 1; got {n}")
    try:
        import threadpoolctl
    except ImportError:
        pass
    else:
        try:
            threadpoolctl.threadpool_limits(limits=n)
            return "threadpoolctl"
        except Exception:  # pragma: no cover - library-internal failure
            pass
    for handle, origin in _candidate_handles():
        for symbol in _SET_THREADS_SYMBOLS:
            try:
                getattr(handle, symbol)(n)
                return f"{symbol}@{origin}"
            except AttributeError:
                continue
            except Exception:  # pragma: no cover - ABI surprise
                continue
    for var in _ENV_VARS:
        os.environ[var] = str(n)
    return "env"


#: Known spellings of the "set BLAS thread count" entry point across
#: OpenBLAS builds (plain, ILP64-suffixed, scipy-openblas-prefixed,
#: GotoBLAS legacy) and MKL.
_SET_THREADS_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "goto_set_num_threads",
    "MKL_Set_Num_Threads",
)


def _candidate_handles():
    """Yield ``(ctypes handle, origin label)`` for BLAS-bearing libraries.

    ``dlopen(NULL)`` covers globally-linked BLAS; pip wheels instead
    bundle a private copy under ``numpy.libs``/``scipy.libs``, which is
    already mapped into the process, so ``CDLL`` on it resolves the
    loaded copy rather than loading a second one.
    """
    try:
        yield ctypes.CDLL(None), "process"
    except OSError:  # pragma: no cover - static/embedded interpreters
        pass
    import glob

    import numpy as np

    site_dir = os.path.dirname(os.path.dirname(np.__file__))
    for libs_dir in ("numpy.libs", "scipy.libs"):
        pattern = os.path.join(site_dir, libs_dir, "*blas*.so*")
        for path in sorted(glob.glob(pattern)):
            try:
                yield ctypes.CDLL(path), os.path.basename(path)
            except OSError:  # pragma: no cover - unloadable stub
                continue
