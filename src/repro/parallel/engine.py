"""Fork-based data-parallel training engine with shared-memory allreduce.

One :class:`ParallelEngine` owns a pool of forked worker processes plus
three shared-memory regions (:mod:`repro.parallel.shm`):

- a **flat parameter buffer**: the parent rebinds every parameter's
  ``data`` to a view into it, so the in-place optimizer kernels update
  shared memory directly and every worker replica — whose parameters
  alias the same mapping through fork — sees the new weights at its
  next step with zero copies and zero pickling;
- a **gradient shard matrix** ``(workers, num_weights)``: each worker
  backprops its contiguous shard of the global batch, scales the
  shard-mean gradient by ``n_w / N`` (:mod:`repro.parallel.sharding`),
  and writes it flat into its row; the parent's allreduce is then a
  single rank-ordered ``np.sum(..., axis=0)`` into a pinned reduced
  buffer that the parameters' ``grad`` views alias — the sentinel,
  gradient clipping, and the optimizer all read the *reduced* gradient
  through the normal ``param.grad`` protocol;
- a **double-buffered batch ring**: a producer thread in the parent
  assembles the next global batch (the fancy-index gather happens once,
  not per worker) into a free ring slot while the workers compute the
  current one; workers read contiguous, zero-copy shard views.

Synchronisation is bulk-synchronous over per-worker pipes: the parent
sends a step descriptor (slot + shard bounds — a few dozen bytes), the
workers reply with scalar losses, and the heavy arrays never cross a
pipe.  The parent only runs its optimizer step while every worker is
blocked on its pipe, so no reader ever races a writer on the shared
parameter buffer.

Determinism: the caller draws the epoch order from the training rng
exactly as the single-process path does, shards are contiguous and
order-preserving, and the allreduce sums rows in fixed rank order — a
run is bit-identical run-to-run at a fixed seed and worker count, and
for models whose loss does not consume the per-step rng the reduced
gradient equals the single-process batch gradient to float summation
tolerance.  (Stochastic models — e.g. MUSE-Net's posterior sampling —
draw from a per-``(seed, epoch, step, rank)`` stream instead of the
trainer's rng, so they are reproducible per worker count but not
bit-equal *across* worker counts.)

Known limitation: non-parameter module buffers (BatchNorm running
statistics) are process-private after fork — workers update their own
copies and the parent's stay at fork-time values.  See
``docs/performance.md`` for when not to use workers.
"""

from __future__ import annotations

import multiprocessing
import queue
import signal
import threading
from time import perf_counter

import numpy as np

from repro.data.windows import SampleBatch
from repro.inspect import sanitizer
from repro.parallel.blas import limit_blas_threads
from repro.parallel.sharding import epoch_batches, shard_bounds
from repro.parallel.shm import SharedArrayBlock
from repro.tensor import tensor as _tensor_core

__all__ = ["ParallelEngine", "ParallelWorkerError", "worker_rank"]

_BATCH_FIELDS = ("closeness", "period", "trend", "target", "indices")

# Rank of the current process inside a ParallelEngine pool, or None in
# the parent / outside parallel training.  Module-global so test
# injectors (and user callbacks) forked into workers can tell replicas
# apart — e.g. deliver a signal to the parent from rank 0 only.
_WORKER_RANK = None


def worker_rank():
    """Rank of this process in the active worker pool; ``None`` in the parent."""
    return _WORKER_RANK


class ParallelWorkerError(RuntimeError):
    """A worker process failed (raised, or died) during parallel training."""


class ParallelEngine:
    """Data-parallel step engine for :class:`~repro.training.Trainer`.

    Use as a context manager: ``__enter__`` forks the pool, ``__exit__``
    drains it (workers receive a stop message, are joined, and the
    shared segments are unlinked — no orphan processes, even on an
    exception or an interrupt mid-epoch).  Between ``start`` and
    ``close`` the model's parameters alias shared memory; ``close``
    copies the current values back into private arrays, so the model
    remains fully usable afterwards.

    Parameters
    ----------
    model, optimizer:
        The trainer's model and optimizer.  ``optimizer.parameters``
        defines the flattening order; all parameters must share one
        floating dtype (the trainer's cast guarantees this).
    train:
        The training :class:`~repro.data.windows.SampleBatch` the
        producer gathers global batches from.
    batch_size:
        Global batch size (ring slots are allocated at this capacity).
    workers:
        Number of forked worker processes (>= 1).
    seed:
        Base seed for the per-``(seed, epoch, step, rank)`` worker rng
        streams handed to ``training_loss``.
    detect_anomaly:
        Run each worker's compute under
        :func:`repro.tensor.detect_anomaly`; anomalies surface as
        :class:`ParallelWorkerError` naming the op.
    blas_threads:
        BLAS thread cap applied inside each worker (default 1 — the
        workers themselves are the parallelism).
    """

    def __init__(self, model, optimizer, train, batch_size, workers,
                 seed=0, detect_anomaly=False, blas_threads=1, slots=2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1; got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {batch_size}")
        if slots < 2:
            raise ValueError(f"ring needs >= 2 slots; got {slots}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "repro.parallel requires the 'fork' start method (POSIX); "
                "use workers=0 on this platform")
        self.model = model
        self.optimizer = optimizer
        self.train = train
        self.batch_size = int(batch_size)
        self.workers = int(workers)
        self.seed = int(seed)
        self.detect_anomaly = bool(detect_anomaly)
        self.blas_threads = int(blas_threads)
        self.num_slots = int(slots)

        params = optimizer.parameters
        dtypes = {p.data.dtype for p in params}
        if len(dtypes) != 1:
            raise ValueError(
                f"parallel training needs a uniform parameter dtype; got "
                f"{sorted(str(d) for d in dtypes)} (use Trainer(dtype=...))")
        self._dtype = dtypes.pop()
        self._params = params
        self._offsets = []
        cursor = 0
        for p in params:
            self._offsets.append((cursor, p.size))
            cursor += p.size
        self._total = cursor

        # Telemetry (parent side).
        self.reduce_s = 0.0
        self.reduce_count = 0
        self.prefetch_stall_s = 0.0
        self.prefetch_stall_count = 0
        self.steps = 0
        self.blas_modes = []
        self.shared_bytes = 0

        self._param_block = None
        self._grad_block = None
        self._ring_block = None
        self._reduced = None
        self._grad_views = None
        self._procs = []
        self._conns = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Allocate shared memory, bind parameters into it, fork the pool."""
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        dtype = self._dtype
        self._param_block = SharedArrayBlock(
            {"params": ((self._total,), dtype)})
        self._grad_block = SharedArrayBlock(
            {"grads": ((self.workers, self._total), dtype),
             "mask": ((self.workers, len(self._params)), np.uint8)},
            zero=True)
        ring_spec = {}
        for slot in range(self.num_slots):
            for field in _BATCH_FIELDS:
                source = getattr(self.train, field)
                ring_spec[f"{field}{slot}"] = (
                    (self.batch_size,) + source.shape[1:], source.dtype)
        self._ring_block = SharedArrayBlock(ring_spec)
        self.shared_bytes = (self._param_block.nbytes
                             + self._grad_block.nbytes
                             + self._ring_block.nbytes)

        # Rebind parameters into the shared flat buffer (values copied
        # in), and pre-build the reduced-gradient views the parent will
        # install as param.grad after each allreduce.
        flat = self._param_block["params"]
        self._reduced = np.zeros(self._total, dtype=dtype)
        self._grad_views = []
        for param, (offset, size) in zip(self._params, self._offsets):
            view = flat[offset:offset + size].reshape(param.data.shape)
            view[...] = param.data
            param.data = view
            param.grad = None
            self._grad_views.append(
                self._reduced[offset:offset + size].reshape(view.shape))

        ctx = multiprocessing.get_context("fork")
        try:
            for rank in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=self._worker_loop, args=(rank, child_conn),
                    name=f"repro-parallel-{rank}", daemon=True)
                proc.start()
                child_conn.close()  # the worker's end lives in the child
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for rank, conn in enumerate(self._conns):
                reply = self._recv(rank, conn, timeout=30.0)
                if reply[0] != "ready":
                    raise ParallelWorkerError(
                        f"worker {rank} failed to initialise: {reply!r}")
                self.blas_modes.append(reply[2])
        except BaseException:
            self.close()
            raise
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def close(self):
        """Drain the pool and release shared memory (idempotent).

        Workers get a stop message and are joined with a timeout;
        stragglers are terminated, then killed — the guarantee is zero
        child processes on return no matter how training ended.
        Parameter values are copied back into private arrays so the
        model (checkpointing, evaluation, best-state restore) keeps
        working after the shared segment is unlinked.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns = []
        self._procs = []
        if self._param_block is not None:
            # Detach parameters from the doomed mapping first.
            for param in self._params:
                if param.data.base is not None:
                    param.data = param.data.copy()
                param.grad = None
            self._param_block.close()
            self._param_block = None
        if self._grad_block is not None:
            self._grad_block.close()
            self._grad_block = None
        if self._ring_block is not None:
            self._ring_block.close()
            self._ring_block = None

    # ------------------------------------------------------------------
    # Epoch driving
    # ------------------------------------------------------------------
    def epoch_steps(self, order, epoch):
        """Run one epoch; yields ``(loss, reg)`` per global batch.

        ``order`` is the epoch's shuffled sample order (drawn by the
        caller from the training rng, identically to the single-process
        path).  Before each yield the *reduced* batch gradient has been
        installed on every contributing parameter's ``grad``, so the
        caller's sentinel/clip/step tail works unchanged.  The producer
        thread prefetching the next batch is stopped cleanly even when
        the caller abandons the generator mid-epoch (interrupt, early
        stop, divergence).
        """
        if not self._started or self._closed:
            raise RuntimeError("engine is not running; use it as a context "
                               "manager around the fit")
        order = np.asarray(order)
        steps_total = -(-len(order) // self.batch_size) if len(order) else 0
        free = queue.Queue()
        filled = queue.Queue()
        for slot in range(self.num_slots):
            free.put(slot)
        stop_event = threading.Event()
        producer = sanitizer.create_thread(
            target=self._produce, args=(order, free, filled, stop_event),
            name="repro-prefetch", daemon=True)
        producer.start()
        grads = self._grad_block["grads"]
        mask = self._grad_block["mask"]
        try:
            for _ in range(steps_total):
                begin = perf_counter()
                desc = filled.get()
                stall = perf_counter() - begin
                self.prefetch_stall_s += stall
                self.prefetch_stall_count += 1
                if desc is None:  # pragma: no cover - producer died early
                    break
                step, slot, n = desc
                bounds = shard_bounds(n, self.workers)
                for rank, conn in enumerate(self._conns):
                    start, stop = bounds[rank]
                    conn.send(("step", epoch, step, slot, start, stop, n))
                replies = [self._recv(rank, conn)
                           for rank, conn in enumerate(self._conns)]
                free.put(slot)
                failures = [(rank, r) for rank, r in enumerate(replies)
                            if r[0] != "ok"]
                if failures:
                    rank, reply = failures[0]
                    raise ParallelWorkerError(
                        f"worker {rank} failed at epoch {epoch} step {step}: "
                        f"{reply[1]}")
                begin = perf_counter()
                np.sum(grads, axis=0, out=self._reduced)
                active = mask.any(axis=0)
                for index, param in enumerate(self._params):
                    param.grad = self._grad_views[index] if active[index] \
                        else None
                self.reduce_s += perf_counter() - begin
                self.reduce_count += 1
                profiler = _tensor_core._PROFILER
                if profiler is not None:
                    profiler._record_parallel_step(
                        perf_counter() - begin, stall)
                    profiler.mark()
                loss = sum(r[1] * (r[3] / n) for r in replies)
                reg = sum(r[2] * (r[3] / n) for r in replies)
                self.steps += 1
                yield loss, reg
        finally:
            stop_event.set()
            # Unblock a producer waiting on a free slot, then drain.
            free.put(None)
            # Reported (not raised: this is a finally block and must
            # not mask an in-flight exception) — the producer is a
            # daemon, so a hang here can never hang CI, but it must
            # never be silent either.
            sanitizer.join_thread(producer, timeout=5.0,
                                  what="prefetch producer")

    def _produce(self, order, free, filled, stop_event):
        """Producer thread: gather global batches into free ring slots."""
        ring = self._ring_block.arrays
        train = self.train
        for step, idx in enumerate(epoch_batches(order, self.batch_size)):
            slot = free.get()
            if slot is None or stop_event.is_set():
                return
            n = len(idx)
            for field in _BATCH_FIELDS:
                np.take(getattr(train, field), idx, axis=0,
                        out=ring[f"{field}{slot}"][:n])
            filled.put((step, slot, n))
        filled.put(None)

    def _recv(self, rank, conn, timeout=None):
        """Receive one message from a worker, failing fast if it died."""
        deadline = None if timeout is None else perf_counter() + timeout
        while not conn.poll(0.2):
            if not self._procs[rank].is_alive():
                raise ParallelWorkerError(
                    f"worker {rank} died (exit code "
                    f"{self._procs[rank].exitcode}) without replying")
            if deadline is not None and perf_counter() > deadline:
                raise ParallelWorkerError(
                    f"worker {rank} did not reply within {timeout:.0f}s")
        try:
            return conn.recv()
        except EOFError as exc:
            raise ParallelWorkerError(
                f"worker {rank} closed its pipe mid-step") from exc

    def telemetry(self):
        """JSON-able counters for ``History.parallel``."""
        return {
            "workers": self.workers,
            "steps": self.steps,
            "reduce_s": self.reduce_s,
            "reduce_count": self.reduce_count,
            "prefetch_stall_s": self.prefetch_stall_s,
            "prefetch_stall_count": self.prefetch_stall_count,
            "blas_modes": list(self.blas_modes),
            "shared_mib": round(self.shared_bytes / 2**20, 3),
        }

    # ------------------------------------------------------------------
    # Worker side (runs in the forked child)
    # ------------------------------------------------------------------
    def _worker_loop(self, rank, conn):
        global _WORKER_RANK
        _WORKER_RANK = rank
        # The parent orchestrates shutdown over the pipe; a terminal
        # Ctrl-C lands on the whole process group, and a worker that
        # dies to it mid-step would look like a crash, not an interrupt.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, signal.SIG_IGN)
            except (ValueError, OSError):  # pragma: no cover
                pass
        # Parent-process instrumentation has no meaning in the replica.
        _tensor_core._set_profiler(None)
        _tensor_core._set_trace_hook(None)
        blas_mode = limit_blas_threads(self.blas_threads)
        self.model.train()
        import contextlib

        from repro.tensor import detect_anomaly
        with contextlib.ExitStack() as stack:
            if self.detect_anomaly:
                stack.enter_context(detect_anomaly())
            conn.send(("ready", rank, blas_mode))
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, KeyboardInterrupt):
                    break
                if msg[0] == "stop":
                    break
                if msg[0] != "step":  # pragma: no cover - unknown command
                    continue
                _, epoch, step, slot, start, stop, n = msg
                try:
                    conn.send(("ok",) + self._worker_step(
                        rank, epoch, step, slot, start, stop, n))
                except BaseException as exc:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()

    def _worker_step(self, rank, epoch, step, slot, start, stop, n):
        """One shard: forward, backward, weighted flat gradient write."""
        row = self._grad_block["grads"][rank]
        mask_row = self._grad_block["mask"][rank]
        if stop <= start:
            row.fill(0)
            mask_row.fill(0)
            return 0.0, 0.0, 0
        ring = self._ring_block.arrays
        shard = SampleBatch(**{
            field: ring[f"{field}{slot}"][start:stop]
            for field in _BATCH_FIELDS})
        rng = np.random.default_rng([self.seed, epoch, step, rank])
        for param in self._params:
            param.grad = None
        breakdown, _outputs = self.model.training_loss(shard, rng=rng)
        breakdown.total.backward()
        weight = (stop - start) / n
        for index, param in enumerate(self._params):
            offset, size = self._offsets[index]
            grad = param.grad
            if grad is None:
                row[offset:offset + size] = 0
                mask_row[index] = 0
            else:
                np.multiply(grad.reshape(-1), weight,
                            out=row[offset:offset + size])
                mask_row[index] = 1
        return (float(breakdown.total.item()), float(breakdown.reg.item()),
                stop - start)
