"""Complexity accounting (paper Table I).

Table I compares the asymptotic time/space complexity of DeepSTN+,
DMSTGCN, GMAN, and MUSE-Net in terms of the sequence length ``L``,
representation dimension ``d``, grid size ``M = H * W``, and edge count
``E``.  This module evaluates those formulas numerically and counts
actual parameters of instantiated models, so the table can be
regenerated with measured values next to the analytic ones.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComplexityEntry", "complexity_table", "count_parameters"]


@dataclass(frozen=True)
class ComplexityEntry:
    """One method's analytic complexity, symbolic and evaluated."""

    method: str
    family: str
    time_formula: str
    space_formula: str
    time_value: float
    space_value: float


def complexity_table(L, d, M, E=None):
    """Evaluate Table I's formulas for concrete (L, d, M, E).

    ``E`` defaults to a 4-neighbour lattice's edge count ``~2M``.
    """
    if E is None:
        E = 2 * M
    entries = [
        ComplexityEntry(
            method="DeepSTN+", family="CNN",
            time_formula="O(LdM + d^2 M + d M^2)",
            space_formula="O(Ld + d^2 + d M^2)",
            time_value=L * d * M + d * d * M + d * M * M,
            space_value=L * d + d * d + d * M * M,
        ),
        ComplexityEntry(
            method="DMSTGCN", family="GCN",
            time_formula="O(L d^2 M + L d E)",
            space_formula="O(LdM + d^3 + M^2)",
            time_value=L * d * d * M + L * d * E,
            space_value=L * d * M + d ** 3 + M * M,
        ),
        ComplexityEntry(
            method="GMAN", family="Attention",
            time_formula="O(L d^2 M + L d M^2)",
            space_formula="O(LdM + L^2 M + L M^2 + d^2)",
            time_value=L * d * d * M + L * d * M * M,
            space_value=L * d * M + L * L * M + L * M * M + d * d,
        ),
        ComplexityEntry(
            method="MUSE-Net", family="CNN",
            time_formula="O(LdM + d^2 M + d M^2)",
            space_formula="O(Ld + d^2 + d M^2)",
            time_value=L * d * M + d * d * M + d * M * M,
            space_value=L * d + d * d + d * M * M,
        ),
    ]
    return entries


def count_parameters(model):
    """Number of trainable scalars in a model (measured space proxy)."""
    return model.num_parameters()
