"""Interpretability and complexity analyses (Figs. 5-8, Table I)."""

from repro.analysis.tsne import silhouette_score, tsne
from repro.analysis.similarity import (
    cosine_similarity_matrix,
    diagonal_similarity,
    flatten_per_sample,
    spatial_signature,
    windowed_correlation,
)
from repro.analysis.complexity import (
    ComplexityEntry,
    complexity_table,
    count_parameters,
)
from repro.analysis.decomposition import (
    SeasonalDecomposition,
    periodicity_strength,
    seasonal_decompose,
)

__all__ = [
    "tsne", "silhouette_score",
    "cosine_similarity_matrix", "diagonal_similarity", "flatten_per_sample",
    "spatial_signature", "windowed_correlation",
    "ComplexityEntry", "complexity_table", "count_parameters",
    "SeasonalDecomposition", "seasonal_decompose", "periodicity_strength",
]
