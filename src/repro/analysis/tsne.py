"""Exact t-SNE (van der Maaten & Hinton, 2008), from scratch.

The paper's Fig. 5 projects original sub-series and disentangled
representations to 2-D with t-SNE to show that disentangled clusters
separate while raw sub-series mix.  Sample counts there are small, so
the exact O(N^2) algorithm is sufficient — no Barnes-Hut needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne", "silhouette_score"]


def _pairwise_sq_distances(x):
    """Squared Euclidean distance matrix of row vectors."""
    sq = np.sum(x * x, axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _conditional_probabilities(distances, perplexity, tol=1e-5, max_iter=50):
    """Row-stochastic P with per-point bandwidths matched to perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf  # exclude self
        for _ in range(max_iter):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                entropy = 0.0
                probs = np.zeros_like(row)
            else:
                probs = exp_row / total
                with np.errstate(divide="ignore", invalid="ignore"):
                    logs = np.where(probs > 0, np.log(probs), 0.0)
                entropy = -np.sum(probs * logs)
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_low = beta
                beta = beta * 2 if beta_high == np.inf else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low == 0 else (beta + beta_low) / 2
        p[i] = probs
    return p


def tsne(x, num_dims=2, perplexity=20.0, iterations=300, learning_rate=100.0,
         seed=0, early_exaggeration=4.0, exaggeration_iters=60):
    """Embed row vectors ``x`` into ``num_dims`` dimensions.

    Parameters follow the original paper's defaults scaled down for the
    library's small analysis sets.  Deterministic for a given ``seed``.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    distances = _pairwise_sq_distances(x)
    p = _conditional_probabilities(distances, perplexity)
    p = (p + p.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = np.random.default_rng(seed)
    y = rng.standard_normal((n, num_dims)) * 1e-2
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iters else 1.0
        dy = _pairwise_sq_distances(y)
        inv = 1.0 / (1.0 + dy)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), 1e-12)

        # Gradient of KL(P||Q) for the Student-t kernel.
        pq = (exaggeration * p - q) * inv
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

        momentum = 0.5 if iteration < 100 else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)

    return y


def silhouette_score(points, labels):
    """Mean silhouette coefficient — quantifies cluster separation.

    Used to score the Fig. 5 claim numerically: disentangled
    representations should separate (higher silhouette) while raw
    sub-series mix (near zero).
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette needs at least two clusters")
    distances = np.sqrt(_pairwise_sq_distances(points))
    scores = np.zeros(len(points))
    for i in range(len(points)):
        same = labels == labels[i]
        same[i] = False
        a = distances[i][same].mean() if same.any() else 0.0
        b = min(
            distances[i][labels == other].mean()
            for other in unique if other != labels[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())
