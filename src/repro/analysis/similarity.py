"""Cosine-similarity analyses (paper Figs. 6-8).

The paper probes the learned representations with cosine similarity:

- Fig. 6: interactive representation vs. the original closeness /
  period / trend sub-series (mostly positive => pulling worked).
- Fig. 7: exclusive and interactive representations vs. future flow
  (complementary sign structure).
- Fig. 8: the diagonal of the similarity matrix traced over time,
  split by peak / non-peak periods.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity_matrix",
    "diagonal_similarity",
    "flatten_per_sample",
    "spatial_signature",
    "windowed_correlation",
]


def flatten_per_sample(array):
    """Collapse everything but the first axis: ``(N, ...) -> (N, D)``."""
    array = np.asarray(array, dtype=float)
    return array.reshape(len(array), -1)


def _normalize_rows(matrix, eps=1e-12):
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, eps)


def cosine_similarity_matrix(a, b):
    """Pairwise cosine similarity: rows of ``a`` vs rows of ``b``.

    Inputs of any shape are flattened per sample; the result is
    ``(len(a), len(b))`` in ``[-1, 1]``.
    """
    a = _normalize_rows(flatten_per_sample(a))
    b = _normalize_rows(flatten_per_sample(b))
    return a @ b.T


def spatial_signature(array):
    """Reduce grid-shaped tensors to per-cell vectors ``(N, H*W)``.

    Representations ``(N, d, H, W)`` and flow series ``(N, L, 2, H, W)``
    live in different feature spaces; cosine similarity between them is
    only meaningful over a shared axis.  The grid is that axis: average
    every non-spatial feature dimension, keep the spatial profile.
    """
    array = np.asarray(array, dtype=float)
    if array.ndim < 3:
        raise ValueError(f"need (N, ..., H, W); got shape {array.shape}")
    n, h, w = array.shape[0], array.shape[-2], array.shape[-1]
    middle = array.reshape(n, -1, h * w)
    return middle.mean(axis=1)


def windowed_correlation(a, b, window=3):
    """Sliding Pearson correlation between two aligned 1-D series.

    ``window`` is the half-width; position ``t`` correlates
    ``a[t-window : t+window+1]`` with the same slice of ``b``.  Values
    lie in ``[-1, 1]`` — the per-timeslot similarity trace the paper's
    Fig. 8 draws.  Degenerate (constant) windows score 0.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("windowed_correlation needs equal-length 1-D series")
    n = len(a)
    out = np.zeros(n)
    for t in range(n):
        lo = max(0, t - window)
        hi = min(n, t + window + 1)
        xa = a[lo:hi] - a[lo:hi].mean()
        xb = b[lo:hi] - b[lo:hi].mean()
        denom = np.sqrt((xa * xa).sum() * (xb * xb).sum())
        out[t] = 0.0 if denom == 0 else float((xa * xb).sum() / denom)
    return out


def diagonal_similarity(a, b):
    """Per-sample cosine similarity between aligned rows of ``a``/``b``.

    This is the diagonal of :func:`cosine_similarity_matrix` without
    materializing the full matrix — the quantity Fig. 8 traces over
    time for one region.
    """
    a = _normalize_rows(flatten_per_sample(a))
    b = _normalize_rows(flatten_per_sample(b))
    if len(a) != len(b):
        raise ValueError(f"aligned similarity needs equal lengths; got {len(a)} vs {len(b)}")
    return np.sum(a * b, axis=1)
