"""Seasonal decomposition and periodicity-strength measures.

Used to *verify* that a dataset actually carries the multi-periodic
structure MUSE-Net assumes (and that the synthetic substrate mirrors
the real datasets' daily/weekly rhythm).  The decomposition is the
classic moving-average variant; the strength measure follows
Wang-Hyndman-Smith: ``1 - Var(residual) / Var(seasonal + residual)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeasonalDecomposition", "seasonal_decompose", "periodicity_strength"]


@dataclass
class SeasonalDecomposition:
    """Additive decomposition ``series = trend + seasonal + residual``."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray

    def reconstruct(self):
        """Sum the components back to the original series."""
        return self.trend + self.seasonal + self.residual


def _centered_moving_average(series, window):
    """Centered moving average with edge padding."""
    padded = np.pad(series, (window // 2, window - 1 - window // 2), mode="edge")
    kernel = np.ones(window) / window
    return np.convolve(padded, kernel, mode="valid")


def seasonal_decompose(series, period):
    """Additive moving-average decomposition at the given period.

    ``series`` is 1-D; ``period`` is the cycle length in samples.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError("seasonal_decompose expects a 1-D series")
    if period < 2 or period > len(series) // 2:
        raise ValueError(
            f"period {period} must be in [2, len(series)/2 = {len(series) // 2}]"
        )
    trend = _centered_moving_average(series, period)
    detrended = series - trend
    seasonal_profile = np.zeros(period)
    for phase in range(period):
        seasonal_profile[phase] = detrended[phase::period].mean()
    seasonal_profile -= seasonal_profile.mean()
    seasonal = np.tile(seasonal_profile, len(series) // period + 1)[: len(series)]
    residual = detrended - seasonal
    return SeasonalDecomposition(trend=trend, seasonal=seasonal, residual=residual)


def periodicity_strength(series, period):
    """Strength of the seasonal component in ``[0, 1]``.

    0 = no structure at this period, 1 = perfectly periodic.
    """
    decomposition = seasonal_decompose(series, period)
    denom = np.var(decomposition.seasonal + decomposition.residual)
    if denom == 0:
        return 0.0
    return float(max(0.0, 1.0 - np.var(decomposition.residual) / denom))
