"""MUSE-Net reproduction library.

Reproduces *MUSE-Net: Disentangling Multi-Periodicity for Traffic Flow
Forecasting* (ICDE 2024) on a from-scratch numpy substrate:

- :mod:`repro.tensor` — reverse-mode autodiff engine.
- :mod:`repro.nn` / :mod:`repro.optim` — layers and optimizers.
- :mod:`repro.data` — grid-city traffic simulator and dataset pipeline.
- :mod:`repro.core` — the MUSE-Net model and its training objective.
- :mod:`repro.baselines` — the 11 comparison methods from the paper.
- :mod:`repro.metrics` / :mod:`repro.analysis` — evaluation and the
  paper's interpretability analyses.
- :mod:`repro.profiling` — op profiler and tape-memory accounting for
  the autodiff runtime.
- :mod:`repro.experiments` — one runner per paper table/figure.
"""

__version__ = "1.0.0"
