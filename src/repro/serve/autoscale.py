"""Load-adaptive replica autoscaling for the forecast server.

The replica pool makes capacity cheap to change: replicas alias ONE
shared parameter block, so adding a replica is a fork (no weight copy)
and removing one is a process stop — a scale event never touches
parameter state and therefore can never tear a generation
(:meth:`~repro.serve.pool.ReplicaPool.scale_to`).  What remains is the
*policy*: when is the pool under- or over-provisioned?

:class:`AutoScaler` answers from two serving-telemetry signals:

- **queue depth** — requests waiting in the micro-batcher right now
  (instantaneous backlog);
- **recent queue wait** — mean time recent requests spent queued
  (:meth:`~repro.serve.stats.LatencyStats.recent_queue_wait_ms`), the
  smoothed symptom of sustained undercapacity.

Either signal above its high threshold is *pressure*; both below their
low thresholds is *slack*.  Two guards keep the loop from flapping:

- **hysteresis** — a decision needs ``patience`` *consecutive*
  pressure (or slack) observations; a single bursty sample scales
  nothing;
- **cooldown** — after any scale event the scaler sits out
  ``cooldown_s`` so the new capacity's effect shows up in the signals
  before the next decision.

Scaling moves one replica at a time within ``[min_replicas,
max_replicas]``.  Every decision is observable: scale events (with
their triggering signals) accumulate in :meth:`snapshot`'s bounded
event log, surfaced through ``ForecastServer.snapshot()["autoscaler"]``.

The policy is deliberately separated from the clock: :meth:`step` takes
one observation and maybe acts — tests drive it synchronously with
fabricated signals — while :meth:`start` merely runs ``step`` on a
daemon thread every ``interval_s``.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

from repro.inspect import sanitizer

__all__ = ["AutoScaler", "AutoScaleConfig"]

#: Bounded scale-event log (telemetry, not an audit trail).
_EVENT_LOG = 64


class AutoScaleConfig:
    """Autoscaling policy knobs (validated once, then read-only use).

    Parameters
    ----------
    min_replicas / max_replicas:
        Inclusive replica-count bounds; the scaler never leaves them.
    high_queue_depth:
        Queued requests at or above this count pressure scale-up.
    high_wait_ms / low_wait_ms:
        Recent mean queue wait above ``high_wait_ms`` is pressure;
        below ``low_wait_ms`` (with an empty-enough queue) is slack.
    patience:
        Consecutive pressured (or slack) observations required before
        acting — the hysteresis guard.
    cooldown_s:
        Seconds after a scale event during which no decision is taken.
    interval_s:
        Background observation period for :meth:`AutoScaler.start`.
    """

    def __init__(self, min_replicas=1, max_replicas=4, *,
                 high_queue_depth=8, high_wait_ms=50.0, low_wait_ms=5.0,
                 patience=3, cooldown_s=10.0, interval_s=1.0):
        if min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1; got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(
                f"max_replicas ({max_replicas}) must be >= min_replicas "
                f"({min_replicas})")
        if high_queue_depth < 1:
            raise ValueError(
                f"high_queue_depth must be >= 1; got {high_queue_depth}")
        if low_wait_ms < 0 or high_wait_ms <= low_wait_ms:
            raise ValueError(
                f"need 0 <= low_wait_ms < high_wait_ms; got "
                f"low={low_wait_ms}, high={high_wait_ms}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1; got {patience}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0; got {cooldown_s}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0; got {interval_s}")
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.high_queue_depth = int(high_queue_depth)
        self.high_wait_ms = float(high_wait_ms)
        self.low_wait_ms = float(low_wait_ms)
        self.patience = int(patience)
        self.cooldown_s = float(cooldown_s)
        self.interval_s = float(interval_s)

    def as_dict(self):
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "high_queue_depth": self.high_queue_depth,
            "high_wait_ms": self.high_wait_ms,
            "low_wait_ms": self.low_wait_ms,
            "patience": self.patience,
            "cooldown_s": self.cooldown_s,
            "interval_s": self.interval_s,
        }


class AutoScaler:
    """Grow/shrink a replica pool from serving-load telemetry.

    Parameters
    ----------
    server:
        Anything exposing the three accessors the policy reads/acts on:
        ``queue_depth`` (int), ``recent_queue_wait_ms()`` (float or
        None), ``replica_count`` (int), and ``scale_replicas(n) -> int``
        — :class:`~repro.serve.server.ForecastServer` in production, a
        stub in the policy tests.
    config:
        An :class:`AutoScaleConfig`.
    """

    def __init__(self, server, config: AutoScaleConfig):
        self._server = server
        self.config = config
        self._lock = sanitizer.create_lock("AutoScaler._lock")
        self._pressure_streak = 0
        self._slack_streak = 0
        self._cooldown_until = 0.0
        self._observations = 0
        self._events = deque(maxlen=_EVENT_LOG)
        self._scale_ups = 0
        self._scale_downs = 0
        self._thread = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Policy (synchronous, test-drivable)
    # ------------------------------------------------------------------
    def step(self, now=None):
        """Take one observation; scale by at most one replica.

        Returns the scale delta applied: +1, -1, or 0.  ``now`` lets
        tests pin the cooldown clock.
        """
        now = perf_counter() if now is None else now
        depth = int(self._server.queue_depth)
        wait_ms = self._server.recent_queue_wait_ms()
        replicas = int(self._server.replica_count)
        cfg = self.config
        pressured = depth >= cfg.high_queue_depth or (
            wait_ms is not None and wait_ms >= cfg.high_wait_ms)
        slack = depth == 0 and (
            wait_ms is None or wait_ms <= cfg.low_wait_ms)
        with self._lock:
            self._observations += 1
            if pressured:
                self._pressure_streak += 1
                self._slack_streak = 0
            elif slack:
                self._slack_streak += 1
                self._pressure_streak = 0
            else:
                self._pressure_streak = 0
                self._slack_streak = 0
            if now < self._cooldown_until:
                return 0
            if self._pressure_streak >= cfg.patience \
                    and replicas < cfg.max_replicas:
                target, direction = replicas + 1, +1
            elif self._slack_streak >= cfg.patience \
                    and replicas > cfg.min_replicas:
                target, direction = replicas - 1, -1
            else:
                return 0
            # Commit the decision before releasing the lock; the scale
            # call itself runs outside it (it forks / joins processes).
            self._pressure_streak = 0
            self._slack_streak = 0
            self._cooldown_until = now + cfg.cooldown_s
        achieved = self._server.scale_replicas(target)
        with self._lock:
            if direction > 0:
                self._scale_ups += 1
            else:
                self._scale_downs += 1
            self._events.append({
                "direction": "up" if direction > 0 else "down",
                "from": replicas,
                "to": int(achieved),
                "queue_depth": depth,
                "recent_wait_ms": wait_ms,
            })
        return direction

    # ------------------------------------------------------------------
    # Background driver
    # ------------------------------------------------------------------
    def start(self):
        """Run :meth:`step` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._thread = sanitizer.create_thread(
            target=self._run, name="repro-serve-autoscaler", daemon=True)
        self._thread.start()
        return self

    def _run(self):
        while not self._stop.wait(self.config.interval_s):
            try:
                self.step()
            except RuntimeError:
                # The pool closed under us (shutdown race): the loop is
                # about to be stopped by the same teardown — idle until
                # it is rather than crash the thread.
                pass

    def close(self):
        """Stop the background driver (idempotent; policy state kept)."""
        self._stop.set()
        if self._thread is not None:
            sanitizer.join_thread(self._thread,
                                  timeout=self.config.interval_s + 10.0,
                                  what="autoscaler driver")
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-able policy state + bounded scale-event log."""
        with self._lock:
            return {
                "config": self.config.as_dict(),
                "observations": self._observations,
                "pressure_streak": self._pressure_streak,
                "slack_streak": self._slack_streak,
                "scale_ups": self._scale_ups,
                "scale_downs": self._scale_downs,
                "events": list(self._events),
            }
