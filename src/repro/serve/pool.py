"""Forked replica pool for serving: weights once per host, hot-swappable.

Reuses the two load-bearing ideas of :mod:`repro.parallel`:

- **One flat parameter buffer.**  Before forking, every model parameter
  is rebound to a view into a single shared-memory block
  (:class:`~repro.parallel.shm.SharedArrayBlock`).  The forked replicas
  alias the same mapping, so a 47M-parameter model costs its weight
  bytes *once* per host no matter how many replicas serve it — and a
  checkpoint hot-swap is one in-place write into that block, not a
  per-replica broadcast.
- **BSP-style dispatch.**  The parent only writes the parameter buffer
  (checkpoint install) while every replica is idle, and replicas only
  read it while the parent waits on their pipes.  A **generation
  counter** in the same shared block is bumped after each install;
  every reply carries the generation it served, so a response can never
  correspond to a torn half-old/half-new parameter state.

A ``predict`` call shards the coalesced batch contiguously across
replicas (``shard_bounds``), each replica computes its rows of the
shared output slot, and the parent returns them in rank order — row
``i`` of the result is sample ``i`` of the request, same as a
single-process forward.
"""

from __future__ import annotations

import multiprocessing
import signal

import numpy as np

from repro.data.windows import SampleBatch
from repro.inspect import sanitizer
from repro.parallel.blas import limit_blas_threads
from repro.parallel.engine import ParallelWorkerError
from repro.parallel.sharding import shard_bounds
from repro.parallel.shm import SharedArrayBlock
from repro.tensor import no_grad
from repro.tensor import tensor as _tensor_core

__all__ = ["ReplicaPool"]

_BATCH_FIELDS = ("closeness", "period", "trend", "target", "indices")


def _handshake(proc, conn, timeout):
    """Wait for a newly forked replica's ``ready`` reply.

    Module-level on purpose: the scale-up path runs it *outside* the
    dispatch lock (forking and handshaking must not stall serving), so
    it must not touch pool state at all.
    """
    from time import perf_counter
    deadline = perf_counter() + timeout
    while not conn.poll(0.2):
        if not proc.is_alive():
            raise ParallelWorkerError(
                f"replica {proc.name} died (exit code {proc.exitcode}) "
                "during startup")
        if perf_counter() > deadline:
            raise ParallelWorkerError(
                f"replica {proc.name} did not initialise within "
                f"{timeout:.0f}s")
    try:
        return conn.recv()
    except EOFError as exc:
        raise ParallelWorkerError(
            f"replica {proc.name} closed its pipe during startup") from exc


def _stop_replicas(procs, conns):
    """Stop a set of replica processes and close their pipes.

    Cooperative stop first, escalating to terminate/kill for hung
    children; used by both full teardown and scale-down, so a shrunk
    pool can never leak an orphan process.
    """
    for conn in conns:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - hung replica
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - unkillable
            proc.kill()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ReplicaPool:
    """Fork-based inference pool over one shared parameter block.

    Parameters
    ----------
    model:
        The forecaster; its parameters define the flat buffer layout.
        ``model.predict(batch) -> (N, ...)`` runs inside each replica.
    template:
        A :class:`~repro.data.windows.SampleBatch` whose per-sample
        field shapes/dtypes size the shared request/response slots.
    replicas:
        Number of forked replica processes (>= 1).
    max_batch:
        Capacity of the shared request slot (the batcher's cap).
    blas_threads:
        BLAS thread cap inside each replica (default 1; the replicas
        are the parallelism).
    """

    def __init__(self, model, template: SampleBatch, replicas, max_batch,
                 blas_threads=1):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1; got {replicas}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "repro.serve replicas require the 'fork' start method "
                "(POSIX); use replicas=0 on this platform")
        self.model = model
        self.replicas = int(replicas)
        self.max_batch = int(max_batch)
        self.blas_threads = int(blas_threads)

        self._params = model.parameters()
        if not self._params:
            raise ValueError("model exposes no parameters to share")
        dtypes = {p.data.dtype for p in self._params}
        if len(dtypes) != 1:
            raise ValueError(
                f"replica pool needs a uniform parameter dtype; got "
                f"{sorted(str(d) for d in dtypes)}")
        self._dtype = dtypes.pop()
        self._offsets = []
        cursor = 0
        for p in self._params:
            self._offsets.append((cursor, p.size))
            cursor += p.size
        self._total = cursor

        self._template = template
        self._lock = sanitizer.create_lock("ReplicaPool._lock")
        self._param_block = None
        self._io_block = None
        self._procs = []
        self._conns = []
        self._started = False
        self._closed = False
        self.blas_modes = []
        self.shared_bytes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Publish weights to shared memory and fork the replicas."""
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        self._param_block = SharedArrayBlock({
            "params": ((self._total,), self._dtype),
            "generation": ((1,), np.int64),
        })
        flat = self._param_block["params"]
        for param, (offset, size) in zip(self._params, self._offsets):
            view = flat[offset:offset + size].reshape(param.data.shape)
            view[...] = param.data
            param.data = view
            param.grad = None
        self._param_block["generation"][0] = 0

        io_spec = {}
        for field in _BATCH_FIELDS:
            source = getattr(self._template, field)
            io_spec[field] = ((self.max_batch,) + source.shape[1:],
                              source.dtype)
        io_spec["out"] = ((self.max_batch,) + self._template.target.shape[1:],
                          self._dtype)
        self._io_block = SharedArrayBlock(io_spec)
        self.shared_bytes = self._param_block.nbytes + self._io_block.nbytes

        try:
            procs, conns, modes = self._fork_replicas(range(self.replicas))
            self._procs.extend(procs)
            self._conns.extend(conns)
            self.blas_modes.extend(modes)
        except BaseException:
            self.close()
            raise
        return self

    def _fork_replicas(self, ranks):
        """Fork + handshake replicas for ``ranks``; no pool locks held.

        Returns ``(procs, conns, blas_modes)`` fully initialised — every
        child has sent ``ready`` — or tears the partial set down and
        re-raises.  The new children are *not* registered with the pool;
        the caller does that (under the dispatch lock for scale-up).
        """
        ctx = multiprocessing.get_context("fork")
        procs, conns = [], []
        try:
            for rank in ranks:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=self._replica_loop, args=(rank, child_conn),
                    name=f"repro-serve-{rank}", daemon=True)
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
            modes = []
            for proc, conn in zip(procs, conns):
                reply = _handshake(proc, conn, timeout=30.0)
                if reply[0] != "ready":
                    raise ParallelWorkerError(
                        f"replica {proc.name} failed to initialise: "
                        f"{reply!r}")
                modes.append(reply[2])
        except BaseException:
            _stop_replicas(procs, conns)
            raise
        return procs, conns, modes

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def close(self):
        """Drain the replicas and release shared memory (idempotent).

        The whole teardown runs under the dispatch lock: a concurrent
        :meth:`predict` either completes against the live pool before
        teardown starts, or observes ``_closed`` and raises cleanly —
        it can never see half-closed pipes or an unmapped parameter
        block mid-request.  Replicas never take this lock, so holding
        it across the bounded joins cannot deadlock.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            _stop_replicas(self._procs, self._conns)
            self._conns = []
            self._procs = []
            if self._param_block is not None:
                # Re-privatise the weights so the model outlives the
                # pool.
                for param in self._params:
                    if param.data.base is not None:
                        param.data = param.data.copy()
                    param.grad = None
                self._param_block.close()
                self._param_block = None
            if self._io_block is not None:
                self._io_block.close()
                self._io_block = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    @property
    def generation(self):
        """Parameter-buffer generation (bumps once per checkpoint install)."""
        with self._lock:
            if self._param_block is None:
                raise RuntimeError("pool is not running")
            return int(self._param_block["generation"][0])

    def predict(self, batch: SampleBatch):
        """One batched forward, sharded across the replicas.

        Returns ``(predictions, generation)`` where row ``i`` of
        ``predictions`` is the forecast for sample ``i`` and
        ``generation`` is the parameter generation that served the
        whole batch.  A request larger than the shared slot capacity is
        served in ``max_batch`` chunks *under the same lock*, so even
        an oversized request is answered by exactly one generation —
        the install path cannot interleave with any part of it.
        """
        n = len(batch)
        if n == 0:
            raise ValueError("cannot serve an empty batch")
        with self._lock:
            if self._closed or not self._started:
                raise RuntimeError("pool is not running")
            # Inline read: the generation property takes the (non-
            # reentrant) dispatch lock, which this thread already holds.
            generation = int(self._param_block["generation"][0])
            generations = set()
            pieces = []
            for begin in range(0, n, self.max_batch):
                pieces.append(self._predict_chunk(
                    batch.slice(begin, begin + self.max_batch), generations))
            prediction = pieces[0] if len(pieces) == 1 \
                else np.concatenate(pieces, axis=0)
        # Every shard of every chunk must have been served by the live
        # generation: installs are mutually excluded with this call.
        assert generations <= {generation}
        return prediction, generation

    def _predict_chunk(self, chunk, generations):
        """Shard one slot-sized chunk across the replicas (lock held)."""
        n = len(chunk)
        io = self._io_block.arrays
        for field in _BATCH_FIELDS:
            io[field][:n] = getattr(chunk, field)
        bounds = shard_bounds(n, self.replicas)
        for rank, conn in enumerate(self._conns):
            start, stop = bounds[rank]
            conn.send(("predict", start, stop))
        for rank, conn in enumerate(self._conns):
            reply = self._recv(rank, conn)
            if reply[0] != "ok":
                raise ParallelWorkerError(
                    f"replica {rank} failed: {reply[1]}")
            generations.add(reply[1])
        return io["out"][:n].copy()

    def install(self, state_dict):
        """Hot-swap the shared weights in place; returns the new generation.

        Writes once into the flat buffer (``load_state_dict`` assigns
        into the existing views) while no replica is computing — the
        lock excludes :meth:`predict` — then bumps the generation
        counter.  No replica ever observes a torn parameter state.
        """
        with self._lock:
            if self._closed or not self._started:
                raise RuntimeError("pool is not running")
            self.model.load_state_dict(state_dict)
            self._param_block["generation"][0] += 1
            return int(self._param_block["generation"][0])

    # ------------------------------------------------------------------
    # Elastic scaling
    # ------------------------------------------------------------------
    @property
    def size(self):
        """Live replica count (scaling changes it; :attr:`replicas` tracks)."""
        with self._lock:
            return len(self._procs)

    def scale_to(self, replicas):
        """Grow or shrink the pool to ``replicas`` live processes.

        Scaling never tears parameter state: new replicas fork from the
        parent and alias the *same* shared parameter block (MAP_SHARED
        survives fork), so they serve the current generation from their
        first request — no weight copy, no broadcast, no generation
        skew.  Shrinking stops the highest ranks under the dispatch
        lock, so an in-flight ``predict`` either completes on the old
        shard layout or starts on the new one, never half of each.

        Growth forks and handshakes the new children *outside* the
        dispatch lock — serving continues on the old replicas while the
        new ones come up — and registers them under the lock once they
        are ready.  Not safe to call concurrently with itself (the
        autoscaler is a single thread); safe against concurrent
        ``predict``/``install``/``close``.

        Returns the new live replica count.
        """
        replicas = int(replicas)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1; got {replicas}")
        with self._lock:
            if self._closed or not self._started:
                raise RuntimeError("pool is not running")
            current = len(self._procs)
            if replicas == current:
                return current
            if replicas < current:
                removed_procs = self._procs[replicas:]
                removed_conns = self._conns[replicas:]
                del self._procs[replicas:]
                del self._conns[replicas:]
                del self.blas_modes[replicas:]
                self.replicas = replicas
                # Same discipline as close(): replicas never take this
                # lock, so stopping them while holding it cannot
                # deadlock, and no dispatch can race the teardown.
                _stop_replicas(removed_procs, removed_conns)
                return replicas
        # Scale-up: fork with no pool lock held (fork-safety — a child
        # must never inherit a held lock) and while serving continues.
        procs, conns, modes = self._fork_replicas(
            range(current, replicas))
        with self._lock:
            if not self._closed and self._started \
                    and len(self._procs) == current:
                self._procs.extend(procs)
                self._conns.extend(conns)
                self.blas_modes.extend(modes)
                self.replicas = len(self._procs)
                return self.replicas
        # Lost the race with close() (or a concurrent scale, which the
        # contract forbids): the spawned children must not outlive the
        # decision, so stop them before reporting failure.
        _stop_replicas(procs, conns)
        raise RuntimeError("pool closed while scaling up")

    def _recv(self, rank, conn, timeout=None):
        from time import perf_counter
        deadline = None if timeout is None else perf_counter() + timeout
        while not conn.poll(0.2):
            if not self._procs[rank].is_alive():
                raise ParallelWorkerError(
                    f"replica {rank} died (exit code "
                    f"{self._procs[rank].exitcode}) without replying")
            if deadline is not None and perf_counter() > deadline:
                raise ParallelWorkerError(
                    f"replica {rank} did not reply within {timeout:.0f}s")
        try:
            return conn.recv()
        except EOFError as exc:
            raise ParallelWorkerError(
                f"replica {rank} closed its pipe mid-request") from exc

    # ------------------------------------------------------------------
    # Replica side (runs in the forked child)
    # ------------------------------------------------------------------
    def _replica_loop(self, rank, conn):
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, signal.SIG_IGN)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _tensor_core._set_profiler(None)
        _tensor_core._set_trace_hook(None)
        blas_mode = limit_blas_threads(self.blas_threads)
        self.model.eval()
        # Forked child: the parent's dispatch lock has no meaning here —
        # BSP message ordering (parent sends "predict" only while every
        # replica is idle) is what excludes concurrent access.
        io = self._io_block.arrays  # lint: ignore[guarded-field]
        gen = self._param_block["generation"]  # lint: ignore[guarded-field]
        conn.send(("ready", rank, blas_mode))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, KeyboardInterrupt):
                break
            if msg[0] == "stop":
                break
            if msg[0] != "predict":  # pragma: no cover - unknown command
                continue
            _, start, stop = msg
            try:
                if stop > start:
                    shard = SampleBatch(**{
                        field: io[field][start:stop]
                        for field in _BATCH_FIELDS})
                    with no_grad():
                        io["out"][start:stop] = self.model.predict(shard)
                conn.send(("ok", int(gen[0])))
            except BaseException as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
