"""Serving instrumentation: per-request latency + per-batch telemetry.

:class:`LatencyStats` accumulates one sample per served request (queue
wait + forward + dispatch) and one record per micro-batched forward.
Percentiles are computed on demand over everything recorded so far, so
the snapshot a benchmark takes after a load run covers the whole run.

Thread safety: ``record_*`` is called from the batcher thread while
``snapshot()`` may be called from any client thread, so mutation happens
under a lock.  The recording path is two appends and a few float adds —
cheap enough to sit on the serving hot path.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.inspect import sanitizer

__all__ = ["LatencyStats"]


class LatencyStats:
    """Accumulates request latencies and micro-batch shapes."""

    def __init__(self):
        self._lock = sanitizer.create_lock("LatencyStats._lock")
        self._latencies = []      # seconds, one per completed request
        self._queue_waits = []    # seconds, one per completed request
        self._batch_sizes = []    # coalesced requests per forward
        self._forward_s = 0.0     # cumulative model time across batches
        self._started = perf_counter()
        self._requests = 0
        self._samples = 0

    # -- recording (batcher thread) ------------------------------------
    def record_batch(self, batch_requests, batch_samples, forward_seconds,
                     queue_waits, latencies):
        """One micro-batched forward: shape, model time, per-request times."""
        with self._lock:
            self._batch_sizes.append(batch_requests)
            self._forward_s += forward_seconds
            self._requests += batch_requests
            self._samples += batch_samples
            self._queue_waits.extend(queue_waits)
            self._latencies.extend(latencies)

    def reset_clock(self):
        """Restart the wall-clock window ``snapshot()`` derives qps from."""
        with self._lock:
            self._started = perf_counter()

    # -- reading -------------------------------------------------------
    def snapshot(self):
        """JSON-able summary: percentiles, throughput, batching shape."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=float)
            waits = np.asarray(self._queue_waits, dtype=float)
            sizes = np.asarray(self._batch_sizes, dtype=float)
            elapsed = perf_counter() - self._started
            requests = self._requests
            samples = self._samples
            forward_s = self._forward_s
        if len(latencies) == 0:
            return {
                "requests": 0, "samples": 0, "batches": 0,
                "elapsed_s": elapsed, "queries_per_sec": 0.0,
                "latency_ms": None, "queue_wait_ms": None,
                "batch_size": None, "forward_s": forward_s,
            }
        return {
            "requests": int(requests),
            "samples": int(samples),
            "batches": int(len(sizes)),
            "elapsed_s": float(elapsed),
            "queries_per_sec": float(requests / max(elapsed, 1e-9)),
            "latency_ms": {
                "p50": float(np.percentile(latencies, 50) * 1e3),
                "p99": float(np.percentile(latencies, 99) * 1e3),
                "max": float(latencies.max() * 1e3),
                "mean": float(latencies.mean() * 1e3),
            },
            "queue_wait_ms": {
                "p50": float(np.percentile(waits, 50) * 1e3),
                "p99": float(np.percentile(waits, 99) * 1e3),
            },
            "batch_size": {
                "mean": float(sizes.mean()),
                "max": int(sizes.max()),
            },
            "forward_s": float(forward_s),
        }
