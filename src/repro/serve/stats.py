"""Serving instrumentation: per-request latency + per-batch telemetry.

:class:`LatencyStats` accumulates one sample per served request (queue
wait + forward + dispatch) and one record per micro-batched forward.
Counts, means, and maxima are exact running aggregates; percentiles are
computed over fixed-size **reservoir samples** (Vitter's Algorithm R
with a seeded generator, so two identical runs produce identical
snapshots).  The reservoirs bound the memory of an arbitrarily long
serving run — the PR-8 bounded-buffer discipline — at a cost of
sampling noise on the percentiles only; everything else in
:meth:`snapshot` stays exact.

Thread safety: ``record_*`` is called from the batcher thread while
``snapshot()`` may be called from any client thread, so mutation happens
under a lock.  The recording path is a few appends/float adds — cheap
enough to sit on the serving hot path — and ``snapshot()`` holds the
lock only long enough to *copy* the bounded reservoirs; the
``np.percentile`` work runs on the copies after the lock is released,
so a recording thread never stalls behind a snapshot.

The trailing window of queue waits (:meth:`recent_queue_wait_ms`) feeds
the :class:`~repro.serve.autoscale.AutoScaler`: unlike the whole-run
reservoir it must reflect *current* pressure, so it is a bounded deque
of the newest samples.
"""

from __future__ import annotations

import random
from collections import deque
from time import perf_counter

import numpy as np

from repro.inspect import sanitizer

__all__ = ["LatencyStats"]

#: Reservoir capacity: large enough that p99 over a full benchmark run
#: is stable, small enough that a week of serving holds ~100 KiB.
_RESERVOIR_CAPACITY = 4096

#: Trailing queue-wait window for load-pressure telemetry.
_RECENT_WINDOW = 256


class _Reservoir:
    """Fixed-size uniform sample of an unbounded stream (Algorithm R).

    Deterministic: the replacement positions come from a private seeded
    generator, so identical input streams yield identical reservoirs.
    """

    __slots__ = ("capacity", "values", "seen", "_rng")

    def __init__(self, capacity, seed):
        self.capacity = int(capacity)
        self.values = []
        self.seen = 0
        self._rng = random.Random(seed)

    def add(self, value):
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.values[slot] = value


class LatencyStats:
    """Accumulates request latencies and micro-batch shapes, bounded."""

    def __init__(self, reservoir_capacity=_RESERVOIR_CAPACITY, seed=0):
        self._lock = sanitizer.create_lock("LatencyStats._lock")
        # Percentile reservoirs (bounded; seeds offset so the three
        # streams do not share replacement patterns).
        self._latencies = _Reservoir(reservoir_capacity, seed)
        self._queue_waits = _Reservoir(reservoir_capacity, seed + 1)
        self._batch_sizes = _Reservoir(reservoir_capacity, seed + 2)
        # Exact running aggregates.
        self._forward_s = 0.0     # cumulative model time across batches
        self._started = perf_counter()
        self._requests = 0
        self._samples = 0
        self._batches = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._batch_max = 0
        # Trailing queue waits for the autoscaler's pressure signal.
        self._recent_waits = deque(maxlen=_RECENT_WINDOW)

    # -- recording (batcher thread) ------------------------------------
    def record_batch(self, batch_requests, batch_samples, forward_seconds,
                     queue_waits, latencies):
        """One micro-batched forward: shape, model time, per-request times."""
        with self._lock:
            self._batches += 1
            self._batch_sizes.add(batch_requests)
            self._batch_max = max(self._batch_max, int(batch_requests))
            self._forward_s += forward_seconds
            self._requests += batch_requests
            self._samples += batch_samples
            for wait in queue_waits:
                self._queue_waits.add(wait)
                self._recent_waits.append(wait)
            for latency in latencies:
                self._latencies.add(latency)
                self._latency_sum += latency
                if latency > self._latency_max:
                    self._latency_max = latency

    def reset_clock(self):
        """Restart the wall-clock window ``snapshot()`` derives qps from."""
        with self._lock:
            self._started = perf_counter()

    # -- reading -------------------------------------------------------
    def recent_queue_wait_ms(self):
        """Mean queue wait over the trailing window, in ms (None if empty).

        This is the autoscaler's pressure signal: unlike the whole-run
        percentiles it tracks *current* load, forgetting history beyond
        the last ``_RECENT_WINDOW`` requests.
        """
        with self._lock:
            if not self._recent_waits:
                return None
            return 1e3 * sum(self._recent_waits) / len(self._recent_waits)

    def snapshot(self):
        """JSON-able summary: percentiles, throughput, batching shape.

        The lock is held only to copy the bounded reservoirs and read
        the counters; percentile computation happens on the copies.
        """
        with self._lock:
            latencies = list(self._latencies.values)
            waits = list(self._queue_waits.values)
            elapsed = perf_counter() - self._started
            requests = self._requests
            samples = self._samples
            batches = self._batches
            forward_s = self._forward_s
            latency_sum = self._latency_sum
            latency_max = self._latency_max
            batch_max = self._batch_max
        if not latencies:
            return {
                "requests": 0, "samples": 0, "batches": 0,
                "elapsed_s": elapsed, "queries_per_sec": 0.0,
                "latency_ms": None, "queue_wait_ms": None,
                "batch_size": None, "forward_s": forward_s,
            }
        latencies = np.asarray(latencies, dtype=float)
        waits = np.asarray(waits, dtype=float)
        return {
            "requests": int(requests),
            "samples": int(samples),
            "batches": int(batches),
            "elapsed_s": float(elapsed),
            "queries_per_sec": float(requests / max(elapsed, 1e-9)),
            "latency_ms": {
                "p50": float(np.percentile(latencies, 50) * 1e3),
                "p99": float(np.percentile(latencies, 99) * 1e3),
                "max": float(latency_max * 1e3),
                "mean": float(latency_sum / requests * 1e3),
            },
            "queue_wait_ms": {
                "p50": float(np.percentile(waits, 50) * 1e3),
                "p99": float(np.percentile(waits, 99) * 1e3),
            },
            "batch_size": {
                "mean": float(requests / batches),
                "max": int(batch_max),
            },
            "forward_s": float(forward_s),
        }
