"""The forecast server: micro-batching + replicas + streaming windows.

:class:`ForecastServer` is the facade the CLI, the latency benchmark,
and embedding applications use.  It composes the serving subsystem:

- a :class:`~repro.serve.batcher.MicroBatcher` coalescing concurrent
  requests into one tape-free forward (``max_batch`` / ``max_wait_ms``);
- optionally a :class:`~repro.serve.pool.ReplicaPool` of forked
  replicas sharing one flat parameter buffer (``replicas >= 1``); with
  ``replicas=0`` forwards run in-process, which is the right choice on
  single-core hosts;
- optionally a :class:`~repro.serve.cache.WindowCache` maintaining the
  rolling closeness/period/trend windows of a live flow stream
  (``periodicity`` given), so ``push_tick`` + ``forecast_next`` serve
  next-interval forecasts without re-slicing history;
- optionally a :class:`~repro.serve.results.ForecastCache` memoizing
  completed streaming forecasts per ``(target index, generation)`` with
  single-flight dedup (``result_cache >= 1``), invalidated on every
  clock advance and on hot swap;
- optionally an :class:`~repro.serve.autoscale.AutoScaler` resizing the
  replica pool between ``[min_replicas, max_replicas]`` from
  queue-depth/queue-wait telemetry (``max_replicas >= 1``);
- :class:`~repro.serve.stats.LatencyStats` and the active
  :class:`~repro.profiling.OpProfiler`'s serve counters for
  p50/p99/throughput instrumentation.

Checkpoint hot-swap (:meth:`load_checkpoint`) installs verified weights
with **one write** — into the shared flat buffer under the pool's
dispatch lock, or into the in-process parameters under the forward
lock — and bumps a generation counter.  In-flight requests complete on
the generation they started with; no request is ever served a torn
parameter state (see ``docs/serving.md`` for the protocol).

Consistency contract: for any interleaving of concurrent requests, the
served rows equal the single-request offline forward
(``Trainer.predict_scaled``) to float tolerance — enforced in CI by
``benchmarks/bench_serve_latency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.windows import SampleBatch
from repro.inspect import sanitizer
from repro.profiling import get_active_profiler
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import WindowCache
from repro.serve.results import ForecastCache
from repro.serve.stats import LatencyStats
from repro.tensor import no_grad
from repro.training.checkpoint import read_weights

__all__ = ["ForecastServer", "ServeConfig"]


@dataclass
class ServeConfig:
    """Serving knobs (see ``docs/serving.md`` for tuning guidance)."""

    max_batch: int = 32      # samples coalesced per forward
    max_wait_ms: float = 2.0  # batching window after the first request
    replicas: int = 0        # forked replicas; 0 = in-process forwards
    blas_threads: int = 1    # BLAS cap inside each replica
    # Graph-compiled forwards (repro.compile.ForwardCompiler): record
    # predict once per coalesced batch size, replay a fused tape-free
    # kernel schedule against a liveness-packed arena.  In-process only
    # (replicas = 0); validated bitwise against eager per plan, with
    # automatic per-size eager fallback.  See docs/performance.md.
    compile: bool = False
    # Generation-aware forecast result cache (repro.serve.results):
    # completed streaming forecasts memoized per (target index,
    # parameter generation) with single-flight dedup.  0 disables.
    result_cache: int = 8
    # Load-adaptive replica autoscaling (repro.serve.autoscale): with
    # max_replicas >= 1 the server runs an AutoScaler growing/shrinking
    # the pool between [min_replicas, max_replicas] from queue-depth
    # and queue-wait telemetry.  Requires a replica pool (replicas >= 1
    # is the starting size).  0/0 disables.
    min_replicas: int = 0
    max_replicas: int = 0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0; got {self.max_wait_ms}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0; got {self.replicas}")
        if self.blas_threads < 1:
            raise ValueError(
                f"blas_threads must be >= 1; got {self.blas_threads}")
        if self.compile and self.replicas >= 1:
            raise ValueError(
                "compile=True requires replicas=0: compiled forwards "
                "replay in-process against pinned model parameters")
        if self.result_cache < 0:
            raise ValueError(
                f"result_cache must be >= 0; got {self.result_cache}")
        if (self.min_replicas > 0) != (self.max_replicas > 0):
            raise ValueError(
                "autoscaling needs both min_replicas and max_replicas "
                f"(got min={self.min_replicas}, max={self.max_replicas})")
        if self.max_replicas > 0:
            if self.replicas < 1:
                raise ValueError(
                    "autoscaling needs a replica pool: set replicas >= 1 "
                    "as the starting size")
            if not (self.min_replicas <= self.replicas
                    <= self.max_replicas):
                raise ValueError(
                    f"need min_replicas <= replicas <= max_replicas; got "
                    f"{self.min_replicas} <= {self.replicas} <= "
                    f"{self.max_replicas}")


class ForecastServer:
    """Serve forecasts from one model with micro-batching and hot swap.

    Parameters
    ----------
    model:
        A forecaster following the repo protocol
        (``predict(SampleBatch) -> (N, 2, H, W)``).
    config:
        A :class:`ServeConfig`; defaults apply when omitted.
    scaler:
        Optional fitted :class:`~repro.data.scaler.MinMaxScaler`;
        enables :meth:`forecast_flows` (flow units) and makes
        :meth:`push_tick` accept raw flows.
    periodicity:
        Optional :class:`~repro.data.periodicity.MultiPeriodicity`;
        enables the streaming API (:meth:`push_tick` /
        :meth:`forecast_next`) through a :class:`WindowCache`.
    frame_shape:
        Frame shape for the stream cache, e.g. ``(2, H, W)``; required
        with ``periodicity``.
    template:
        A representative :class:`SampleBatch` (any length) used to size
        the replica pool's shared request slots; required when
        ``config.replicas >= 1``.
    """

    def __init__(self, model, config: ServeConfig = None, scaler=None,
                 periodicity=None, frame_shape=None, template=None):
        self.model = model
        self.config = config if config is not None else ServeConfig()
        self.scaler = scaler
        parameters = model.parameters() if hasattr(model, "parameters") else []
        self._dtype = parameters[0].data.dtype if parameters else None
        self.stats = LatencyStats()
        self._forward_lock = sanitizer.create_lock("ForecastServer._forward_lock")
        self._generation = 0
        # Staleness / degraded-mode telemetry (repro.stream): a stream
        # clock counting ticks observed, the clock value when the
        # serving weights were installed, and an operator flag naming
        # why the model's answers are currently suspect (drift
        # confirmed, retrain in flight, swap failed, ...).
        self._ticks_seen = 0
        self._generation_tick = 0
        self._degraded_reason = None
        self._pool = None
        self._compiler = None
        if self.config.compile:
            from repro.compile import ForwardCompiler

            self._compiler = ForwardCompiler(
                model, profiler=get_active_profiler())
        self._template = template
        self._batcher = None
        self._started = False
        self._closed = False
        self.autoscaler = None
        #: Generation-aware forecast result cache (None when disabled).
        self.results = ForecastCache(self.config.result_cache) \
            if self.config.result_cache >= 1 else None
        self.cache = None
        if periodicity is not None:
            if frame_shape is None:
                raise ValueError("periodicity requires frame_shape")
            self.cache = WindowCache(periodicity, frame_shape,
                                     dtype=self._dtype)
            # Every clock advance (tick or gap) obsoletes memoized
            # forecasts for older target indices.
            if self.results is not None:
                self.cache.on_advance = self._on_window_advance
        if self.config.replicas >= 1 and template is None:
            raise ValueError(
                "replicas >= 1 requires a template SampleBatch to size "
                "the shared request slots")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Fork the replica pool (if any) and start the batcher."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if hasattr(self.model, "eval"):
            self.model.eval()
        if self.config.replicas >= 1:
            from repro.serve.pool import ReplicaPool

            self._pool = ReplicaPool(
                self.model, self._template, self.config.replicas,
                self.config.max_batch,
                blas_threads=self.config.blas_threads).start()
        self._batcher = MicroBatcher(
            self._forward, max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms, on_batch=self._on_batch)
        if self.config.max_replicas > 0:
            from repro.serve.autoscale import AutoScaleConfig, AutoScaler

            self.autoscaler = AutoScaler(self, AutoScaleConfig(
                min_replicas=self.config.min_replicas,
                max_replicas=self.config.max_replicas)).start()
        self.stats.reset_clock()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def close(self):
        """Drain pending requests, stop the batcher, drain the pool."""
        if self._closed:
            return
        self._closed = True
        # Autoscaler first: no scale decision may race pool teardown.
        if self.autoscaler is not None:
            self.autoscaler.close()
        if self._batcher is not None:
            self._batcher.close()
        if self._pool is not None:
            self._pool.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _forward(self, batch: SampleBatch):
        """One coalesced tape-free forward (batcher thread)."""
        if self._dtype is not None and batch.target.dtype != self._dtype:
            batch = batch.astype(self._dtype)
        if self._pool is not None:
            prediction, _generation = self._pool.predict(batch)
            return prediction
        with self._forward_lock:
            if self._compiler is not None:
                return self._compiler.forward(batch)
            with no_grad():
                return np.asarray(self.model.predict(batch))

    def _on_batch(self, requests, samples, forward_s, waits, latencies):
        self.stats.record_batch(requests, samples, forward_s, waits,
                                latencies)
        profiler = get_active_profiler()
        if profiler is not None:
            profiler._record_serve_batch(forward_s, requests, sum(waits))

    def submit(self, batch: SampleBatch):
        """Enqueue a request; returns a future of its prediction rows."""
        if not self._started or self._closed:
            raise RuntimeError("server is not running; use it as a context "
                               "manager or call start()")
        return self._batcher.submit(batch)

    def forecast(self, batch: SampleBatch):
        """Blocking scaled-space forecast for ``batch``."""
        return self.submit(batch).result()

    def forecast_flows(self, batch: SampleBatch):
        """Blocking forecast mapped back to flow units."""
        if self.scaler is None:
            raise ValueError("forecast_flows needs a fitted scaler")
        return self.scaler.inverse_transform(self.forecast(batch))

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------
    def push_tick(self, frame):
        """Observe one stream tick; returns ticks seen so far.

        With a ``scaler``, ``frame`` is raw flows and is scaled into
        model space; otherwise it must already be scaled.
        """
        if self.cache is None:
            raise ValueError("streaming needs periodicity + frame_shape")
        if self.scaler is not None:
            frame = self.scaler.transform(frame)
        self._ticks_seen += 1
        return self.cache.push(frame)

    def push_gap(self):
        """Record one unobserved interval (the streaming gap contract)."""
        if self.cache is None:
            raise ValueError("streaming needs periodicity + frame_shape")
        self._ticks_seen += 1
        return self.cache.push_gap()

    def _on_window_advance(self, count):
        """WindowCache callback: a clock advance obsoletes cached results."""
        self.results.invalidate("tick")

    def note_tick(self):
        """Advance the staleness clock without touching the cache.

        The stream runtime (:mod:`repro.stream`) maintains its own
        raw-frame :class:`WindowCache` and uses the server only for
        forwards and hot swaps; it calls this per ingested tick so
        :attr:`staleness_ticks` still measures weight age.
        """
        self._ticks_seen += 1
        return self._ticks_seen

    def forecast_next(self):
        """Forecast the next unobserved interval from the cached windows.

        Returns ``(prediction, index)`` — the scaled ``(2, H, W)``
        forecast and the target interval index it is for.  The array is
        a private writable copy; for the zero-copy shared path use
        :meth:`forecast_tick`.
        """
        prediction, index, _generation = self.forecast_tick()
        return prediction.copy(), index

    def forecast_tick(self):
        """Next-interval forecast through the forecast result cache.

        Returns ``(prediction, index, generation)``.  With the result
        cache enabled, concurrent requests for the same ``(index,
        generation)`` cost exactly **one** model forward: the first
        requester owns the forward, everyone else joins its future, and
        later requests hit the memo — all receiving the *same*
        read-only array (bit-identical by construction).  The memo is
        dropped on every clock advance (``push_tick``/``push_gap``) and
        on checkpoint hot swap, so a stale generation is never served.

        The returned array is shared and read-only; copy before
        mutating.
        """
        if self.cache is None:
            raise ValueError("streaming needs periodicity + frame_shape")
        if self.results is None:
            sample = self.cache.sample()
            return (self.forecast(sample)[0], int(sample.indices[0]),
                    self.generation)
        # Read the generation BEFORE the forward: the key must name the
        # weights the caller observed when asking.  If a hot swap lands
        # between this read and the forward, the computed value is a
        # pure new-generation forecast — fine to deliver (the swap
        # contract: a racing request matches one of the two pure
        # generations) but wrong to memoize under the old key, so the
        # owner rechecks the generation before storing.
        generation = self.generation
        index = self.cache.next_index
        key = (index, generation)
        kind, token = self.results.lookup(key)
        profiler = get_active_profiler()
        if profiler is not None:
            profiler._record_serve_cache(hit=kind != "owner")
        if kind == "hit":
            return token, index, generation
        if kind == "join":
            return token.result(), index, generation
        try:
            sample = self.cache.sample()
            if int(sample.indices[0]) != index:
                # The clock advanced between the lookup and the window
                # snapshot; the sampled windows target a newer index, so
                # this key can no longer be computed.  Fail the joiners
                # (they raced a push; their tick is gone) rather than
                # publish a mismatched artifact.
                raise RuntimeError(
                    f"stream advanced past tick {index} mid-request")
            prediction = self.forecast(sample)[0]
        except BaseException as exc:
            self.results.fail(key, exc)
            raise
        store = self.generation == generation
        value = self.results.complete(key, prediction, store=store)
        return value, index, generation

    def forecast_cell(self, row, col):
        """Next-interval in/outflow forecast for one grid cell.

        Returns ``(values, index, generation)`` with ``values`` the
        ``(2,)`` scaled in/outflow pair, sliced from the *shared*
        cached full-grid forecast — N cells at one tick cost one model
        forward, not N.
        """
        prediction, index, generation = self.forecast_tick()
        return prediction[:, int(row), int(col)].copy(), index, generation

    # ------------------------------------------------------------------
    # Checkpoint hot swap
    # ------------------------------------------------------------------
    @property
    def generation(self):
        """Parameter generation: bumps exactly once per weight install."""
        if self._pool is not None:
            return self._pool.generation
        return self._generation

    def load_checkpoint(self, path):
        """Hot-swap verified checkpoint weights; returns the new generation.

        Inference-only: the archive needs no optimizer state.  The
        weights are written **once**, in place — into the replica
        pool's shared flat buffer (all replicas see the swap at their
        next request) or into the in-process parameters — while no
        forward is in flight, so a concurrent request stream observes
        either the old or the new generation, never a mixture.
        """
        state = read_weights(path)
        if self._pool is not None:
            generation = self._pool.install(state)
        else:
            with self._forward_lock:
                self.model.load_state_dict(state)
                self._generation += 1
                generation = self._generation
        self._generation_tick = self._ticks_seen
        if self.results is not None:
            # The generation bump already made the old keys unreachable;
            # dropping them reclaims the memory now and guarantees no
            # stale-generation artifact survives the swap.
            self.results.invalidate("swap")
        return generation

    # ------------------------------------------------------------------
    # Load telemetry + elastic scaling (repro.serve.autoscale)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self):
        """Requests currently waiting in the micro-batcher (approximate)."""
        return self._batcher.depth if self._batcher is not None else 0

    def recent_queue_wait_ms(self):
        """Mean queue wait over the trailing request window, in ms."""
        return self.stats.recent_queue_wait_ms()

    @property
    def replica_count(self):
        """Live replica processes (0 for in-process forwards)."""
        return self._pool.size if self._pool is not None else 0

    def scale_replicas(self, replicas):
        """Resize the replica pool; returns the new live count.

        Scaling reuses the pool's shared-parameter machinery — new
        replicas alias the existing generation-counted weight buffer —
        so a scale event can never tear parameter state.
        """
        if self._pool is None:
            raise RuntimeError(
                "scaling requires a replica pool (start with replicas "
                ">= 1)")
        return self._pool.scale_to(replicas)

    # ------------------------------------------------------------------
    # Staleness / degraded mode (repro.stream)
    # ------------------------------------------------------------------
    @property
    def staleness_ticks(self):
        """Stream ticks observed since the serving weights were installed."""
        return self._ticks_seen - self._generation_tick

    @property
    def degraded(self):
        """The active degradation reason, or ``None`` when healthy."""
        return self._degraded_reason

    def mark_degraded(self, reason):
        """Flag the model's answers as suspect (e.g. confirmed drift).

        The server keeps answering — degradation is a *telemetry* state
        consumed by the stream runtime's fallback ladder, not a refusal
        to serve.  ``reason`` names why (shown in :meth:`snapshot`).
        """
        self._degraded_reason = str(reason)

    def clear_degraded(self):
        """Clear the degradation flag (e.g. after a successful swap)."""
        self._degraded_reason = None

    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-able serving telemetry (latency stats + configuration)."""
        snap = self.stats.snapshot()
        snap.update({
            "generation": self.generation,
            "replicas": self.config.replicas,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "staleness_ticks": self.staleness_ticks,
            "degraded": self._degraded_reason,
        })
        if self._pool is not None:
            snap["shared_mib"] = round(self._pool.shared_bytes / 2**20, 3)
            snap["blas_modes"] = list(self._pool.blas_modes)
            snap["live_replicas"] = self.replica_count
        if self._compiler is not None:
            snap["compile"] = self._compiler.report()
        if self.results is not None:
            snap["result_cache"] = self.results.snapshot()
        if self.autoscaler is not None:
            snap["autoscaler"] = self.autoscaler.snapshot()
        return snap
