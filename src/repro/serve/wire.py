"""Length-prefixed JSON framing for the socket serving protocol.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The format is deliberately boring: it survives
any transport that preserves byte order (TCP, Unix sockets, pipes),
needs no external dependency, and is trivially implementable from any
language.  Both the blocking side (:func:`send_frame` /
:func:`recv_frame` over ``socket`` objects) and the asyncio side
(:func:`read_frame_async` over a ``StreamReader``) live here so the
front-end, the :class:`~repro.serve.frontend.ForecastClient`, and the
:class:`~repro.stream.ticks.SocketTickSource` share one definition.

Float fidelity: arrays are shipped as nested JSON lists.  Python's
``repr``-based float serialisation round-trips IEEE-754 doubles
exactly, and every float32 is exactly representable as a double, so an
array encoded with :func:`array_payload` and decoded with
:func:`payload_array` is **bit-identical** to the original — the
property the benchmark's socket arm gates (socket-served rows equal
in-process rows with zero tolerance).

A frame larger than ``max_frame_bytes`` raises :class:`FrameError`
*before* any allocation: a corrupt or hostile length prefix must not
let a client allocate gigabytes server-side.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

__all__ = [
    "FrameError", "MAX_FRAME_BYTES", "encode_frame", "send_frame",
    "recv_frame", "read_frame_async", "array_payload", "payload_array",
    "connect", "format_address", "parse_address",
]

_HEADER = struct.Struct(">I")

#: Default per-frame size cap (64 MiB covers a full-grid forecast at
#: any realistic geometry with a wide margin).
MAX_FRAME_BYTES = 64 * 2**20


class FrameError(RuntimeError):
    """A malformed, truncated, or oversized wire frame."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(payload, max_frame_bytes=MAX_FRAME_BYTES):
    """Serialise one JSON payload to ``header + body`` bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte "
            "cap")
    return _HEADER.pack(len(body)) + body


def array_payload(array):
    """JSON-able description of an ndarray (shape + dtype + values)."""
    array = np.asarray(array)
    return {
        "shape": list(array.shape),
        "dtype": str(array.dtype),
        "data": array.tolist(),
    }


def payload_array(payload):
    """Rebuild the ndarray described by :func:`array_payload`."""
    try:
        array = np.asarray(payload["data"], dtype=np.dtype(payload["dtype"]))
        return array.reshape([int(s) for s in payload["shape"]])
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"malformed array payload: {exc}") from exc


# ----------------------------------------------------------------------
# Blocking socket I/O
# ----------------------------------------------------------------------
def send_frame(sock, payload, max_frame_bytes=MAX_FRAME_BYTES):
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload, max_frame_bytes=max_frame_bytes))


def _recv_exactly(sock, n):
    """Read exactly ``n`` bytes; returns None on clean EOF at byte 0."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise FrameError(
                f"connection closed mid-frame ({got} of {n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock, max_frame_bytes=MAX_FRAME_BYTES):
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte cap")
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("connection closed between header and body")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc


# ----------------------------------------------------------------------
# Asyncio I/O
# ----------------------------------------------------------------------
async def read_frame_async(reader, max_frame_bytes=MAX_FRAME_BYTES):
    """Read one frame from an asyncio StreamReader; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed between header and body") from exc
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
def parse_address(spec):
    """Parse ``HOST:PORT`` or ``unix:PATH`` into an address value.

    Returns ``(host, port)`` for TCP or the path string for a Unix
    socket (the form every helper here and the front-end accept).
    """
    if isinstance(spec, (tuple, list)):
        host, port = spec
        return str(host), int(port)
    spec = str(spec)
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a socket path")
        return path
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen address must be HOST:PORT or unix:PATH; got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"invalid port in listen address {spec!r}")


def format_address(address):
    """Render an address value back to its ``HOST:PORT``/``unix:`` spec."""
    if isinstance(address, str):
        return f"unix:{address}"
    host, port = address
    return f"{host}:{port}"


def connect(address, timeout=10.0):
    """Open a blocking socket to a TCP tuple or Unix-socket path."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
        return sock
    host, port = address
    return socket.create_connection((host, int(port)), timeout=timeout)
