"""Asyncio socket front-end: network clients for a ForecastServer.

The serving core (:class:`~repro.serve.server.ForecastServer`) is a
threaded, in-process component.  :class:`SocketFrontend` puts it on
the network: an asyncio TCP or Unix-socket listener speaking the
length-prefixed JSON protocol of :mod:`repro.serve.wire`, bridging
each request from the event loop onto the threaded micro-batcher
through a bounded executor (``loop.run_in_executor``), so one slow
forward never blocks the loop from accepting, reading, or answering
other connections.

Design points:

- **Bounded admission.**  At most ``max_connections`` concurrent
  connections; one past the limit receives an explicit backpressure
  frame (``{"ok": false, "error": "busy", ...}``) and a clean close
  instead of an unexplained reset or an unbounded accept queue.  The
  TCP backlog is bounded the same way (``backlog``).
- **Request/reply discipline.**  Each connection is a sequential
  request/reply stream — the natural client is blocking
  (:class:`ForecastClient`); concurrency comes from opening more
  connections, mirroring how the micro-batcher coalesces them.
- **Graceful drain.**  ``close()`` stops accepting, lets in-flight
  requests finish (bounded by ``drain_timeout_s``), then closes idle
  connections and joins the loop thread.  A client blocked on a reply
  either receives it or observes a clean EOF, never a half-written
  frame (frames are written atomically per reply).

Wire operations (see ``docs/serving.md`` for the full table):

``ping``, ``stats``, ``query`` (index into the preloaded replay
batch), ``forecast`` (next-tick streaming forecast through the
generation-aware result cache, optional per-cell slicing), ``push`` /
``push_gap`` (advance the stream window), and ``shutdown`` (request a
server drain; the owner of the front-end decides to honour it via
:meth:`SocketFrontend.wait_for_shutdown`).
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.inspect import sanitizer
from repro.serve import wire
from repro.serve.wire import FrameError

__all__ = ["SocketFrontend", "ForecastClient", "RequestError", "ServerBusy"]


class RequestError(RuntimeError):
    """The server answered a request with an error frame."""

    def __init__(self, code, message):
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServerBusy(RequestError):
    """The server refused the connection at its admission limit."""


class SocketFrontend:
    """Socket listener bridging wire requests onto a ForecastServer.

    Parameters
    ----------
    server:
        A **started** :class:`~repro.serve.server.ForecastServer`.
    address:
        ``(host, port)`` for TCP (port 0 picks an ephemeral port,
        re-read from :attr:`address` after :meth:`start`) or a
        filesystem path string for a Unix socket.
    queries:
        Optional :class:`~repro.data.windows.SampleBatch` served by the
        ``query`` op (clients address samples by row index) — the
        replay workload of ``repro serve`` and the benchmark's socket
        arm.
    max_connections:
        Concurrent-connection cap; excess connections get an explicit
        ``busy`` backpressure frame and a clean close.
    backlog:
        Listen backlog handed to the OS (pending, not yet accepted).
    drain_timeout_s:
        How long :meth:`close` waits for in-flight requests.
    """

    def __init__(self, server, address=("127.0.0.1", 0), *, queries=None,
                 max_connections=32, backlog=16,
                 max_frame_bytes=wire.MAX_FRAME_BYTES, drain_timeout_s=5.0):
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1; got {max_connections}")
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1; got {backlog}")
        self._server = server
        self._requested_address = wire.parse_address(address)
        self._queries = queries
        self.max_connections = int(max_connections)
        self.backlog = int(backlog)
        self.max_frame_bytes = int(max_frame_bytes)
        self.drain_timeout_s = float(drain_timeout_s)
        #: Resolved listen address after start() — ``(host, port)`` or
        #: the Unix socket path.
        self.address = None
        self._loop = None
        self._listener = None
        self._thread = None
        self._executor = None
        self._started = False
        self._closed = False
        self._ready = threading.Event()
        self._startup_error = None
        self._shutdown_requested = threading.Event()
        # Telemetry (mutated on the loop thread only; GIL-atomic int
        # reads from telemetry()).
        self._connections = set()
        self._active = 0
        self._accepted = 0
        self._rejected = 0
        self._requests = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind the listener and start the event-loop thread."""
        if self._started:
            raise RuntimeError("front-end already started")
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_connections,
            thread_name_prefix="repro-serve-io")
        self._loop = asyncio.new_event_loop()
        self._thread = sanitizer.create_thread(
            target=self._run_loop, name="repro-serve-frontend", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):  # pragma: no cover - hang
            raise RuntimeError("front-end event loop failed to start")
        if self._startup_error is not None:
            self.close()
            raise self._startup_error
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def close(self):
        """Drain in-flight requests, stop the loop, join the thread."""
        if not self._started or self._closed:
            return
        self._closed = True
        self._shutdown_requested.set()
        if self._startup_error is None:
            try:
                self._loop.call_soon_threadsafe(self._begin_drain)
            except RuntimeError:  # pragma: no cover - loop already dead
                pass
        sanitizer.join_thread(self._thread,
                              timeout=self.drain_timeout_s + 10.0,
                              what="socket front-end event loop")
        self._executor.shutdown(wait=True)
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def wait_for_shutdown(self, timeout=None):
        """Block until a client sent ``shutdown`` (or :meth:`close` ran).

        Returns True if shutdown was requested within ``timeout``.
        The caller still owns teardown: call :meth:`close` after this
        returns.
        """
        return self._shutdown_requested.wait(timeout)

    def telemetry(self):
        """JSON-able front-end counters."""
        return {
            "address": wire.format_address(self.address)
            if self.address is not None else None,
            "connections": len(self._connections),
            "max_connections": self.max_connections,
            "accepted": self._accepted,
            "rejected_busy": self._rejected,
            "requests": self._requests,
            "errors": self._errors,
        }

    # ------------------------------------------------------------------
    # Event-loop thread
    # ------------------------------------------------------------------
    def _run_loop(self):
        asyncio.set_event_loop(self._loop)
        try:
            self._listener = self._loop.run_until_complete(self._open())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            try:
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens())
            finally:
                self._loop.close()

    async def _open(self):
        address = self._requested_address
        if isinstance(address, str):
            # Stale socket files from a crashed predecessor would make
            # bind fail; a *live* predecessor holds the file open, and
            # unlinking only detaches the name, never the listener.
            try:
                os.unlink(address)
            except OSError:
                pass
            listener = await asyncio.start_unix_server(
                self._handle, path=address, backlog=self.backlog)
            self.address = address
        else:
            host, port = address
            listener = await asyncio.start_server(
                self._handle, host=host, port=port, backlog=self.backlog)
            self.address = listener.sockets[0].getsockname()[:2]
        return listener

    def _begin_drain(self):
        self._loop.create_task(self._drain())

    async def _drain(self):
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        # Let in-flight dispatches finish (bounded), then close the
        # remaining (idle) connections so their handlers observe EOF.
        deadline = perf_counter() + self.drain_timeout_s
        while self._active > 0 and perf_counter() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            writer.close()
        settle = perf_counter() + 1.0
        while self._connections and perf_counter() < settle:
            await asyncio.sleep(0.02)
        self._loop.stop()

    # ------------------------------------------------------------------
    # Per-connection handler
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        if len(self._connections) >= self.max_connections:
            # Explicit backpressure: tell the client *why* before
            # closing, so it can back off instead of retrying blind.
            self._rejected += 1
            try:
                writer.write(wire.encode_frame({
                    "ok": False, "error": "busy",
                    "message": "connection limit reached; retry later",
                    "connections": len(self._connections),
                    "max_connections": self.max_connections,
                }))
                await writer.drain()
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            return
        self._accepted += 1
        self._connections.add(writer)
        try:
            while not self._closed:
                frame = await wire.read_frame_async(
                    reader, max_frame_bytes=self.max_frame_bytes)
                if frame is None:
                    break
                self._active += 1
                try:
                    response = await self._dispatch(frame)
                finally:
                    self._active -= 1
                writer.write(wire.encode_frame(
                    response, max_frame_bytes=self.max_frame_bytes))
                await writer.drain()
                if response.get("closing"):
                    break
        except FrameError as exc:
            self._errors += 1
            try:
                writer.write(wire.encode_frame({
                    "ok": False, "error": "bad-frame", "message": str(exc)}))
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, frame):
        if not isinstance(frame, dict):
            return {"ok": False, "error": "bad-request",
                    "message": "frame must be a JSON object"}
        op = frame.get("op")
        handler = _OPS.get(op)
        if handler is None:
            return {"ok": False, "error": "unknown-op",
                    "message": f"unknown op {op!r}; expected one of "
                               f"{', '.join(sorted(_OPS))}"}
        self._requests += 1
        try:
            return await handler(self, frame)
        except (ValueError, IndexError, KeyError, TypeError) as exc:
            self._errors += 1
            return {"ok": False, "error": "bad-request",
                    "message": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:
            self._errors += 1
            return {"ok": False, "error": "server-error",
                    "message": f"{type(exc).__name__}: {exc}"}

    async def _blocking(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)

    # -- ops ----------------------------------------------------------
    async def _op_ping(self, frame):
        return {"ok": True, "pong": frame.get("payload")}

    async def _op_stats(self, frame):
        snap = await self._blocking(self._server.snapshot)
        snap["frontend"] = self.telemetry()
        return {"ok": True, "stats": snap}

    async def _op_query(self, frame):
        if self._queries is None:
            return {"ok": False, "error": "no-queries",
                    "message": "this front-end serves no replay batch"}
        i = int(frame["i"])
        if not 0 <= i < len(self._queries):
            return {"ok": False, "error": "bad-request",
                    "message": f"query index {i} outside "
                               f"[0, {len(self._queries)})"}
        query = self._queries.slice(i, i + 1)
        rows = await self._blocking(self._server.forecast, query)
        return {"ok": True, "i": i, "rows": wire.array_payload(rows),
                "generation": self._server.generation}

    async def _op_forecast(self, frame):
        prediction, index, generation = await self._blocking(
            self._server.forecast_tick)
        response = {"ok": True, "index": index, "generation": generation}
        cells = frame.get("cells")
        if cells is None:
            response["forecast"] = wire.array_payload(prediction)
        else:
            picked = np.stack([prediction[:, int(r), int(c)]
                               for r, c in cells])
            response["cells"] = [[int(r), int(c)] for r, c in cells]
            response["values"] = wire.array_payload(picked)
        return response

    async def _op_push(self, frame):
        tick = wire.payload_array(frame["frame"])
        count = await self._blocking(self._server.push_tick, tick)
        return {"ok": True, "count": count}

    async def _op_push_gap(self, frame):
        count = await self._blocking(self._server.push_gap)
        return {"ok": True, "count": count}

    async def _op_shutdown(self, frame):
        self._shutdown_requested.set()
        return {"ok": True, "closing": True}


_OPS = {
    "ping": SocketFrontend._op_ping,
    "stats": SocketFrontend._op_stats,
    "query": SocketFrontend._op_query,
    "forecast": SocketFrontend._op_forecast,
    "push": SocketFrontend._op_push,
    "push_gap": SocketFrontend._op_push_gap,
    "shutdown": SocketFrontend._op_shutdown,
}


class ForecastClient:
    """Blocking request/reply client for a :class:`SocketFrontend`.

    One instance owns one connection and is **not** thread-safe —
    concurrency comes from one client per thread, mirroring how the
    server batches across connections.

    Parameters
    ----------
    address:
        ``(host, port)``, a ``HOST:PORT`` string, or ``unix:PATH``.
    timeout:
        Per-operation socket timeout in seconds.
    wait_ready_s:
        Retry the initial connection for up to this long — covers the
        race of a client starting before the listener is bound (the CI
        smoke test does exactly that).
    """

    def __init__(self, address, timeout=30.0,
                 max_frame_bytes=wire.MAX_FRAME_BYTES, wait_ready_s=0.0):
        self.address = wire.parse_address(address)
        self.timeout = float(timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        deadline = perf_counter() + float(wait_ready_s)
        while True:
            try:
                self._sock = wire.connect(self.address, timeout=self.timeout)
                break
            except OSError:
                if perf_counter() >= deadline:
                    raise
                import time
                time.sleep(0.05)
        self._closed = False

    # ------------------------------------------------------------------
    def request(self, payload):
        """One request/reply round trip; returns the reply frame.

        Raises :class:`ServerBusy` on an admission-limit reply, and
        :class:`RequestError` for any other error frame.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        wire.send_frame(self._sock, payload,
                        max_frame_bytes=self.max_frame_bytes)
        reply = wire.recv_frame(self._sock,
                                max_frame_bytes=self.max_frame_bytes)
        if reply is None:
            raise RequestError("closed", "server closed the connection")
        if not reply.get("ok", False):
            code = reply.get("error", "error")
            message = reply.get("message", "")
            if code == "busy":
                raise ServerBusy(code, message)
            raise RequestError(code, message)
        return reply

    def ping(self, payload=None):
        return self.request({"op": "ping", "payload": payload})

    def stats(self):
        return self.request({"op": "stats"})["stats"]

    def query(self, i):
        """Forecast rows for replay sample ``i`` — ``(1, 2, H, W)``."""
        return wire.payload_array(
            self.request({"op": "query", "i": int(i)})["rows"])

    def forecast(self, cells=None):
        """Next-tick forecast: ``(prediction, index, generation)``.

        With ``cells=[(row, col), ...]`` the prediction is the
        ``(n_cells, 2)`` in/outflow slice of the shared full-grid
        forecast instead of the whole grid.
        """
        payload = {"op": "forecast"}
        if cells is not None:
            payload["cells"] = [[int(r), int(c)] for r, c in cells]
        reply = self.request(payload)
        key = "forecast" if cells is None else "values"
        return (wire.payload_array(reply[key]), int(reply["index"]),
                int(reply["generation"]))

    def push(self, frame):
        """Push one observed stream tick; returns the server's count."""
        return int(self.request(
            {"op": "push", "frame": wire.array_payload(frame)})["count"])

    def push_gap(self):
        """Record one unobserved interval; returns the server's count."""
        return int(self.request({"op": "push_gap"})["count"])

    def shutdown(self):
        """Ask the serving process to drain and exit."""
        return self.request({"op": "shutdown"})

    def close(self):
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
