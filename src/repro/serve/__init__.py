"""Low-latency forecast serving (see ``docs/serving.md``).

The north-star workload is millions of users querying forecasts, not
offline training.  This package serves that traffic:

- :class:`~repro.serve.server.ForecastServer` — the facade: submit
  requests, stream ticks, hot-swap checkpoints, read latency stats;
- :class:`~repro.serve.batcher.MicroBatcher` — dynamic micro-batching
  of concurrent requests into one tape-free forward;
- :class:`~repro.serve.pool.ReplicaPool` — forked replicas over one
  shared flat parameter buffer with generation-counted hot swap;
- :class:`~repro.serve.cache.WindowCache` — incremental rolling
  closeness/period/trend window assembly, bit-identical to
  ``build_samples``;
- :class:`~repro.serve.stats.LatencyStats` — p50/p99 latency, queue
  wait, throughput, and batching-shape telemetry (bounded reservoirs);
- :class:`~repro.serve.results.ForecastCache` — generation-aware
  memoization of completed streaming forecasts with single-flight
  deduplication (N concurrent same-tick requests, one forward);
- :class:`~repro.serve.frontend.SocketFrontend` /
  :class:`~repro.serve.frontend.ForecastClient` — asyncio TCP/Unix
  socket front-end speaking the length-prefixed JSON protocol of
  :mod:`repro.serve.wire`, with a blocking client;
- :class:`~repro.serve.autoscale.AutoScaler` — load-adaptive replica
  scaling between configured bounds, with hysteresis and cooldown.
"""

from repro.serve.autoscale import AutoScaleConfig, AutoScaler
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import WindowCache
from repro.serve.frontend import ForecastClient, SocketFrontend
from repro.serve.pool import ReplicaPool
from repro.serve.results import ForecastCache
from repro.serve.server import ForecastServer, ServeConfig
from repro.serve.stats import LatencyStats

__all__ = [
    "ForecastServer", "ServeConfig", "MicroBatcher", "WindowCache",
    "ReplicaPool", "LatencyStats", "ForecastCache", "SocketFrontend",
    "ForecastClient", "AutoScaler", "AutoScaleConfig",
]
