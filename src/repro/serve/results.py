"""Generation-aware forecast result cache with single-flight dedup.

MUSE-Net's multi-periodic windows make live forecasts *highly*
cacheable: at any stream tick there is exactly one next-interval
forecast, a ``(2, H, W)`` grid covering every cell at once (the
:class:`~repro.serve.cache.WindowCache` one-cache-covers-all-cells
design).  A forecast at a given ``(target_index, parameter_generation)``
is therefore an **immutable, shareable artifact**: the windows that
produced it can never change (the stream clock only moves forward) and
the weights are pinned by the generation counter.  N concurrent
clients asking for the same tick should cost one model forward, not N.

:class:`ForecastCache` provides exactly that:

- **Memoization** keyed by ``(target_index, generation)``.  Completed
  forecasts are stored read-only (writeable flag cleared) in a bounded
  LRU map; a hit returns the *same* array every caller before it got —
  bit-identical by construction, not by tolerance.
- **Single-flight deduplication.**  The first requester of a missing
  key becomes its *owner* and runs the forward; every concurrent
  requester of the same key joins the owner's future and receives the
  owner's result.  The owner/join decision happens atomically under
  one lock, so exactly one forward runs per key no matter how many
  clients race — the property ``benchmarks/bench_serve_latency.py``'s
  cache arm gates in CI.
- **Invalidation.**  ``invalidate()`` drops the completed entries
  (in-flight owners still resolve their joiners).  The server wires it
  to every :meth:`WindowCache.push`/``push_gap`` (a new tick means a
  new target index — older entries are dead weight) and to checkpoint
  hot swap (the generation bump already makes old keys unreachable;
  dropping them reclaims the memory immediately and guarantees a stale
  generation is never served).

The cache never *computes* anything: correctness rests entirely on the
key identifying an immutable artifact, which is why a result computed
while a hot swap raced the forward is delivered to its waiters (it is
a pure old- or new-generation value, the same guarantee the swap tests
enforce) but **not stored** — see ``ForecastServer._forecast_tick``.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError

import numpy as np

from repro.inspect import sanitizer

__all__ = ["ForecastCache"]


class ForecastCache:
    """Bounded single-flight memo of completed full-grid forecasts.

    Parameters
    ----------
    capacity:
        Completed entries kept (LRU eviction past this).  A serving
        deployment rarely needs more than a few: only the newest tick
        is queried on a live stream, and a hot swap invalidates
        everything anyway.
    """

    def __init__(self, capacity=8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        self.capacity = int(capacity)
        self._lock = sanitizer.create_lock("ForecastCache._lock")
        self._done = OrderedDict()   # key -> read-only ndarray
        self._inflight = {}          # key -> Future (owner computing)
        self._hits = 0
        self._coalesced = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def lookup(self, key):
        """Atomically classify one request for ``key``.

        Returns one of:

        - ``("hit", value)`` — a completed entry; serve ``value``.
        - ``("join", future)`` — another request owns this key and is
          computing; wait on ``future`` for its (shared) result.
        - ``("owner", future)`` — the caller now owns the key: it MUST
          run the forward and then call :meth:`complete` (or
          :meth:`fail`), which resolves ``future`` for every joiner.
        """
        with self._lock:
            value = self._done.get(key)
            if value is not None:
                self._done.move_to_end(key)
                self._hits += 1
                return "hit", value
            future = self._inflight.get(key)
            if future is not None:
                self._coalesced += 1
                return "join", future
            future = Future()
            self._inflight[key] = future
            self._misses += 1
            return "owner", future

    def complete(self, key, value, store=True):
        """Owner callback: publish ``value`` for ``key``.

        The value is frozen (writeable flag cleared) so every consumer
        of the shared array sees identical bits forever.  With
        ``store=False`` the joiners are still resolved but nothing is
        memoized — used when a hot swap raced the forward and the
        generation in ``key`` no longer names the serving weights.
        Returns the frozen array.
        """
        value = np.asarray(value)
        if value.flags.writeable:
            value = value.copy()
            value.flags.writeable = False
        with self._lock:
            future = self._inflight.pop(key, None)
            if store:
                self._done[key] = value
                self._done.move_to_end(key)
                while len(self._done) > self.capacity:
                    self._done.popitem(last=False)
                    self._evictions += 1
        # Resolve outside the lock: set_result wakes every joiner (and
        # runs their done-callbacks) — none of that belongs under the
        # cache lock.
        if future is not None:
            try:
                future.set_result(value)
            except InvalidStateError:  # pragma: no cover - lost race
                pass
        return value

    def fail(self, key, exc):
        """Owner callback: deliver ``exc`` to every joiner of ``key``."""
        with self._lock:
            future = self._inflight.pop(key, None)
        if future is not None:
            try:
                future.set_exception(exc)
            except InvalidStateError:  # pragma: no cover - lost race
                pass

    def invalidate(self, reason=None):
        """Drop all completed entries; returns how many were dropped.

        In-flight computations are left to finish — their joiners are
        already committed to that key, and the key itself (index +
        generation) still names the artifact they asked for.  ``reason``
        is accepted for call-site readability ("tick", "swap") and not
        recorded per-event.
        """
        with self._lock:
            dropped = len(self._done)
            self._done.clear()
            if dropped:
                self._invalidations += 1
            return dropped

    # ------------------------------------------------------------------
    def __len__(self):
        with self._lock:
            return len(self._done)

    def snapshot(self):
        """JSON-able cache telemetry."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._done),
                "inflight": len(self._inflight),
                "hits": self._hits,
                "coalesced": self._coalesced,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "evictions": self._evictions,
            }
