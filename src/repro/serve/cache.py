"""Incremental closeness/period/trend window assembly for serving.

Offline evaluation assembles samples with
:func:`repro.data.windows.build_samples`, which re-slices the *entire*
flow history for every target index.  A server cannot afford that: the
stream is unbounded, and each forecast request needs only a bounded
window of the past.  :class:`WindowCache` maintains exactly that window:

- a **frame ring** holding the last ``periodicity.min_index`` observed
  grid frames — the deepest lag any of the three sub-series reaches;
- a **rolling closeness tensor** updated in place on every tick (shift
  left, write the newest frame last), so the highest-rate sub-series
  costs one frame copy per tick instead of a re-slice per request;
- **period/trend gathers** resolved against the ring with precomputed
  lag offsets when a sample is requested (each selected frame moves by
  one tick per tick, so unlike closeness these cannot be maintained by
  shifting — but the gather touches ``L_p + L_t`` small frames, never
  the full history).

The assembled windows are **bit-identical** to ``build_samples`` run
from scratch over the full history at the same target index — the cache
is an optimization, not an approximation — which
``tests/serve/test_window_cache.py`` pins across period and trend
boundaries.

**Gap contract** (streaming ingestion, ``docs/streaming.md``): a
missing interval must still advance the stream clock, otherwise every
later period/trend lag silently shifts off its calendar alignment.
:meth:`WindowCache.push_gap` records one unobserved interval by
carrying the last observed frame forward (zeros before the first
frame) and flagging the slot as imputed; :meth:`imputed_counts`
reports how many imputed frames the *next* sample would contain per
sub-series, so callers can degrade or annotate forecasts built on
filled history.  The carried-forward values are exactly what
``build_samples`` would see on a history whose gaps were filled the
same way — the contract changes bookkeeping, never the numerics.

One cache covers every grid cell at once (frames are whole ``(2, H, W)``
grids); per-cell forecasts slice the shared batched forward instead of
assembling per-cell windows.
"""

from __future__ import annotations

import numpy as np

from repro.data.periodicity import MultiPeriodicity
from repro.data.windows import SampleBatch

__all__ = ["WindowCache"]


class WindowCache:
    """Rolling multi-periodic window state for one flow stream.

    Parameters
    ----------
    periodicity:
        The :class:`~repro.data.periodicity.MultiPeriodicity` windowing
        configuration (shared with training — the model expects the
        same sub-series lengths it was fit with).
    frame_shape:
        Shape of one observed frame, ``(2, H, W)`` for grid flows.
    dtype:
        Frame dtype; defaults to the dtype of the first pushed frame.
    """

    def __init__(self, periodicity: MultiPeriodicity, frame_shape,
                 dtype=None):
        self.periodicity = periodicity
        self.frame_shape = tuple(int(s) for s in frame_shape)
        self.capacity = int(periodicity.min_index)
        # Lag offsets are a pure function of the periodicity config, so
        # build them once here instead of per sample()/imputed_counts()
        # call; the bit-identity tests against build_samples pin that
        # this changes nothing numerically.
        self.period_lags = np.arange(
            periodicity.len_period, 0, -1) * periodicity.period_lag
        self.trend_lags = np.arange(
            periodicity.len_trend, 0, -1) * periodicity.trend_lag
        #: Optional callback fired after every clock advance
        #: (:meth:`push` and therefore :meth:`push_gap`) with the new
        #: frame count.  The server hangs result-cache invalidation
        #: here: a new tick means a new target index, so memoized
        #: forecasts for older indices are dead weight.
        self.on_advance = None
        self._dtype = None if dtype is None else np.dtype(dtype)
        self._ring = None       # (capacity,) + frame_shape
        self._closeness = None  # (L_c,) + frame_shape, rolling
        self._count = 0         # total frames observed
        # Gap bookkeeping: which ring slots hold carry-forward fills
        # rather than observations, plus the rolling closeness flags.
        self._imputed_ring = None       # (capacity,) bool
        self._closeness_imputed = None  # (L_c,) bool
        self._gap_count = 0

    # ------------------------------------------------------------------
    @property
    def count(self):
        """Total ticks observed; also the next (forecast) target index."""
        return self._count

    @property
    def next_index(self):
        """The target interval the next :meth:`sample` forecasts."""
        return self._count

    @property
    def ready(self):
        """True once every sub-series window is fully populated."""
        return self._count >= self.capacity

    @property
    def gap_count(self):
        """Total intervals recorded via :meth:`push_gap`."""
        return self._gap_count

    @property
    def last_frame(self):
        """Copy of the most recent frame, or ``None`` before any push."""
        if self._count == 0:
            return None
        return self._ring[(self._count - 1) % self.capacity].copy()

    def _allocate(self, dtype):
        self._dtype = np.dtype(dtype)
        self._ring = np.zeros((self.capacity,) + self.frame_shape,
                              dtype=self._dtype)
        self._closeness = np.zeros(
            (self.periodicity.len_closeness,) + self.frame_shape,
            dtype=self._dtype)
        self._imputed_ring = np.zeros(self.capacity, dtype=bool)
        self._closeness_imputed = np.zeros(
            self.periodicity.len_closeness, dtype=bool)

    # ------------------------------------------------------------------
    def push(self, frame, observed=True):
        """Observe one tick; returns the count of frames seen so far.

        ``observed=False`` records the frame as an imputed fill (used by
        :meth:`push_gap`); the values enter the windows normally but the
        slot is flagged in :meth:`imputed_counts`.
        """
        frame = np.asarray(frame)
        if frame.shape != self.frame_shape:
            raise ValueError(
                f"frame shape {frame.shape} != expected {self.frame_shape}")
        if self._ring is None:
            self._allocate(self._dtype if self._dtype is not None
                           else frame.dtype)
        self._ring[self._count % self.capacity] = frame
        self._imputed_ring[self._count % self.capacity] = not observed
        # Rolling closeness: shift one slot left, newest frame last —
        # matches Eq. (3)'s [i - L_c, ..., i - 1] ordering.
        self._closeness[:-1] = self._closeness[1:]
        self._closeness[-1] = frame
        self._closeness_imputed[:-1] = self._closeness_imputed[1:]
        self._closeness_imputed[-1] = not observed
        self._count += 1
        if self.on_advance is not None:
            self.on_advance(self._count)
        return self._count

    def push_gap(self):
        """Record one unobserved interval (the gap contract).

        The stream clock advances by one tick — keeping every later
        period/trend lag calendar-aligned — and the last observed frame
        is carried forward as the fill value (zeros when the gap
        precedes any observation).  The slot is flagged imputed.
        """
        if self._ring is None or self._count == 0:
            if self._ring is None:
                self._allocate(self._dtype if self._dtype is not None
                               else np.float64)
            fill = np.zeros(self.frame_shape, dtype=self._dtype)
        else:
            fill = self._ring[(self._count - 1) % self.capacity]
        self._gap_count += 1
        return self.push(fill, observed=False)

    def extend(self, frames):
        """Push a sequence of ticks (e.g. warm-up from stored history)."""
        for frame in np.asarray(frames):
            self.push(frame)
        return self._count

    # ------------------------------------------------------------------
    def _gather(self, lags):
        """Stack the ring frames at absolute indices ``next_index - lag``."""
        positions = (self._count - lags) % self.capacity
        return self._ring[positions]

    def imputed_counts(self):
        """Imputed-frame counts the *next* sample would contain.

        Returns ``{"closeness": n_c, "period": n_p, "trend": n_t}`` —
        how many of each sub-series' frames are carry-forward fills
        rather than observations.  All zeros on a clean stream.
        """
        if not self.ready:
            raise ValueError(
                f"window not ready: {self._count} of {self.capacity} "
                "warm-up ticks observed")
        return {
            "closeness": int(self._closeness_imputed.sum()),
            "period": int(self._imputed_ring[
                (self._count - self.period_lags) % self.capacity].sum()),
            "trend": int(self._imputed_ring[
                (self._count - self.trend_lags) % self.capacity].sum()),
        }

    def sample(self):
        """The size-1 :class:`SampleBatch` forecasting :attr:`next_index`.

        ``closeness``/``period``/``trend`` are exactly what
        ``build_samples`` would produce for this target index from the
        full history.  ``target`` is a zero placeholder — the target is
        the unobserved interval being forecast — and ``indices`` carries
        the target index.  The arrays are copies; callers may hold them
        across subsequent :meth:`push` calls.
        """
        if not self.ready:
            raise ValueError(
                f"window not ready: {self._count} of {self.capacity} "
                "warm-up ticks observed")
        i = self._count
        return SampleBatch(
            closeness=self._closeness.copy()[None],
            period=self._gather(self.period_lags)[None],
            trend=self._gather(self.trend_lags)[None],
            target=np.zeros((1,) + self.frame_shape, dtype=self._dtype),
            indices=np.array([i]),
        )
