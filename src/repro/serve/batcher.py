"""Dynamic micro-batching: coalesce concurrent forecast requests.

The dominant cost of a single-sample forward is per-op overhead (python
dispatch, BLAS call setup), not arithmetic — the same observation that
makes training batches cheap makes serving batches cheap.  The
:class:`MicroBatcher` therefore runs one consumer thread over a request
queue: the first waiting request opens a batching window, further
requests arriving within ``max_wait_ms`` join it up to ``max_batch``
total *samples*, and the coalesced :class:`~repro.data.windows.SampleBatch`
goes through the forward function once.  Results are split back per
request in arrival order and delivered through per-request futures.

Correctness contract: because every model forward is sample-wise
independent in eval mode (convolutions, matmuls, and eval-mode norm
layers never mix batch rows), the slice of a coalesced forward equals
the single-request forward to float tolerance — the property the
``bench_serve_latency`` CI gate enforces against ``predict_scaled``.

A request larger than ``max_batch`` is served alone (never split across
forwards, so one checkpoint generation answers all of it); it simply
closes its batching window immediately.
"""

from __future__ import annotations

import queue
from concurrent.futures import Future
from concurrent.futures import InvalidStateError
from time import perf_counter

from repro.data.windows import SampleBatch
from repro.inspect import sanitizer

__all__ = ["MicroBatcher"]


class _Request:
    __slots__ = ("batch", "future", "enqueued_at")

    def __init__(self, batch):
        self.batch = batch
        self.future = Future()
        self.enqueued_at = perf_counter()


class MicroBatcher:
    """Request queue + coalescing consumer around one forward function.

    Parameters
    ----------
    forward:
        ``forward(SampleBatch) -> ndarray`` mapping ``N`` samples to
        ``N`` predictions (row ``i`` from sample ``i``).  Runs on the
        consumer thread; exceptions are delivered to every future in
        the affected batch.
    max_batch:
        Maximum coalesced samples per forward (>= 1).
    max_wait_ms:
        How long the first request of a window waits for company before
        the batch is closed (>= 0; 0 disables coalescing-by-waiting —
        whatever is already queued still batches).
    on_batch:
        Optional callback ``(requests, samples, forward_s, waits,
        latencies)`` invoked after each batch completes — the server
        wires :class:`~repro.serve.stats.LatencyStats` in here.
    """

    def __init__(self, forward, max_batch=32, max_wait_ms=2.0,
                 on_batch=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0; got {max_wait_ms}")
        self._forward = forward
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self._on_batch = on_batch
        self._queue = queue.Queue()
        # Guards _closed and orders submissions against the shutdown
        # sentinel: a submit that saw _closed == False has its request
        # in the queue *before* close() enqueues the sentinel, so the
        # consumer's drain always reaches it.
        self._lock = sanitizer.create_lock("MicroBatcher._lock")
        self._closed = False
        self._thread = sanitizer.create_thread(target=self._run,
                                               name="repro-serve-batcher",
                                               daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def depth(self):
        """Requests currently queued (approximate; the autoscaler's
        instantaneous load signal)."""
        return self._queue.qsize()

    def submit(self, batch: SampleBatch):
        """Enqueue one request; returns a future resolving to its rows."""
        if len(batch) == 0:
            raise ValueError("cannot serve an empty request")
        request = _Request(batch)
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.put(request)
        return request.future

    def close(self):
        """Stop the consumer after draining already-queued requests.

        Every future returned by :meth:`submit` is resolved: requests
        enqueued before close are served (the sentinel sits behind
        them), and any request that slips past a hung consumer is
        failed explicitly in the post-join sweep rather than left
        pending forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        sanitizer.join_thread(self._thread, timeout=10.0,
                              what="micro-batcher consumer")
        # The consumer exits on the sentinel (re-queued if it arrived
        # mid-window), so anything still queued was never served —
        # possible only if the consumer hung or died.  Fail those
        # futures instead of stranding their callers.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is None:
                continue
            try:
                leftover.future.set_exception(
                    RuntimeError("batcher closed before serving this "
                                 "request"))
            except InvalidStateError:  # pragma: no cover - lost race
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Consumer thread
    # ------------------------------------------------------------------
    def _collect(self):
        """Block for the first request, then coalesce a window.

        Returns the request list, or ``None`` on shutdown.  The
        sentinel is re-queued when it arrives mid-window so the drain
        still terminates the loop afterwards.
        """
        first = self._queue.get()
        if first is None:
            # An accepted request can legally sit *behind* the shutdown
            # sentinel: the overflow path below re-queues a request that
            # was already admitted.  Serve it before honouring the
            # sentinel so close() never strands an accepted future.
            try:
                first = self._queue.get_nowait()
            except queue.Empty:
                return None
            if first is None:  # pragma: no cover - double sentinel
                return None
            self._queue.put(None)
        window = [first]
        samples = len(first.batch)
        deadline = perf_counter() + self.max_wait
        while samples < self.max_batch:
            remaining = deadline - perf_counter()
            try:
                if remaining > 0:
                    nxt = self._queue.get(timeout=remaining)
                else:
                    # Window expired: still absorb whatever is already
                    # queued, but never wait for more.
                    nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt is None:
                self._queue.put(None)
                break
            if samples + len(nxt.batch) > self.max_batch:
                # Would overflow the window: serve it in the next one.
                self._queue.put(nxt)
                break
            window.append(nxt)
            samples += len(nxt.batch)
        return window

    def _run(self):
        while True:
            window = self._collect()
            if window is None:
                return
            self._serve(window)

    def _serve(self, window):
        started = perf_counter()
        waits = [started - r.enqueued_at for r in window]
        try:
            merged = SampleBatch.concat([r.batch for r in window])
            predictions = self._forward(merged)
            if len(predictions) != len(merged):
                raise RuntimeError(
                    f"forward returned {len(predictions)} rows for "
                    f"{len(merged)} samples")
        except BaseException as exc:
            for request in window:
                request.future.set_exception(exc)
            return
        forward_s = perf_counter() - started
        cursor = 0
        for request in window:
            n = len(request.batch)
            request.future.set_result(predictions[cursor:cursor + n])
            cursor += n
        if self._on_batch is not None:
            done = perf_counter()
            latencies = [done - r.enqueued_at for r in window]
            self._on_batch(len(window), cursor, forward_s, waits, latencies)
