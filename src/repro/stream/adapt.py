"""Warm rolling re-training for confirmed drift.

A confirmed drift means the serving weights describe a world that no
longer exists.  The fix is *bounded*: re-fit on the rolling raw-frame
history, seeded from the serving weights (warm restart — most of the
model is still right, only the shifted statistics need to move), under
a hard :attr:`~repro.training.trainer.TrainConfig.max_steps` budget so
the stream is never blocked on an open-ended fit.

The candidate trains on a *copy* built by ``model_factory`` — the
serving model keeps answering (from the fallback ladder) for the whole
retrain.  Before any swap, the candidate must clear a validation gate:
its RMSE on the held-out tail of the rolling window must not be worse
than ``gate_factor`` times the serving model's on the same tail.  A
failed gate, a diverged fit (the trainer's sentinel runs in ``raise``
mode), or a checkpoint/swap error all raise :class:`AdaptationError`;
the caller degrades gracefully instead of installing a bad model.

The scaler is widened (:meth:`repro.data.scaler.MinMaxScaler.update`)
with the rolling window *before* building samples, so a post-shift
regime is not clipped against the tanh head's asymptotes.  Bounds only
ever widen — the serving model's inputs stay valid mid-flight.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.pipeline import ForecastData
from repro.data.windows import build_samples
from repro.metrics import rmse
from repro.tensor import no_grad
from repro.training.checkpoint import save_checkpoint
from repro.training.trainer import TrainConfig, Trainer

__all__ = ["AdaptationConfig", "AdaptationError", "warm_retrain"]


class AdaptationError(RuntimeError):
    """Warm re-training failed; the serving model must not be swapped."""


@dataclass
class AdaptationConfig:
    """Knobs of the bounded warm-restart fit (docs/streaming.md)."""

    step_budget: int = 60     # hard cap on optimizer steps per retrain
    epochs: int = 50          # nominal epochs (the budget cuts them off)
    batch_size: int = 8
    lr: float = 1e-3
    val_fraction: float = 0.25  # held-out share of the rolling window
    # Drift-to-retrain delay: wait this many ticks after confirmation
    # so the rolling window actually contains new-regime samples to
    # fit on (the fallback ladder answers in the meantime).
    fresh_ticks: int = 12
    # Recency oversampling: the newest `recent_span` training targets
    # are repeated `recent_boost` times, so a dozen fresh post-shift
    # samples are not drowned out by a hundred stale ones.
    recent_span: int = 16
    recent_boost: int = 4
    # Swap gate: candidate val RMSE must be <= gate_factor x the
    # serving model's val RMSE.  > 1 tolerates a little noise — the
    # point is rejecting candidates that are *worse*, not demanding
    # improvement a 60-step budget may not deliver.
    gate_factor: float = 1.05
    seed: int = 0

    def __post_init__(self):
        if self.step_budget < 1:
            raise ValueError(
                f"step_budget must be >= 1; got {self.step_budget}")
        if not 0.0 < self.val_fraction < 1.0:
            raise ValueError(
                f"val_fraction must be in (0, 1); got {self.val_fraction}")
        if self.gate_factor <= 0:
            raise ValueError(
                f"gate_factor must be > 0; got {self.gate_factor}")
        if self.fresh_ticks < 0:
            raise ValueError(
                f"fresh_ticks must be >= 0; got {self.fresh_ticks}")
        if self.recent_span < 0 or self.recent_boost < 1:
            raise ValueError(
                "recent_span must be >= 0 and recent_boost >= 1; got "
                f"{self.recent_span}, {self.recent_boost}")


def _model_val_rmse(model, data):
    """Flow-space RMSE of ``model`` on ``data.val`` (tape-free)."""
    with no_grad():
        prediction = np.asarray(model.predict(data.val))
    return rmse(data.inverse(prediction), data.inverse(data.val.target))


def prepare_rolling_data(frames, scaler, periodicity, val_fraction=0.25,
                         horizon=1, recent_span=0, recent_boost=1):
    """Window a rolling raw-frame history into train/val batches.

    ``frames`` is the ``(T, 2, H, W)`` rolling window (gap fills
    included — they are what the serving windows saw too).  The scaler
    must already cover the window's range (call ``scaler.update``
    first).

    The validation indices are spread *uniformly* across the window,
    not taken from the tail: after a drift, the tail is exactly where
    the only new-regime samples live, and a tail-only val split would
    hide them all from training.  ``recent_span``/``recent_boost``
    oversample the newest training targets (see
    :class:`AdaptationConfig`).  Returns a :class:`ForecastData` with
    an empty test split; its ``dataset`` is ``None`` — a rolling
    window has no backing :class:`~repro.data.datasets.TrafficDataset`.
    """
    frames = np.asarray(frames, dtype=np.float64)
    first = periodicity.min_index
    if len(frames) - first < 4:
        raise AdaptationError(
            f"rolling history too short to retrain: {len(frames)} frames, "
            f"warm-up needs {first} and the split needs 4 more")
    scaled = scaler.transform(frames)
    indices = np.arange(first, len(frames))
    num_val = max(1, int(round(len(indices) * val_fraction)))
    if num_val >= len(indices):
        num_val = len(indices) - 1
    val_positions = np.unique(
        np.linspace(0, len(indices) - 1, num_val).astype(int))
    val_idx = indices[val_positions]
    train_idx = np.delete(indices, val_positions)
    if recent_span > 0 and recent_boost > 1:
        recent = train_idx[-recent_span:]
        train_idx = np.concatenate(
            [train_idx] + [recent] * (recent_boost - 1))
    train = build_samples(scaled, periodicity, train_idx, horizon=horizon)
    val = build_samples(scaled, periodicity, val_idx, horizon=horizon)
    return ForecastData(dataset=None, scaler=scaler, train=train, val=val,
                        test=train.slice(0, 0), horizon=horizon)


def warm_retrain(serving_model, model_factory, frames, scaler, periodicity,
                 config: AdaptationConfig = None, checkpoint_path=None):
    """Fit a warm-seeded candidate on the rolling window.

    Returns ``(checkpoint_path, fit_history, candidate_rmse,
    serving_rmse)`` on success; raises :class:`AdaptationError` when
    the candidate diverges or fails the validation gate.  The serving
    model is never touched — the caller installs the returned
    checkpoint through the server's hot-swap path.
    """
    config = config if config is not None else AdaptationConfig()
    scaler.update(frames)
    data = prepare_rolling_data(frames, scaler, periodicity,
                                val_fraction=config.val_fraction,
                                recent_span=config.recent_span,
                                recent_boost=config.recent_boost)

    candidate = model_factory()
    candidate.load_state_dict(serving_model.state_dict())
    trainer = Trainer(candidate, TrainConfig(
        epochs=config.epochs, batch_size=config.batch_size, lr=config.lr,
        max_steps=config.step_budget, sentinel="raise", seed=config.seed,
    ))
    try:
        fit_history = trainer.fit(data)
    except Exception as error:
        raise AdaptationError(f"warm retrain diverged: {error}") from error

    candidate_rmse = _model_val_rmse(candidate, data)
    serving_rmse = _model_val_rmse(serving_model, data)
    if not np.isfinite(candidate_rmse):
        raise AdaptationError(
            f"candidate validation RMSE is non-finite ({candidate_rmse})")
    if candidate_rmse > config.gate_factor * serving_rmse:
        raise AdaptationError(
            f"candidate failed the swap gate: val RMSE {candidate_rmse:.4f} "
            f"> {config.gate_factor:g} x serving {serving_rmse:.4f}")

    if checkpoint_path is None:
        raise AdaptationError("no checkpoint path configured for the swap")
    os.makedirs(os.path.dirname(os.path.abspath(checkpoint_path)),
                exist_ok=True)
    try:
        written = save_checkpoint(checkpoint_path, candidate,
                                  trainer.optimizer, history=fit_history)
    except Exception as error:
        raise AdaptationError(
            f"failed to write retrain checkpoint: {error}") from error
    return written, fit_history, float(candidate_rmse), float(serving_rmse)
