"""Graceful-degradation forecasters for the streaming runtime.

When the model is stale, mid-retrain, or a swap just failed, the
server must still answer — with an honest, cheaper estimate rather
than a silent error or a suspect neural forecast.  These are the
streaming counterparts of :mod:`repro.baselines.naive`: the batch
baselines re-slice a full offline history per call, while these
maintain O(1) state per tick and never look at more than the current
frame.

The ladder (:class:`~repro.stream.runtime.StreamRuntime` walks it top
to bottom, serving the first ready rung):

1. the neural model — healthy weights, warm windows;
2. :class:`StreamingHistoricalAverage` — per time-of-day-slot EMA of
   observed frames: knows the diurnal shape, blind to this morning;
3. :class:`StreamingPersistence` — the last observed frame: blind to
   everything but one tick old at most;
4. zeros — only before the very first observation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamingHistoricalAverage", "StreamingPersistence"]


class StreamingHistoricalAverage:
    """Per-slot EMA of observed frames (time-of-day climatology).

    ``update`` folds an observed frame into the EMA for its
    time-of-day slot (``index % samples_per_day``); ``predict``
    returns that slot's EMA.  Gap fills must *not* be folded — a
    carried-forward frame would teach the climatology that missing
    intervals look like their predecessors.
    """

    def __init__(self, samples_per_day, frame_shape, beta=0.85):
        if samples_per_day < 1:
            raise ValueError(
                f"samples_per_day must be >= 1; got {samples_per_day}")
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1); got {beta}")
        self.samples_per_day = int(samples_per_day)
        self.frame_shape = tuple(int(s) for s in frame_shape)
        self.beta = float(beta)
        self._slots = np.zeros((self.samples_per_day,) + self.frame_shape)
        self._seen = np.zeros(self.samples_per_day, dtype=np.int64)

    def update(self, index, frame):
        """Fold one *observed* frame into its time-of-day slot."""
        slot = int(index) % self.samples_per_day
        frame = np.asarray(frame, dtype=np.float64)
        if self._seen[slot] == 0:
            self._slots[slot] = frame
        else:
            self._slots[slot] = (self.beta * self._slots[slot]
                                 + (1.0 - self.beta) * frame)
        self._seen[slot] += 1
        return self

    def ready(self, index):
        """Whether the slot for ``index`` has ever been observed."""
        return bool(self._seen[int(index) % self.samples_per_day] > 0)

    def predict(self, index):
        """Climatology forecast for interval ``index`` (copy)."""
        slot = int(index) % self.samples_per_day
        if self._seen[slot] == 0:
            raise ValueError(
                f"no observations yet for time-of-day slot {slot}")
        return self._slots[slot].copy()


class StreamingPersistence:
    """Forecast = the last observed frame (one-tick memory)."""

    def __init__(self, frame_shape):
        self.frame_shape = tuple(int(s) for s in frame_shape)
        self._last = None

    def update(self, frame):
        """Record the newest observed frame."""
        self._last = np.asarray(frame, dtype=np.float64).copy()
        return self

    @property
    def ready(self):
        """Whether any frame has been observed."""
        return self._last is not None

    def predict(self):
        """The last observed frame (copy); raises before any update."""
        if self._last is None:
            raise ValueError("no frame observed yet")
        return self._last.copy()
