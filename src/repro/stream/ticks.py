"""Tick records: the unit of streaming ingestion."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Tick", "QuarantineRecord"]


@dataclass
class Tick:
    """One stream observation: a flow frame stamped with its interval.

    ``index`` is the absolute interval index on the stream clock (the
    same clock :func:`~repro.data.windows.build_samples` indexes into),
    ``frame`` the raw ``(2, H, W)`` flow grid.  ``NaN`` cells mean a
    sensor failed to report for that interval — they are masked and
    filled downstream, not treated as corruption.  ``meta`` carries
    free-form provenance (feed id, arrival time) and is never
    interpreted by the runtime.
    """

    index: int
    frame: np.ndarray
    meta: dict = field(default_factory=dict)


@dataclass
class QuarantineRecord:
    """Why one tick was refused: kept for audit, never replayed.

    ``reason`` is a stable machine-readable code (``"late"``,
    ``"duplicate"``, ``"bad_shape"``, ``"corrupt"``, ``"bad_index"``);
    ``detail`` the human-readable specifics.
    """

    index: int
    reason: str
    detail: str = ""

    def as_dict(self):
        """Plain-dict view (JSON-serialisable telemetry)."""
        return {"index": self.index, "reason": self.reason,
                "detail": self.detail}
