"""Tick records: the unit of streaming ingestion.

Besides the in-process :class:`Tick` record, this module provides the
network form of a tick: :func:`tick_payload` / :func:`tick_from_payload`
map ticks onto the length-prefixed JSON wire protocol of
:mod:`repro.serve.wire`, and :class:`SocketTickSource` turns a socket
connection carrying such frames into the iterator of ticks the
:class:`~repro.stream.ingest.StreamIngestor` consumes — so a live feed
process on another host can drive the streaming runtime with the same
framing the serving front-end speaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, sleep

import numpy as np

__all__ = ["Tick", "QuarantineRecord", "SocketTickSource",
           "tick_payload", "tick_from_payload", "send_tick"]


@dataclass
class Tick:
    """One stream observation: a flow frame stamped with its interval.

    ``index`` is the absolute interval index on the stream clock (the
    same clock :func:`~repro.data.windows.build_samples` indexes into),
    ``frame`` the raw ``(2, H, W)`` flow grid.  ``NaN`` cells mean a
    sensor failed to report for that interval — they are masked and
    filled downstream, not treated as corruption.  ``meta`` carries
    free-form provenance (feed id, arrival time) and is never
    interpreted by the runtime.
    """

    index: int
    frame: np.ndarray
    meta: dict = field(default_factory=dict)


@dataclass
class QuarantineRecord:
    """Why one tick was refused: kept for audit, never replayed.

    ``reason`` is a stable machine-readable code (``"late"``,
    ``"duplicate"``, ``"bad_shape"``, ``"corrupt"``, ``"bad_index"``);
    ``detail`` the human-readable specifics.
    """

    index: int
    reason: str
    detail: str = ""

    def as_dict(self):
        """Plain-dict view (JSON-serialisable telemetry)."""
        return {"index": self.index, "reason": self.reason,
                "detail": self.detail}


# ----------------------------------------------------------------------
# Wire form
# ----------------------------------------------------------------------
def tick_payload(tick: Tick):
    """JSON-able wire form of one tick (bit-exact frame transport)."""
    from repro.serve import wire

    return {
        "index": int(tick.index),
        "frame": wire.array_payload(tick.frame),
        "meta": dict(tick.meta),
    }


def tick_from_payload(payload) -> Tick:
    """Rebuild a :class:`Tick` from its :func:`tick_payload` form."""
    from repro.serve import wire

    if not isinstance(payload, dict) or "frame" not in payload:
        raise wire.FrameError(
            "tick frame must be a JSON object with an index and a frame")
    return Tick(index=int(payload.get("index", -1)),
                frame=wire.payload_array(payload["frame"]),
                meta=dict(payload.get("meta", {})))


def send_tick(sock, tick: Tick, max_frame_bytes=None):
    """Write one tick frame to a blocking socket (the producer side)."""
    from repro.serve import wire

    wire.send_frame(sock, tick_payload(tick),
                    max_frame_bytes=max_frame_bytes
                    if max_frame_bytes is not None else wire.MAX_FRAME_BYTES)


class SocketTickSource:
    """Iterator of :class:`Tick` records arriving over a socket.

    Connects to a producer speaking the :mod:`repro.serve.wire` framing
    (one :func:`tick_payload` object per frame) and yields ticks until
    the producer closes the connection cleanly — at which point
    iteration ends, exactly like an exhausted in-memory tick list.  A
    truncated or malformed frame raises
    :class:`~repro.serve.wire.FrameError` instead of silently ending
    the stream: a dead feed and a finished feed must be
    distinguishable.

    Parameters
    ----------
    address:
        ``(host, port)``, ``HOST:PORT``, or ``unix:PATH``.
    timeout:
        Per-recv socket timeout in seconds — bounds how long ingestion
        blocks on a stalled feed.
    wait_ready_s:
        Retry the initial connection for up to this long, covering a
        consumer that starts before its producer binds.
    """

    def __init__(self, address, timeout=30.0, max_frame_bytes=None,
                 wait_ready_s=0.0):
        from repro.serve import wire

        self._wire = wire
        self.address = wire.parse_address(address)
        self.max_frame_bytes = (int(max_frame_bytes)
                                if max_frame_bytes is not None
                                else wire.MAX_FRAME_BYTES)
        deadline = perf_counter() + float(wait_ready_s)
        while True:
            try:
                self._sock = wire.connect(self.address, timeout=timeout)
                break
            except OSError:
                if perf_counter() >= deadline:
                    raise
                sleep(0.05)
        self._closed = False
        #: Ticks yielded so far (telemetry).
        self.received = 0

    def __iter__(self):
        return self

    def __next__(self) -> Tick:
        if self._closed:
            raise StopIteration
        payload = self._wire.recv_frame(
            self._sock, max_frame_bytes=self.max_frame_bytes)
        if payload is None:
            self.close()
            raise StopIteration
        tick = tick_from_payload(payload)
        self.received += 1
        return tick

    def close(self):
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
