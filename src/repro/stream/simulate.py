"""Shared disruption scenarios for the streaming runtime.

One scenario definition drives the ``repro stream`` CLI, the
``bench_stream_robustness`` benchmark, and the integration tests, so
the numbers they report describe the same stream.

Every scenario shares one geometry — a 4x4 grid at 180-minute
intervals (8 samples/day) with ``(L_c, L_p, L_t) = (3, 2, 1)``
windows, the smallest configuration where closeness, period, *and*
trend are all live (``min_index = 56`` = one week) — and one shape:
an offline training prefix the model and scaler are fitted on,
followed by a live segment delivered as ticks.  Scenarios differ in
what the live segment does to the stream:

============  ======================================================
``clean``     in-order, complete, uncorrupted (the bit-identity arm)
``late``      arrivals shuffled within the watermark + duplicates
``dropout``   random sensor cells report NaN for a stretch
``corrupt``   a few frames carry Inf / negative flows (quarantine)
``outage``    a contiguous run of intervals never arrives (gaps)
``level_shift``  demand steps to 1.6x mid-stream (drift + retrain)
``closure``   one cell's flows drop to zero for two days
``surge``     one cell's flows triple for two days
============  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data.generator import PatternConfig, generate_pattern_flows
from repro.data.grid import GridSpec
from repro.data.periodicity import MultiPeriodicity
from repro.data.scaler import MinMaxScaler
from repro.metrics import rmse
from repro.stream.adapt import AdaptationConfig, prepare_rolling_data
from repro.stream.runtime import StreamConfig, StreamRuntime
from repro.stream.ticks import Tick
from repro.training.trainer import TrainConfig, Trainer

__all__ = ["SCENARIOS", "StreamScenario", "make_scenario", "make_model",
           "model_factory", "train_offline", "build_runtime",
           "run_scenario", "evaluate_results"]

SCENARIOS = ("clean", "late", "dropout", "corrupt", "outage",
             "level_shift", "closure", "surge")

_TRAIN_DAYS = 16          # offline prefix: 128 intervals
_STREAM_DAYS = 10         # live segment: 80 ticks
_DISRUPT_AT = 24          # live ticks before the disruption begins
_FEATURE_RANGE = (-0.9, 0.9)


def stream_geometry():
    """The shared (grid, periodicity) of every scenario."""
    grid = GridSpec(4, 4, interval_minutes=180)
    periodicity = MultiPeriodicity(3, 2, 1,
                                   samples_per_day=grid.samples_per_day)
    return grid, periodicity


@dataclass
class StreamScenario:
    """One reproducible disruption scenario."""

    name: str
    grid: GridSpec
    periodicity: MultiPeriodicity
    flows: np.ndarray          # ground truth, (T, 2, H, W)
    train_end: int             # offline prefix length
    ticks: list                # live arrivals, in arrival order
    disruption_start: int      # absolute index; len(flows) for "clean"
    description: str = ""
    meta: dict = field(default_factory=dict)


def _base_flows(num_intervals, grid, seed, pattern_overrides=None):
    config = PatternConfig(noise_std=1.0, **(pattern_overrides or {}))
    return generate_pattern_flows(grid, num_intervals, config=config,
                                  seed=seed)


def make_scenario(name, seed=0):
    """Build one named scenario (see module docstring for the menu)."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    grid, periodicity = stream_geometry()
    rng = np.random.default_rng(seed + 7)
    train_end = grid.intervals_for_days(_TRAIN_DAYS)
    total = train_end + grid.intervals_for_days(_STREAM_DAYS)
    disrupt_at = train_end + _DISRUPT_AT

    overrides = {}
    if name == "level_shift":
        overrides["level_shift"] = (disrupt_at, 1.6)
    elif name == "closure":
        overrides["closures"] = [(disrupt_at, 16, 1, 2)]
    elif name == "surge":
        overrides["surges"] = [(disrupt_at, 16, 2, 1, 3.0)]
    flows = _base_flows(total, grid, seed, overrides)

    live = list(range(train_end, total))
    frames = {i: flows[i].copy() for i in live}
    dropped = set()
    duplicates = []

    if name == "late":
        # Shuffle each 3-tick block after the disruption point — all
        # displacements stay inside the watermark (4).
        for start in range(disrupt_at, total - 3, 3):
            block = live.index(start)
            segment = live[block:block + 3]
            rng.shuffle(segment)
            live[block:block + 3] = segment
        # A few duplicated arrivals: re-sent ticks the ingestor must
        # quarantine rather than double-count.
        duplicates = sorted(rng.choice(
            np.arange(disrupt_at, total), size=4, replace=False).tolist())
    elif name == "dropout":
        for index in range(disrupt_at, min(disrupt_at + 24, total)):
            mask = rng.random(frames[index].shape) < 0.15
            frames[index][mask] = np.nan
    elif name == "corrupt":
        for index in range(disrupt_at, min(disrupt_at + 8, total), 2):
            frames[index][0, 0, 0] = np.inf
        bad = disrupt_at + 9
        if bad < total:
            frames[bad][1, 1, 1] = -5.0
    elif name == "outage":
        dropped = set(range(disrupt_at, min(disrupt_at + 6, total)))
    elif name == "clean":
        disrupt_at = total  # nothing ever goes wrong

    ticks = []
    for index in live:
        if index in dropped:
            continue
        ticks.append(Tick(index=index, frame=frames[index]))
        if index in duplicates:
            ticks.append(Tick(index=index, frame=frames[index].copy()))

    return StreamScenario(
        name=name, grid=grid, periodicity=periodicity, flows=flows,
        train_end=train_end, ticks=ticks, disruption_start=disrupt_at,
        description={
            "clean": "in-order complete stream (bit-identity arm)",
            "late": "arrivals shuffled within the watermark + duplicates",
            "dropout": "15% of sensor cells NaN for 3 days",
            "corrupt": "Inf / negative frames (quarantined, become gaps)",
            "outage": "6 consecutive intervals never arrive",
            "level_shift": "demand steps to 1.6x (drift -> warm retrain)",
            "closure": "cell (1,2) closed for 2 days",
            "surge": "cell (2,1) at 3x for 2 days",
        }[name],
    )


# ----------------------------------------------------------------------
# Offline fitting (the model the stream starts from)
# ----------------------------------------------------------------------
def make_model(grid, periodicity, seed=0):
    """A stream-scale MUSE-Net for the shared geometry."""
    return MUSENet(MuseConfig(
        len_closeness=periodicity.len_closeness,
        len_period=periodicity.len_period,
        len_trend=periodicity.len_trend,
        height=grid.height, width=grid.width,
        rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32, gen_weight=0.05, seed=seed))


def model_factory(grid, periodicity, seed=0):
    """Zero-argument factory for :class:`StreamRuntime` adaptation."""
    return lambda: make_model(grid, periodicity, seed=seed)


def fit_scaler(scenario: StreamScenario):
    """The offline scaler: fitted on the training prefix only."""
    return MinMaxScaler(_FEATURE_RANGE).fit(
        scenario.flows[:scenario.train_end])


def train_offline(scenario: StreamScenario, epochs=8, seed=0, verbose=False):
    """Fit the serving model on the scenario's training prefix.

    Returns the trained ``state_dict`` — arms of a comparison re-seed
    fresh models from it so adaptive and frozen runs start from
    identical weights.
    """
    scaler = fit_scaler(scenario)
    data = prepare_rolling_data(scenario.flows[:scenario.train_end], scaler,
                                scenario.periodicity, val_fraction=0.15)
    model = make_model(scenario.grid, scenario.periodicity, seed=seed)
    trainer = Trainer(model, TrainConfig(epochs=epochs, lr=2e-3,
                                         batch_size=8, seed=seed,
                                         verbose=verbose))
    trainer.fit(data)
    return model.state_dict()


def build_runtime(scenario: StreamScenario, state, adaptive=True,
                  checkpoint_dir=None, seed=0, config: StreamConfig = None):
    """A warm-started runtime serving the trained weights.

    Each call builds an independent model and scaler (the runtime
    mutates both), so several arms can replay the same scenario.
    """
    if config is None:
        config = StreamConfig(
            auto_adapt=adaptive,
            adaptation=AdaptationConfig(step_budget=240, lr=3e-3,
                                        recent_boost=6, seed=seed))
    model = make_model(scenario.grid, scenario.periodicity, seed=seed)
    model.load_state_dict(state)
    runtime = StreamRuntime(
        model, fit_scaler(scenario), scenario.periodicity,
        scenario.flows.shape[1:], scenario.grid.samples_per_day,
        config=config,
        model_factory=(model_factory(scenario.grid, scenario.periodicity,
                                     seed=seed) if adaptive else None),
        checkpoint_dir=checkpoint_dir)
    runtime.warm_start(scenario.flows[:scenario.train_end])
    return runtime


# ----------------------------------------------------------------------
# Replay + evaluation
# ----------------------------------------------------------------------
def run_scenario(scenario: StreamScenario, runtime: StreamRuntime):
    """Replay the scenario's arrivals through a started runtime.

    Before each truth tick can land, the current stream frontier is
    forecast (exactly once per interval), mirroring a live deployment
    where the answer must exist before the interval does.  Returns the
    list of ``(ForecastResult, truth_frame)`` pairs for every interval
    that was both forecast and ground-truthed.
    """
    flows = scenario.flows
    pending = {}

    def forecast_frontier():
        index = runtime.cache.next_index
        if runtime.cache.count and index not in pending and index < len(flows):
            pending[index] = runtime.forecast()

    forecast_frontier()
    for tick in scenario.ticks:
        runtime.ingest(tick)
        forecast_frontier()
    runtime.flush()
    return [(pending[i], flows[i]) for i in sorted(pending)
            if i >= scenario.train_end]


def evaluate_results(scenario: StreamScenario, results,
                     recovery_window=16):
    """Segmented accuracy + provenance report for one replay.

    Errors are *normalized* RMSE (RMSE over the segment divided by the
    segment's mean absolute truth) so a level shift does not make the
    post-disruption segment incomparable to the pre segment by scale
    alone.
    """
    def segment(pairs):
        if not pairs:
            return None
        prediction = np.stack([r.flows for r, _ in pairs])
        truth = np.stack([t for _, t in pairs])
        scale = float(np.abs(truth).mean())
        return {
            "ticks": len(pairs),
            "rmse": float(rmse(prediction, truth)),
            "nrmse": float(rmse(prediction, truth) / max(scale, 1e-9)),
        }

    pre = [(r, t) for r, t in results if r.index < scenario.disruption_start]
    post = [(r, t) for r, t in results if r.index >= scenario.disruption_start]
    recovery = post[-recovery_window:] if post else []
    sources = {}
    for r, _ in results:
        sources[r.source] = sources.get(r.source, 0) + 1
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "ticks_forecast": len(results),
        "pre": segment(pre),
        "post": segment(post),
        "recovery": segment(recovery),
        "sources": sources,
    }
