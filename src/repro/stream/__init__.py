"""Disruption-tolerant streaming runtime (docs/streaming.md).

Real deployments do not see the clean, complete, chronologically
ordered flow tensor the offline pipeline trains on.  Ticks arrive late
or duplicated, sensors drop cells, whole intervals go missing, and the
underlying demand process drifts.  :mod:`repro.stream` turns the
serving stack into a runtime that survives all of that:

- :class:`StreamIngestor` — watermark reordering, duplicate/corrupt
  quarantine, gap declaration (:mod:`repro.stream.ingest`);
- :class:`DriftSentinel` — EMA + CUSUM separation of sustained drift
  from transient spikes (:mod:`repro.stream.drift`);
- :class:`StreamingHistoricalAverage` / :class:`StreamingPersistence`
  — the graceful-degradation forecasters (:mod:`repro.stream.degrade`);
- :class:`StreamRuntime` — the facade tying ingestion, rolling
  windows, drift monitoring, warm re-training, and the fallback ladder
  together around a :class:`~repro.serve.server.ForecastServer`
  (:mod:`repro.stream.runtime`);
- :mod:`repro.stream.simulate` — shared disruption scenarios for the
  CLI, the robustness benchmark, and the tests.
"""

from repro.stream.adapt import AdaptationConfig, AdaptationError, warm_retrain
from repro.stream.degrade import StreamingHistoricalAverage, StreamingPersistence
from repro.stream.drift import DriftSentinel
from repro.stream.ingest import StreamIngestor
from repro.stream.runtime import StreamConfig, StreamRuntime
from repro.stream.ticks import QuarantineRecord, SocketTickSource, Tick

__all__ = [
    "AdaptationConfig",
    "AdaptationError",
    "DriftSentinel",
    "QuarantineRecord",
    "SocketTickSource",
    "StreamConfig",
    "StreamIngestor",
    "StreamRuntime",
    "StreamingHistoricalAverage",
    "StreamingPersistence",
    "Tick",
    "warm_retrain",
]
