"""Drift detection over streaming forecast errors.

Training-time divergence (:mod:`repro.training.sentinel`) is about the
*optimizer* blowing up; streaming drift is about the *world* moving
while the weights stand still.  The signal is the per-tick forecast
error of the serving model, and the question is whether a run of
elevated errors is a sustained regime change (retrain) or a transient
spike (ignore: a concert ends, a sensor hiccups, one tick is filled).

:class:`DriftSentinel` keeps an EMA baseline of the error mean and
variance and feeds the standardized error into a one-sided CUSUM:

``z = (error - mean) / std``
``S = max(0, S + min(z - slack, increment_cap))``

Drift is confirmed when ``S`` crosses ``threshold``.  Two design
points do the spike/drift separation:

- the per-tick increment is capped, so no single outlier — however
  extreme — can move ``S`` by more than ``increment_cap``; only a
  *run* of elevated errors accumulates to the threshold;
- errors with ``z > spike_z`` are excluded from the EMA baseline, so
  a spike cannot inflate the variance estimate and mask the smaller
  but sustained shift that follows it.

A recent-error window (bounded ``deque``) backs the report with the
held-out statistics the operator sees.  After the runtime adapts (or
rolls back), :meth:`rearm` resets the accumulator and re-enters
warmup: the new weights produce a new error distribution, and judging
it against the old baseline would re-trigger immediately.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["DriftSentinel"]


class DriftSentinel:
    """EMA + CUSUM drift detector for a stream of forecast errors.

    Parameters
    ----------
    ema_beta:
        Baseline smoothing; 0.98 remembers roughly the last 50 ticks.
    slack:
        CUSUM slack ``k``: errors within ``slack`` standard deviations
        of the mean drain the accumulator instead of feeding it.
    threshold:
        Accumulated standardized excess that confirms drift.
    increment_cap:
        Per-tick cap on the accumulator increment (spike immunity).
    spike_z:
        Standardized errors above this are classified ``"spike"`` and
        excluded from the EMA baseline.
    warmup:
        Ticks used to seed the baseline before any classification.
    window:
        Length of the recent-error window kept for reporting.
    """

    def __init__(self, ema_beta=0.98, slack=0.5, threshold=8.0,
                 increment_cap=3.0, spike_z=6.0, warmup=16, window=64):
        if not 0.0 < ema_beta < 1.0:
            raise ValueError(f"ema_beta must be in (0, 1); got {ema_beta}")
        if threshold <= 0 or increment_cap <= 0:
            raise ValueError("threshold and increment_cap must be > 0")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2; got {warmup}")
        self.ema_beta = float(ema_beta)
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.increment_cap = float(increment_cap)
        self.spike_z = float(spike_z)
        self.warmup = int(warmup)
        self._mean = 0.0
        self._var = 0.0
        self._seen = 0          # healthy errors folded into the baseline
        self._cusum = 0.0
        self.drifts = 0
        self.spikes = 0
        self.recent = deque(maxlen=int(window))

    # ------------------------------------------------------------------
    @property
    def cusum(self):
        """Current accumulator value (0 when quiescent)."""
        return self._cusum

    @property
    def baseline_mean(self):
        """The EMA error baseline (spikes excluded, so at the moment
        drift is confirmed this still describes the *pre-drift* error
        level — the recovery target for post-retrain probation)."""
        return self._mean

    @property
    def armed(self):
        """Whether the baseline has enough history to classify."""
        return self._seen >= self.warmup

    def _fold(self, error):
        """EMA update of the baseline mean/variance."""
        self._seen += 1
        if self._seen == 1:
            # Cold start: the first error *is* the baseline.  Variance
            # stays zero until a second sample disagrees with it.
            self._mean = error
            self._var = 0.0
            return
        beta = self.ema_beta
        delta = error - self._mean
        self._mean += (1.0 - beta) * delta
        self._var = beta * (self._var + (1.0 - beta) * delta * delta)

    def observe(self, error):
        """Classify one forecast error.

        Returns ``"warmup"`` (baseline still seeding), ``"ok"``,
        ``"spike"`` (transient outlier, excluded from the baseline),
        or ``"drift"`` (sustained shift confirmed; the caller should
        adapt and then :meth:`rearm`).
        """
        error = float(error)
        if not np.isfinite(error):
            # A non-finite error is a broken *measurement*, not a
            # drifted world; treat as a spike and keep the baseline.
            self.spikes += 1
            return "spike"
        self.recent.append(error)
        if not self.armed:
            self._fold(error)
            return "warmup"
        std = float(np.sqrt(self._var))
        if std <= 0.0:
            std = max(abs(self._mean), 1e-12) * 1e-3
        z = (error - self._mean) / std
        if z > self.spike_z:
            # First-step spike suppression: a single huge error moves
            # the CUSUM by at most increment_cap and never the EMA —
            # but a *run* of them still accumulates to the threshold,
            # because a hard regime change looks like spikes forever.
            self.spikes += 1
            self._cusum += self.increment_cap
            if self._cusum > self.threshold:
                self.drifts += 1
                return "drift"
            return "spike"
        self._fold(error)
        self._cusum = max(0.0, self._cusum
                          + min(z - self.slack, self.increment_cap))
        if self._cusum > self.threshold:
            self.drifts += 1
            return "drift"
        return "ok"

    def rearm(self):
        """Reset after adaptation: new weights, new error distribution."""
        self._mean = 0.0
        self._var = 0.0
        self._seen = 0
        self._cusum = 0.0
        self.recent.clear()

    # ------------------------------------------------------------------
    def report(self):
        """JSON-able state: baseline, accumulator, recent-window stats."""
        recent = np.asarray(self.recent, dtype=np.float64)
        return {
            "armed": self.armed,
            "ema_mean": self._mean,
            "ema_std": float(np.sqrt(self._var)),
            "cusum": self._cusum,
            "threshold": self.threshold,
            "drifts": self.drifts,
            "spikes": self.spikes,
            "recent_mean": float(recent.mean()) if recent.size else None,
            "recent_max": float(recent.max()) if recent.size else None,
            "recent_count": int(recent.size),
        }
