"""Watermark-ordered tick ingestion with explicit fault semantics.

The ingestor turns an arbitrary arrival order into the strictly
ordered, gap-annotated sequence the rolling windows need:

- **Reordering.** Ticks may arrive up to ``watermark`` intervals out
  of order.  Arrivals park in a bounded pending buffer and are emitted
  in index order as soon as they are contiguous with the stream clock.
- **Gap declaration.** An interval is declared *missing* once a tick
  ``watermark`` or more intervals ahead of it has arrived — the stream
  has moved on, so waiting longer would stall every later forecast.
  The caller receives an explicit ``("gap", index)`` event and decides
  the fill policy (:meth:`repro.serve.cache.WindowCache.push_gap`).
- **Quarantine.** Ticks that can never be used — wrong shape, ``Inf``
  or negative flows, duplicate or out-of-range indices, or arrivals
  for intervals already emitted/declared — are refused with a recorded
  :class:`~repro.stream.ticks.QuarantineRecord` rather than silently
  dropped or, worse, ingested.

``NaN`` cells are *not* corruption: they mean a sensor missed one
reading, and pass through with the frame for cell-level masking by the
runtime (docs/streaming.md).  A frame that is entirely ``NaN`` carries
no observation at all and is quarantined.

The pending buffer cannot grow past ``watermark - 1`` entries: any
arrival that far ahead forces the intervening gaps to be declared
first.  The quarantine log itself is a ``deque(maxlen=...)`` — every
buffer in this package is bounded (see the ``bounded-buffer`` lint
rule in docs/static_analysis.md).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.stream.ticks import QuarantineRecord, Tick

__all__ = ["StreamIngestor"]

# Audit-log bound: a hostile feed can quarantine every tick, and the
# log must not become the unbounded buffer it exists to prevent.
_MAX_QUARANTINE_RECORDS = 256


class StreamIngestor:
    """Reorder, gap-declare, and quarantine a raw tick feed.

    Parameters
    ----------
    frame_shape:
        Expected frame shape, ``(2, H, W)``.
    watermark:
        How many intervals out of order a tick may arrive and still be
        accepted.  ``1`` means strictly in-order (any hole is declared
        a gap by the very next arrival).
    start_index:
        The stream clock's first interval (0 for a fresh stream, or
        the first live interval when warm-starting from stored
        history).
    """

    def __init__(self, frame_shape, watermark=4, start_index=0):
        if watermark < 1:
            raise ValueError(f"watermark must be >= 1; got {watermark}")
        self.frame_shape = tuple(int(s) for s in frame_shape)
        self.watermark = int(watermark)
        self._next = int(start_index)
        self._pending = {}  # index -> frame; bounded by the watermark
        self.quarantine = deque(maxlen=_MAX_QUARANTINE_RECORDS)
        self.counts = {"emitted": 0, "gaps": 0, "quarantined": 0,
                       "reordered": 0}

    # ------------------------------------------------------------------
    @property
    def next_index(self):
        """The stream clock: the next interval to be emitted."""
        return self._next

    @property
    def pending_count(self):
        """Parked out-of-order ticks (always ``< watermark``)."""
        return len(self._pending)

    def _refuse(self, index, reason, detail=""):
        record = QuarantineRecord(index=int(index), reason=reason,
                                  detail=detail)
        self.quarantine.append(record)
        self.counts["quarantined"] += 1
        return record

    def _validate(self, tick: Tick):
        """Return a quarantine record, or ``None`` when the tick is usable."""
        index = int(tick.index)
        if index < 0:
            return self._refuse(index, "bad_index", "negative interval index")
        if index < self._next:
            return self._refuse(
                index, "late",
                "interval already emitted or declared missing; "
                f"stream clock is at {self._next}")
        if index in self._pending:
            return self._refuse(index, "duplicate",
                                "a tick for this interval is already pending")
        frame = np.asarray(tick.frame)
        if frame.shape != self.frame_shape:
            return self._refuse(
                index, "bad_shape",
                f"frame shape {frame.shape} != expected {self.frame_shape}")
        if np.isinf(frame).any():
            return self._refuse(index, "corrupt",
                                f"{int(np.isinf(frame).sum())} Inf cell(s)")
        finite = np.isfinite(frame)
        if not finite.any():
            return self._refuse(index, "corrupt",
                                "every cell is NaN: no observation")
        if (frame[finite] < 0).any():
            return self._refuse(
                index, "corrupt",
                f"{int((frame[finite] < 0).sum())} negative flow cell(s)")
        return None

    # ------------------------------------------------------------------
    def offer(self, tick: Tick):
        """Ingest one arrival; returns the ordered events it releases.

        Each event is ``("tick", index, frame)`` for an observation or
        ``("gap", index, None)`` for a declared-missing interval, in
        strictly increasing index order.  A quarantined arrival
        releases nothing (its record lands in :attr:`quarantine`).
        """
        if self._validate(tick) is not None:
            return []
        index = int(tick.index)
        if index != self._next:
            self.counts["reordered"] += 1
        self._pending[index] = np.asarray(tick.frame, dtype=np.float64)
        return self._drain()

    def flush(self):
        """End of stream: emit everything pending, declaring interior gaps."""
        events = []
        while self._pending:
            events.extend(self._drain(force=True))
        return events

    def _drain(self, force=False):
        """Emit every interval the watermark (or ``force``) allows."""
        events = []
        while True:
            if self._next in self._pending:
                frame = self._pending.pop(self._next)
                events.append(("tick", self._next, frame))
                self.counts["emitted"] += 1
                self._next += 1
                continue
            if self._pending and (
                    force
                    or max(self._pending) - self._next >= self.watermark):
                # The stream has moved `watermark` intervals past this
                # hole: declare it missing and advance the clock.
                events.append(("gap", self._next, None))
                self.counts["gaps"] += 1
                self._next += 1
                continue
            return events

    # ------------------------------------------------------------------
    def telemetry(self):
        """JSON-able ingestion counters and the quarantine audit log."""
        return {
            "next_index": self._next,
            "pending": len(self._pending),
            "watermark": self.watermark,
            "counts": dict(self.counts),
            "quarantine": [record.as_dict() for record in self.quarantine],
        }
