"""The streaming runtime: ingest → windows → forecast → adapt.

:class:`StreamRuntime` is the facade tying the pieces together around
a :class:`~repro.serve.server.ForecastServer`:

- ticks enter through a :class:`~repro.stream.ingest.StreamIngestor`
  (watermark reordering, quarantine, gap declaration);
- ordered intervals maintain a **raw-frame**
  :class:`~repro.serve.cache.WindowCache` plus the bounded rolling
  history the warm-retrain path fits on.  Frames are cached raw and
  scaled at sample-assembly time: min-max scaling is elementwise, so
  transform-then-slice and slice-then-transform are bitwise identical
  — and caching raw keeps every cached window valid when adaptation
  widens the scaler bounds mid-stream;
- each model forecast is scored against the truth tick that later
  arrives for its interval; the error feeds a
  :class:`~repro.stream.drift.DriftSentinel`;
- confirmed drift triggers bounded warm re-training
  (:func:`~repro.stream.adapt.warm_retrain`) and a generation-counted
  hot swap; while the model is flagged, retraining, or the swap
  failed, forecasts come from the degradation ladder
  (:mod:`repro.stream.degrade`) with the reason attached.

Clean-stream guarantee: on an in-order, complete, uncorrupted stream
the runtime's model forecasts are **bit-identical** to the offline
``Trainer.predict_scaled`` on ``build_samples`` at the same index —
pinned by ``tests/stream/test_runtime.py`` and enforced in CI by
``benchmarks/bench_stream_robustness.py``.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.data.windows import SampleBatch
from repro.metrics import rmse
from repro.profiling import get_active_profiler
from repro.serve.cache import WindowCache
from repro.serve.server import ForecastServer, ServeConfig
from repro.stream.adapt import AdaptationConfig, AdaptationError, warm_retrain
from repro.stream.degrade import StreamingHistoricalAverage, StreamingPersistence
from repro.stream.drift import DriftSentinel
from repro.stream.ingest import StreamIngestor
from repro.stream.ticks import Tick

__all__ = ["ForecastResult", "StreamConfig", "StreamRuntime"]

# Failure-reason audit log bound (same discipline as the quarantine).
_MAX_FAILURE_RECORDS = 64


@dataclass
class StreamConfig:
    """Streaming runtime knobs (docs/streaming.md)."""

    watermark: int = 4          # reorder tolerance, intervals
    history: int = 512          # rolling raw-frame window (retrain data)
    # Weights older than this many ticks are served through the
    # fallback ladder with reason "stale".  None disables the check —
    # a model only goes stale relative to drift, which the sentinel
    # already watches.
    staleness_limit: int | None = None
    auto_adapt: bool = True     # retrain + swap on confirmed drift
    adapt_retry: int = 8        # ticks between retries after a failure
    # Post-swap probation: the next `probation_ticks` scored errors
    # must average within `recovery_factor` x the pre-drift baseline,
    # else another adaptation round fires — up to `max_adapt_rounds`
    # per drift event.  One bounded retrain often under-corrects on a
    # window still dominated by the old regime; probation iterates
    # until the held-out error statistics actually recover.
    recovery_factor: float = 1.2
    probation_ticks: int = 10
    max_adapt_rounds: int = 3
    # Drift sentinel knobs (see repro.stream.drift for semantics).
    drift_beta: float = 0.98
    drift_slack: float = 0.5
    drift_threshold: float = 8.0
    drift_increment_cap: float = 3.0
    drift_spike_z: float = 6.0
    drift_warmup: int = 16
    hist_avg_beta: float = 0.85
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)

    def __post_init__(self):
        if self.history < 8:
            raise ValueError(f"history must be >= 8; got {self.history}")
        if self.adapt_retry < 1:
            raise ValueError(
                f"adapt_retry must be >= 1; got {self.adapt_retry}")
        if self.staleness_limit is not None and self.staleness_limit < 1:
            raise ValueError(
                f"staleness_limit must be >= 1; got {self.staleness_limit}")
        if self.recovery_factor < 1.0:
            raise ValueError(
                f"recovery_factor must be >= 1; got {self.recovery_factor}")
        if self.probation_ticks < 1 or self.max_adapt_rounds < 1:
            raise ValueError(
                "probation_ticks and max_adapt_rounds must be >= 1; got "
                f"{self.probation_ticks}, {self.max_adapt_rounds}")


@dataclass
class ForecastResult:
    """One answered forecast, with provenance.

    ``source`` is the ladder rung that answered: ``"model"``,
    ``"historical_average"``, ``"persistence"``, or ``"zeros"``.
    ``reason`` is ``None`` for a healthy model answer, else why the
    ladder was used.  ``imputed`` counts carry-forward frames per
    sub-series in the window the forecast was built on (model answers
    only).
    """

    index: int
    flows: np.ndarray
    source: str
    reason: str | None = None
    staleness: int = 0
    generation: int = 0
    imputed: dict = None

    @property
    def degraded(self):
        """Whether the answer came from the fallback ladder."""
        return self.source != "model"


class StreamRuntime:
    """Disruption-tolerant streaming forecasts over one flow stream.

    Parameters
    ----------
    model:
        The offline-trained serving model (the repo's forecaster
        protocol).
    scaler:
        The fitted :class:`~repro.data.scaler.MinMaxScaler` from
        offline training; adaptation widens it in place.
    periodicity, frame_shape, samples_per_day:
        Stream geometry — must match what the model was trained with.
    config:
        A :class:`StreamConfig`; defaults apply when omitted.
    model_factory:
        Zero-argument callable building a fresh, architecture-identical
        model; required for warm re-training (``auto_adapt``).
    checkpoint_dir:
        Where retrain checkpoints are written before the hot swap;
        required for warm re-training.
    serve_config:
        Optional :class:`~repro.serve.server.ServeConfig`; must keep
        ``replicas=0`` (warm restarts seed from the in-process
        serving weights).
    """

    def __init__(self, model, scaler, periodicity, frame_shape,
                 samples_per_day, config: StreamConfig = None,
                 model_factory=None, checkpoint_dir=None,
                 serve_config: ServeConfig = None):
        self.config = config if config is not None else StreamConfig()
        if serve_config is None:
            serve_config = ServeConfig(max_wait_ms=0.0)
        if serve_config.replicas != 0:
            raise ValueError(
                "StreamRuntime requires replicas=0: warm re-training "
                "seeds candidates from the in-process serving weights")
        self.scaler = scaler
        self.periodicity = periodicity
        self.frame_shape = tuple(int(s) for s in frame_shape)
        self.model_factory = model_factory
        self.checkpoint_dir = checkpoint_dir
        self.server = ForecastServer(model, serve_config)
        self.ingestor = StreamIngestor(frame_shape,
                                       watermark=self.config.watermark)
        self.cache = WindowCache(periodicity, frame_shape, dtype=np.float64)
        self.history = deque(maxlen=self.config.history)
        self.drift = DriftSentinel(
            ema_beta=self.config.drift_beta, slack=self.config.drift_slack,
            threshold=self.config.drift_threshold,
            increment_cap=self.config.drift_increment_cap,
            spike_z=self.config.drift_spike_z,
            warmup=self.config.drift_warmup)
        self.hist_avg = StreamingHistoricalAverage(
            samples_per_day, frame_shape, beta=self.config.hist_avg_beta)
        self.persistence = StreamingPersistence(frame_shape)
        self._last_model_forecast = None  # (index, flows) awaiting truth
        self._adapt_cooldown = 0
        # Probation state: the pre-drift error level to recover to,
        # the post-swap errors collected so far, and how many
        # adaptation rounds this drift event has spent.
        self._recovery_target = None
        self._probation_errors = None
        self._adapt_rounds = 0
        self.masked_cells = 0
        self.retrains = 0
        self.retrain_failures = deque(maxlen=_MAX_FAILURE_RECORDS)
        self.fallbacks = {}  # source -> count
        self.drift_events = []  # indices where drift was confirmed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Start the serving stack; returns ``self``."""
        self.server.start()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def close(self):
        """Drain and stop the serving stack."""
        self.server.close()

    def warm_start(self, flows):
        """Seed the windows from stored history before going live.

        ``flows`` is the raw ``(T, 2, H, W)`` tail the model trained
        on; interval ``i`` of the stream clock is ``flows[i]``.  Must
        be called before any tick is ingested.  Warm-start frames do
        not age the weights (:attr:`ForecastServer.staleness_ticks`
        stays 0 — the model has already seen them).
        """
        if self.cache.count or self.ingestor.next_index:
            raise RuntimeError("warm_start must precede any ingestion")
        flows = np.asarray(flows, dtype=np.float64)
        for index in range(len(flows)):
            frame = flows[index]
            self.cache.push(frame)
            self.history.append(frame.copy())
            self.hist_avg.update(index, frame)
            self.persistence.update(frame)
        self.ingestor = StreamIngestor(self.frame_shape,
                                       watermark=self.config.watermark,
                                       start_index=len(flows))
        return self

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, tick: Tick):
        """Feed one arrival; applies every interval it releases.

        Returns the list of applied ``("tick"|"gap", index)`` pairs (a
        quarantined arrival applies nothing).
        """
        applied = []
        for kind, index, frame in self.ingestor.offer(tick):
            self._apply(kind, index, frame)
            applied.append((kind, index))
        return applied

    def flush(self):
        """Apply everything still pending in the ingestor."""
        applied = []
        for kind, index, frame in self.ingestor.flush():
            self._apply(kind, index, frame)
            applied.append((kind, index))
        return applied

    def _apply(self, kind, index, frame):
        """Advance the stream clock by one ordered interval."""
        profiler = get_active_profiler()
        self.server.note_tick()
        if kind == "gap":
            self.cache.push_gap()
            fill = self.cache.last_frame
            self.history.append(fill)
            # Climatology and persistence track *observations* only: a
            # carry-forward fill teaches them nothing.
            if profiler is not None:
                profiler._record_stream_tick(gap_fills=1)
        else:
            frame = self._mask_fill(frame)
            self._score(index, frame)
            self.cache.push(frame)
            self.history.append(frame.copy())
            self.hist_avg.update(index, frame)
            self.persistence.update(frame)
            if profiler is not None:
                profiler._record_stream_tick()
        if self._adapt_cooldown > 0:
            self._adapt_cooldown -= 1
            if (self._adapt_cooldown == 0 and self.config.auto_adapt
                    and self.server.degraded is not None):
                self.adapt()

    def _mask_fill(self, frame):
        """Fill missing sensor cells (NaN) with their last known value."""
        mask = np.isnan(frame)
        if not mask.any():
            return frame
        self.masked_cells += int(mask.sum())
        base = self.cache.last_frame
        if base is None:
            base = np.zeros(self.frame_shape)
        return np.where(mask, base, frame)

    def _score(self, index, truth):
        """Feed the drift sentinel once truth arrives for a forecast."""
        if (self._last_model_forecast is None
                or self._last_model_forecast[0] != index):
            return
        _, predicted = self._last_model_forecast
        self._last_model_forecast = None
        error = rmse(predicted, truth)
        baseline_before = self.drift.baseline_mean if self.drift.armed else None
        state = self.drift.observe(error)
        if state != "drift" and self._probation_errors is not None:
            self._probation_errors.append(error)
            if len(self._probation_errors) >= self.config.probation_ticks:
                self._finish_probation()
        if state == "drift":
            profiler = get_active_profiler()
            if profiler is not None:
                profiler._record_stream_drift()
            self.drift_events.append(index)
            if self.config.auto_adapt:
                # The EMA baseline excludes spikes, so at confirmation
                # it still describes the pre-drift error level — the
                # target post-retrain probation must recover to.
                if baseline_before is not None:
                    self._recovery_target = (self.config.recovery_factor
                                             * baseline_before)
                self._probation_errors = None
                self._adapt_rounds = 0
                # Degrade now, retrain after `fresh_ticks` more ticks:
                # retraining the instant drift is confirmed would fit
                # on a window that barely contains the new regime.
                # The fallback ladder answers in the meantime.
                self.server.mark_degraded(
                    f"drift confirmed at tick {index} "
                    f"(cusum {self.drift.cusum:.2f})")
                fresh = self.config.adaptation.fresh_ticks
                if fresh > 0:
                    self._adapt_cooldown = fresh
                else:
                    self.adapt()
            # Without auto-adapt the model keeps serving (frozen arm):
            # the drift is recorded, nothing can fix it.
            self.drift.rearm()

    def _finish_probation(self):
        """Judge a completed post-swap probation window."""
        errors = self._probation_errors
        self._probation_errors = None
        mean_error = float(np.mean(errors))
        if (self._recovery_target is None
                or mean_error <= self._recovery_target
                or self._adapt_rounds >= self.config.max_adapt_rounds):
            # Recovered (or out of rounds: accept what we have rather
            # than retraining forever on the same window).
            self._recovery_target = None
            return
        self.server.mark_degraded(
            f"recovery insufficient: post-swap error {mean_error:.3f} > "
            f"target {self._recovery_target:.3f} "
            f"(round {self._adapt_rounds}/{self.config.max_adapt_rounds})")
        self._adapt_cooldown = self.config.adaptation.fresh_ticks or 1

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def forecast(self):
        """Answer for the next unobserved interval, from the ladder.

        Never raises on a degraded stack: the answer always comes from
        the best rung currently able to answer, with provenance.
        """
        index = self.cache.next_index
        reason = None
        if not self.cache.ready:
            reason = "warmup: windows not yet populated"
        elif self.server.degraded is not None:
            reason = self.server.degraded
        elif (self.config.staleness_limit is not None
              and self.server.staleness_ticks > self.config.staleness_limit):
            reason = (f"stale: weights {self.server.staleness_ticks} ticks "
                      f"old (limit {self.config.staleness_limit})")
        if reason is None:
            flows = self._model_forecast()
            self._last_model_forecast = (index, flows)
            return ForecastResult(
                index=index, flows=flows, source="model",
                staleness=self.server.staleness_ticks,
                generation=self.server.generation,
                imputed=self.cache.imputed_counts())
        return self._fallback(index, reason)

    def _model_forecast(self):
        """Scaled forward through the server on the raw windows."""
        sample = self.cache.sample()
        closeness = self.scaler.transform(sample.closeness)
        scaled = SampleBatch(
            closeness=closeness,
            period=self.scaler.transform(sample.period),
            trend=self.scaler.transform(sample.trend),
            # The target is the unobserved interval being forecast; a
            # zero placeholder in the transform dtype keeps the batch
            # homogeneous without inventing values.
            target=np.zeros_like(sample.target, dtype=closeness.dtype),
            indices=sample.indices)
        prediction = self.server.forecast(scaled)[0]
        return self.scaler.inverse_transform(prediction)

    def _fallback(self, index, reason):
        """Walk the degradation ladder below the model."""
        profiler = get_active_profiler()
        if profiler is not None:
            profiler._record_stream_fallback()
        if self.hist_avg.ready(index):
            source, flows = "historical_average", self.hist_avg.predict(index)
        elif self.persistence.ready:
            source, flows = "persistence", self.persistence.predict()
        else:
            source, flows = "zeros", np.zeros(self.frame_shape)
        self.fallbacks[source] = self.fallbacks.get(source, 0) + 1
        return ForecastResult(
            index=index, flows=flows, source=source, reason=reason,
            staleness=self.server.staleness_ticks,
            generation=self.server.generation)

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt(self):
        """Warm-retrain on the rolling window and hot-swap on success.

        Returns ``True`` on a completed swap.  Every failure mode —
        missing factory/checkpoint dir, short history, divergence,
        failed validation gate, corrupt checkpoint, swap error — lands
        in :attr:`retrain_failures`, leaves the server degraded, and
        schedules a retry; it never propagates to the caller.
        """
        profiler = get_active_profiler()
        started = perf_counter()
        try:
            if self.model_factory is None or self.checkpoint_dir is None:
                raise AdaptationError(
                    "adaptation needs model_factory and checkpoint_dir")
            self.server.mark_degraded("retraining")
            path = os.path.join(self.checkpoint_dir, "stream-retrain.npz")
            path, _history, candidate_rmse, serving_rmse = warm_retrain(
                self.server.model, self.model_factory,
                np.asarray(self.history), self.scaler, self.periodicity,
                config=self.config.adaptation, checkpoint_path=path)
            try:
                self.server.load_checkpoint(path)
            except Exception as error:
                raise AdaptationError(f"hot swap failed: {error}") from error
        except AdaptationError as error:
            self.retrain_failures.append(str(error))
            self.server.mark_degraded(f"retrain failed: {error}")
            self._adapt_cooldown = self.config.adapt_retry
            return False
        finally:
            if profiler is not None:
                profiler._record_stream_retrain(perf_counter() - started)
        self.retrains += 1
        self._adapt_rounds += 1
        self.server.clear_degraded()
        self.drift.rearm()
        self._last_model_forecast = None
        # Open the probation window: the next scored errors decide
        # whether this round actually recovered the error level.
        if self._recovery_target is not None:
            self._probation_errors = []
        return True

    # ------------------------------------------------------------------
    def telemetry(self):
        """JSON-able runtime state across every subsystem."""
        return {
            "ingest": self.ingestor.telemetry(),
            "drift": self.drift.report(),
            "drift_events": list(self.drift_events),
            "serve": self.server.snapshot(),
            "cache": {
                "count": self.cache.count,
                "ready": self.cache.ready,
                "gap_count": self.cache.gap_count,
                "imputed": (self.cache.imputed_counts()
                            if self.cache.ready else None),
            },
            "history_len": len(self.history),
            "masked_cells": self.masked_cells,
            "fallbacks": dict(self.fallbacks),
            "retrains": self.retrains,
            "retrain_failures": list(self.retrain_failures),
        }
