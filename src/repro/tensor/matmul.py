"""Matrix multiplication (with batch broadcasting) and its gradient."""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _core
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor.ops import unbroadcast

__all__ = ["matmul", "dot", "outer"]


def matmul(a, b):
    """``a @ b`` with numpy's batched-matmul broadcasting rules.

    Supports the common cases used by the library: 2-D x 2-D,
    batched (N, m, k) x (k, n) or (N, m, k) x (N, k, n), and 1-D
    vectors on either side (treated as rows/columns like numpy).
    """
    a = as_tensor(a)
    b = as_tensor(b)
    data = a.data @ b.data

    a_is_vec = a.ndim == 1
    b_is_vec = b.ndim == 1

    def backward(grad):
        g = grad
        a_d, b_d = a.data, b.data
        # Promote vectors so every case reduces to batched matmul.
        if a_is_vec:
            a_d = a_d[None, :]
        if b_is_vec:
            b_d = b_d[:, None]
        if a_is_vec and b_is_vec:
            g = np.asarray(g).reshape(1, 1)
        elif a_is_vec:
            g = np.expand_dims(g, -2)
        elif b_is_vec:
            g = np.expand_dims(g, -1)

        if a.requires_grad:
            grad_a = g @ np.swapaxes(b_d, -1, -2)
            if a_is_vec:
                grad_a = grad_a.reshape(a.shape) if grad_a.ndim <= 2 else \
                    grad_a.sum(axis=tuple(range(grad_a.ndim - 2))).reshape(a.shape)
            else:
                grad_a = unbroadcast(grad_a, a.shape)
            a._accumulate_grad(grad_a)
        if b.requires_grad:
            grad_b = np.swapaxes(a_d, -1, -2) @ g
            if b_is_vec:
                grad_b = grad_b.reshape(b.shape) if grad_b.ndim <= 2 else \
                    grad_b.sum(axis=tuple(range(grad_b.ndim - 2))).reshape(b.shape)
            else:
                grad_b = unbroadcast(grad_b, b.shape)
            b._accumulate_grad(grad_b)

    result = Tensor._from_op(data, (a, b), backward, name="matmul")
    rec = _core._RECORDER
    if rec is not None:
        ad, bd, od = a.data, b.data, result.data
        if a.ndim >= 2 and b.ndim >= 2:
            rec.ufunc(np.matmul, (ad, bd), od)
        else:
            # Vector operands collapse dims; replay through assignment
            # (rare outside of 2-D/batched paths).
            def refresh():
                od[...] = ad @ bd

            rec.run(refresh, reads=(ad, bd), writes=(od,))
    return result


def dot(a, b):
    """Inner product of two 1-D tensors."""
    a = as_tensor(a)
    b = as_tensor(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dot expects 1-D tensors; use matmul for higher ranks")
    return matmul(a, b)


def outer(a, b):
    """Outer product of two 1-D tensors."""
    from repro.tensor.shape import reshape

    a = as_tensor(a)
    b = as_tensor(b)
    return matmul(reshape(a, (-1, 1)), reshape(b, (1, -1)))
