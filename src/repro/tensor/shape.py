"""Shape-manipulation operations with gradients."""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _core
from repro.tensor.tensor import Tensor, as_tensor


def _record_view_or_copy(result, a, remake):
    """Register a replay record for a shape op.

    Shape ops produce either a *view* of their input (nothing to refresh
    — the buffer aliases the input, which the plan keeps fresh) or a
    fresh array, which replay refreshes by re-running ``remake`` into
    the output buffer.
    """
    rec = _core._RECORDER
    if rec is None:
        return
    od, ad = result.data, a.data
    if od.base is not None and np.shares_memory(od, ad):
        rec.view(od, ad)
        return

    def refresh():
        od[...] = remake(ad)

    rec.run(refresh, reads=(ad,), writes=(od,))

__all__ = [
    "reshape",
    "transpose",
    "swapaxes",
    "flatten",
    "concat",
    "stack",
    "split",
    "getitem",
    "pad",
    "broadcast_to",
    "squeeze",
    "expand_dims",
    "flip",
    "repeat_interleave",
    "tile",
]


def reshape(a, shape):
    """Reshape to ``shape`` (supports one -1 wildcard like numpy)."""
    a = as_tensor(a)
    data = a.data.reshape(shape)

    def backward(grad):
        a._accumulate_grad(grad.reshape(a.shape))

    result = Tensor._from_op(data, (a,), backward, name="reshape")
    _record_view_or_copy(result, a, lambda ad: ad.reshape(shape))
    return result


def transpose(a, axes=None):
    """Permute axes; ``axes=None`` reverses them (numpy semantics)."""
    a = as_tensor(a)
    data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        a._accumulate_grad(np.transpose(grad, inverse))

    result = Tensor._from_op(data, (a,), backward, name="transpose")
    _record_view_or_copy(result, a, lambda ad: np.transpose(ad, axes))
    return result


def swapaxes(a, axis1, axis2):
    """Swap two axes."""
    a = as_tensor(a)
    axes = list(range(a.ndim))
    axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
    return transpose(a, axes)


def flatten(a, start_axis=0):
    """Collapse all axes from ``start_axis`` onward into one."""
    a = as_tensor(a)
    lead = a.shape[:start_axis]
    return reshape(a, lead + (-1,))


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad):
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate_grad(piece)

    result = Tensor._from_op(data, tuple(tensors), backward, name="concat")
    rec = _core._RECORDER
    if rec is not None:
        srcs = [t.data for t in tensors]
        od = result.data

        def refresh():
            np.concatenate(srcs, axis=axis, out=od)

        rec.run(refresh, reads=tuple(srcs), writes=(od,))
    return result


def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate_grad(np.squeeze(piece, axis=axis))

    result = Tensor._from_op(data, tuple(tensors), backward, name="stack")
    rec = _core._RECORDER
    if rec is not None:
        srcs = [t.data for t in tensors]
        od = result.data

        def refresh():
            np.stack(srcs, axis=axis, out=od)

        rec.run(refresh, reads=tuple(srcs), writes=(od,))
    return result


def split(a, sections, axis=0):
    """Split into equal ``sections`` along ``axis``; returns a list."""
    a = as_tensor(a)
    size = a.shape[axis]
    if size % sections != 0:
        raise ValueError(f"axis of size {size} cannot be split into {sections} equal parts")
    step = size // sections
    pieces = []
    for i in range(sections):
        index = [slice(None)] * a.ndim
        index[axis] = slice(i * step, (i + 1) * step)
        pieces.append(getitem(a, tuple(index)))
    return pieces


def getitem(a, index):
    """Basic and integer-array indexing with gradient scatter-add."""
    a = as_tensor(a)
    data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        a._accumulate_grad(full)

    result = Tensor._from_op(data, (a,), backward, name="getitem")
    _record_view_or_copy(result, a, lambda ad: ad[index])
    return result


def pad(a, pad_width, value=0.0):
    """Constant-pad; ``pad_width`` follows ``numpy.pad`` conventions."""
    a = as_tensor(a)
    data = np.pad(a.data, pad_width, mode="constant", constant_values=value)
    norm = np.asarray(
        np.broadcast_to(np.asarray(pad_width, dtype=int).reshape(-1, 2)
                        if np.asarray(pad_width).ndim > 1
                        else np.tile(np.asarray(pad_width, dtype=int), (a.ndim, 1)),
                        (a.ndim, 2))
    )
    slices = tuple(
        slice(before, dim + before) for (before, _after), dim in zip(norm, a.shape)
    )

    def backward(grad):
        a._accumulate_grad(grad[slices])

    result = Tensor._from_op(data, (a,), backward, name="pad")
    rec = _core._RECORDER
    if rec is not None:
        ad, od = a.data, result.data
        inner = od[slices]

        def refresh():
            # The pad region is constant since record; only the
            # interior tracks the input.
            inner[...] = ad

        rec.run(refresh, reads=(ad,), writes=(od,))
    return result


def broadcast_to(a, shape):
    """Broadcast to ``shape``; backward sums over the broadcast axes."""
    from repro.tensor.ops import unbroadcast

    a = as_tensor(a)
    data = np.broadcast_to(a.data, shape).copy()

    def backward(grad):
        a._accumulate_grad(unbroadcast(grad, a.shape))

    result = Tensor._from_op(data, (a,), backward, name="broadcast_to")
    rec = _core._RECORDER
    if rec is not None:
        ad, od = a.data, result.data

        def refresh():
            np.copyto(od, ad)

        rec.run(refresh, reads=(ad,), writes=(od,))
    return result


def squeeze(a, axis=None):
    """Remove size-1 axes."""
    a = as_tensor(a)
    return reshape(a, np.squeeze(a.data, axis=axis).shape)


def expand_dims(a, axis):
    """Insert a size-1 axis at ``axis``."""
    a = as_tensor(a)
    return reshape(a, np.expand_dims(a.data, axis).shape)


def flip(a, axis):
    """Reverse along ``axis``."""
    a = as_tensor(a)
    data = np.flip(a.data, axis=axis)

    def backward(grad):
        a._accumulate_grad(np.flip(grad, axis=axis))

    result = Tensor._from_op(data, (a,), backward, name="flip")
    _record_view_or_copy(result, a, lambda ad: np.flip(ad, axis=axis))
    return result


def repeat_interleave(a, repeats, axis):
    """Repeat each element ``repeats`` times along ``axis``."""
    a = as_tensor(a)
    data = np.repeat(a.data, repeats, axis=axis)

    def backward(grad):
        new_shape = list(a.shape)
        new_shape[axis:axis + 1] = [a.shape[axis], repeats]
        a._accumulate_grad(grad.reshape(new_shape).sum(axis=axis + 1))

    result = Tensor._from_op(data, (a,), backward, name="repeat_interleave")
    _record_view_or_copy(result, a, lambda ad: np.repeat(ad, repeats, axis=axis))
    return result


def tile(a, reps):
    """Tile like ``numpy.tile`` (gradient folds the copies back)."""
    from repro.tensor.ops import unbroadcast

    a = as_tensor(a)
    reps = tuple(reps) if np.iterable(reps) else (reps,)
    data = np.tile(a.data, reps)

    # Tiling is a broadcast of a reshaped input: fold the gradient by
    # reshaping into (rep, dim) pairs and summing the rep axes.
    full_reps = (1,) * (data.ndim - len(reps)) + reps
    in_shape = (1,) * (data.ndim - a.ndim) + a.shape

    def backward(grad):
        shape = []
        for rep, dim in zip(full_reps, in_shape):
            shape.extend([rep, dim])
        folded = grad.reshape(shape)
        folded = folded.sum(axis=tuple(range(0, folded.ndim, 2)))
        a._accumulate_grad(unbroadcast(folded, a.shape))

    result = Tensor._from_op(data, (a,), backward, name="tile")
    _record_view_or_copy(result, a, lambda ad: np.tile(ad, reps))
    return result
