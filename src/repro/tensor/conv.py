"""2-D convolution and pooling with gradients.

The forward pass extracts sliding windows with
``numpy.lib.stride_tricks.sliding_window_view`` (a zero-copy im2col),
packs them into a persistent scratch buffer from a
:class:`~repro.tensor.scratch.ScratchPool`, and contracts against the
kernel with one GEMM.  The packed layout replicates exactly what
``np.tensordot(windows, weight, axes=([1, 4, 5], [1, 2, 3]))`` builds
internally (non-contracted axes first, contracted axes in the given
order), so the results are bitwise identical to the previous
tensordot-based implementation — but the im2col/weight/GEMM workspaces
are reused across calls instead of reallocated.  The backward pass
scatters gradients back with a small loop over kernel offsets, which is
fast for the 3x3 kernels used throughout the library.

Under an active :mod:`repro.compile` recorder every op additionally
registers an in-place refresh kernel so a compiled plan can recompute
the output buffers without rebuilding the graph.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor import tensor as _core
from repro.tensor.scratch import default_pool
from repro.tensor.tensor import Tensor, as_tensor, is_grad_enabled

__all__ = ["conv2d", "avg_pool2d", "max_pool2d", "global_avg_pool2d"]


def _pair(value):
    """Coerce an int or 2-tuple to a (h, w) pair."""
    if isinstance(value, int):
        return (value, value)
    return tuple(value)


def conv2d(x, weight, bias=None, stride=1, padding=0, scratch=None):
    """Cross-correlate ``x`` with ``weight`` (the deep-learning "conv").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Ints or (h, w) pairs; padding is symmetric zero padding.
    scratch:
        Optional :class:`~repro.tensor.scratch.ScratchPool` providing
        the im2col/weight/GEMM workspaces.  Defaults to the thread's
        shared pool (or the active compile recorder's private pool), so
        repeated same-shape calls allocate no new scratch.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but kernel expects {c_in_w}")

    recorder = _core._RECORDER
    pool = scratch
    if pool is None:
        # A compiled plan's kernels capture scratch buffers by
        # reference, so recording must draw from the recorder's private
        # pool, never the shared thread-local one.
        pool = recorder.scratch if recorder is not None else default_pool()

    if ph or pw:
        x_pad = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        x_pad = x.data
    h_out = (h + 2 * ph - kh) // sh + 1
    w_out = (w + 2 * pw - kw) // sw + 1

    # (N, C, H', W', KH, KW) view of all receptive fields.
    windows = sliding_window_view(x_pad, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]

    # Pack into the exact operand layout tensordot would build: the
    # non-contracted window axes (0, 2, 3) lead, the contracted axes
    # (1, 4, 5) trail, flattened to a (rows, ck) x (ck, C_out) GEMM.
    ck = c_in * kh * kw
    rows = n * h_out * w_out
    dt = np.result_type(x.dtype, weight.dtype)
    col = pool.get("conv2d.col", (n, h_out, w_out, c_in, kh, kw), dt)
    w_packed = pool.get("conv2d.weight", (c_in, kh, kw, c_out), dt)
    gemm_out = pool.get("conv2d.gemm", (rows, c_out), dt)
    np.copyto(col, windows.transpose(0, 2, 3, 1, 4, 5))
    np.copyto(w_packed, weight.data.transpose(1, 2, 3, 0))
    col2 = col.reshape(rows, ck)
    w2 = w_packed.reshape(ck, c_out)
    np.matmul(col2, w2, out=gemm_out)
    # (N, H', W', C_out) -> (N, C_out, H', W') view over the GEMM output.
    result_t = gemm_out.reshape(n, h_out, w_out, c_out).transpose(0, 3, 1, 2)

    parents = [x, weight]
    bias_t = None
    if bias is not None:
        bias_t = as_tensor(bias)
        out = result_t + bias_t.data[None, :, None, None]
        parents.append(bias_t)
    else:
        out = np.ascontiguousarray(result_t)

    def backward(grad):
        if weight.requires_grad:
            # grad: (N, C_out, H', W'); windows: (N, C_in, H', W', KH, KW)
            grad_w = np.tensordot(grad, windows, axes=([0, 2, 3], [0, 2, 3]))
            weight._accumulate_grad(grad_w)
        if x.requires_grad:
            grad_pad = np.zeros_like(x_pad)
            # One scatter per kernel offset: cheap for small kernels.
            for p in range(kh):
                for q in range(kw):
                    # (N, C_out, H', W') x (C_out, C_in) -> (N, C_in, H', W')
                    contrib = np.tensordot(grad, weight.data[:, :, p, q], axes=([1], [0]))
                    contrib = contrib.transpose(0, 3, 1, 2)
                    grad_pad[:, :, p:p + h_out * sh:sh, q:q + w_out * sw:sw] += contrib
            if ph or pw:
                grad_x = grad_pad[:, :, ph:ph + h, pw:pw + w]
            else:
                grad_x = grad_pad
            x._accumulate_grad(grad_x)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate_grad(grad.sum(axis=(0, 2, 3)))

    result = Tensor._from_op(out, tuple(parents), backward, name="conv2d")

    if recorder is not None:
        # In-place refresh: re-pad the captured x_pad interior, repack
        # scratch (same pooled buffers, shared across same-shape convs),
        # one GEMM, then write the output buffer.  Zero allocations.
        inner = x_pad[:, :, ph:ph + h, pw:pw + w] if (ph or pw) else None
        x_d, w_d = x.data, weight.data
        b_d = bias_t.data if bias_t is not None else None
        out_d = result.data
        win_t = windows.transpose(0, 2, 3, 1, 4, 5)
        reads = (x_d, w_d) if b_d is None else (x_d, w_d, b_d)

        def refresh():
            if inner is not None:
                inner[...] = x_d
            np.copyto(col, win_t)
            np.copyto(w_packed, w_d.transpose(1, 2, 3, 0))
            np.matmul(col2, w2, out=gemm_out)
            if b_d is not None:
                np.add(result_t, b_d[None, :, None, None], out=out_d)
            else:
                np.copyto(out_d, result_t)

        recorder.run(refresh, reads=reads, writes=(out_d,))

    return result


def avg_pool2d(x, kernel_size, stride=None):
    """Average pooling over non-overlapping or strided windows."""
    x = as_tensor(x)
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    h_out = (h - kh) // sh + 1
    w_out = (w - kw) // sw + 1
    windows = sliding_window_view(x.data, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    out = windows.mean(axis=(4, 5))
    scale = 1.0 / (kh * kw)

    def backward(grad):
        grad_x = np.zeros_like(x.data)
        for p in range(kh):
            for q in range(kw):
                grad_x[:, :, p:p + h_out * sh:sh, q:q + w_out * sw:sw] += grad * scale
        x._accumulate_grad(grad_x)

    result = Tensor._from_op(out, (x,), backward, name="avg_pool2d")

    recorder = _core._RECORDER
    if recorder is not None:
        x_d, out_d = x.data, result.data

        def refresh():
            # ``windows`` is a strided view over x.data: auto-fresh.
            np.mean(windows, axis=(4, 5), out=out_d)

        recorder.run(refresh, reads=(x_d,), writes=(out_d,))
    return result


def max_pool2d(x, kernel_size, stride=None):
    """Max pooling; ties split the gradient evenly.

    The 6-D tie mask and gradient-share arrays (``kh * kw`` times the
    input's footprint) are only materialised when a backward closure
    will actually be recorded — under ``no_grad()`` or for detached
    inputs the forward allocates nothing beyond the pooled output.
    """
    x = as_tensor(x)
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    h_out = (h - kh) // sh + 1
    w_out = (w - kw) // sw + 1
    windows = sliding_window_view(x.data, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    out = windows.max(axis=(4, 5))

    backward = None
    mask = counts = share = None
    if is_grad_enabled() and x.requires_grad:
        mask = windows == out[..., None, None]
        counts = mask.sum(axis=(4, 5), keepdims=True)
        share = mask / counts

        def backward(grad):
            grad_x = np.zeros_like(x.data)
            weighted = grad[..., None, None] * share
            for p in range(kh):
                for q in range(kw):
                    grad_x[:, :, p:p + h_out * sh:sh, q:q + w_out * sw:sw] += weighted[..., p, q]
            x._accumulate_grad(grad_x)

    result = Tensor._from_op(out, (x,), backward, name="max_pool2d")

    recorder = _core._RECORDER
    if recorder is not None:
        x_d, out_d = x.data, result.data

        def refresh():
            np.max(windows, axis=(4, 5), out=out_d)
            if mask is not None:
                np.equal(windows, out_d[..., None, None], out=mask)
                counts[...] = mask.sum(axis=(4, 5), keepdims=True)
                np.divide(mask, counts, out=share)

        recorder.run(refresh, reads=(x_d,), writes=(out_d,))
    return result


def global_avg_pool2d(x):
    """Average over the spatial dims, returning ``(N, C)``."""
    from repro.tensor.reductions import mean

    return mean(x, axis=(2, 3))
