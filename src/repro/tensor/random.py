"""Seeded randomness helpers for the tensor library.

All stochastic behaviour in the library flows through
``numpy.random.Generator`` objects so experiments are reproducible from
a single integer seed.  :func:`spawn` derives independent child
generators for submodules (data simulation, weight init,
reparameterization noise) so changing one consumer does not shift the
random stream of another.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["make_rng", "spawn", "normal_like", "reparameterize_noise"]


def make_rng(seed):
    """Create a ``numpy.random.Generator`` from an int seed (or pass one through)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng, count):
    """Derive ``count`` statistically independent child generators."""
    seq = np.random.SeedSequence(rng.integers(0, 2**63 - 1, dtype=np.int64))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def normal_like(tensor, rng, scale=1.0):
    """Detached standard-normal noise with ``tensor``'s shape and dtype."""
    data = rng.standard_normal(tensor.shape).astype(tensor.dtype) * scale
    return Tensor(data)


def reparameterize_noise(shape, rng, dtype=np.float64):
    """Standard-normal epsilon for the VAE reparameterization trick."""
    return Tensor(rng.standard_normal(shape).astype(dtype))
