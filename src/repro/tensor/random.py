"""Seeded randomness helpers for the tensor library.

All stochastic behaviour in the library flows through
``numpy.random.Generator`` objects so experiments are reproducible from
a single integer seed.  :func:`spawn` derives independent child
generators for submodules (data simulation, weight init,
reparameterization noise) so changing one consumer does not shift the
random stream of another.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _core
from repro.tensor.tensor import Tensor

__all__ = ["make_rng", "spawn", "normal_like", "reparameterize_noise"]


def make_rng(seed):
    """Create a ``numpy.random.Generator`` from an int seed (or pass one through)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng, count):
    """Derive ``count`` statistically independent child generators."""
    seq = np.random.SeedSequence(rng.integers(0, 2**63 - 1, dtype=np.int64))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def _record_draw(buf, rng, shape, scale):
    """Register an rng-draw replay kernel for a noise leaf.

    The kernel captures the *generator object* — replay draws from it in
    schedule order, so a replayed step consumes the identical stream the
    eager step would have (in-place assignment applies the same
    round-to-nearest cast as ``astype``, keeping results bitwise equal).
    """
    rec = _core._RECORDER
    if rec is None:
        return

    def draw():
        buf[...] = rng.standard_normal(shape)
        if scale != 1.0:
            np.multiply(buf, scale, out=buf)

    rec.rng(draw, writes=(buf,))


def normal_like(tensor, rng, scale=1.0):
    """Detached standard-normal noise with ``tensor``'s shape and dtype."""
    data = rng.standard_normal(tensor.shape).astype(tensor.dtype) * scale
    result = Tensor(data)
    _record_draw(result.data, rng, tensor.shape, scale)
    return result


def reparameterize_noise(shape, rng, dtype=np.float64):
    """Standard-normal epsilon for the VAE reparameterization trick."""
    result = Tensor(rng.standard_normal(shape).astype(dtype))
    _record_draw(result.data, rng, shape, 1.0)
    return result
