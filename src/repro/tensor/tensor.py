"""Core reverse-mode autodiff tensor.

This module provides the :class:`Tensor` class, a thin wrapper around a
``numpy.ndarray`` that records the operations applied to it so that
gradients can be computed with a single call to :meth:`Tensor.backward`.

The design follows the classic "tape by closure" pattern: every
operation returns a new ``Tensor`` whose ``_backward`` attribute is a
closure that, given the upstream gradient, deposits gradients into the
operation's inputs.  ``backward()`` walks the graph in reverse
topological order and invokes those closures.

Only the graph bookkeeping lives here; the actual operations are
implemented in the sibling modules (:mod:`repro.tensor.ops`,
:mod:`repro.tensor.matmul`, :mod:`repro.tensor.reductions`,
:mod:`repro.tensor.shape`, :mod:`repro.tensor.conv`) and attached to
``Tensor`` as methods by :mod:`repro.tensor` at import time.
"""

from __future__ import annotations

import contextlib
import threading
from time import perf_counter

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "as_tensor",
]

# Grad mode is *per thread* (torch semantics): a serving thread inside
# ``no_grad()`` must not switch off tape recording for a concurrent
# training step — with a process-global flag, the stream runtime's warm
# retrain raced live eval-mode forecasts and crashed in backward().
# Threads start in the default (enabled) state.
_GRAD_MODE = threading.local()
_DEFAULT_DTYPE = np.float64

# Active op profiler (see repro.profiling).  Kept here, not in the
# profiling package, so the hot-path hooks below stay a single global
# load + ``None`` check and tensor.py gains no new imports.
_PROFILER = None

# Active anomaly checker (see repro.tensor.anomaly).  Same pattern as
# the profiler: a callable ``(phase, name, array, parents)`` installed
# by ``detect_anomaly()``, or ``None`` when anomaly mode is off.
_ANOMALY_HOOK = None

# Active graph tracer (see repro.inspect).  A callable
# ``(name, out, parents)`` invoked for every op result, used by the
# static model checker to record the abstract graph without touching
# the op implementations.  ``None`` when tracing is off.
_TRACE_HOOK = None

# Active kernel recorder (see repro.compile).  While installed, every
# op site registers an in-place "refresh kernel" able to recompute its
# output buffer with ``out=`` numpy calls; the recorder also gets an
# ``_on_op`` ping from ``_from_op`` so ops *without* a registered
# kernel are detected (they force the compiler back to eager rather
# than silently replaying stale buffers).  ``None`` when recording is
# off — the hot path pays a single global load + ``None`` check, the
# same contract as the profiler/anomaly/trace hooks above.
_RECORDER = None


def _set_profiler(profiler):
    """Install ``profiler`` as the active op profiler; returns the previous.

    ``None`` disables profiling.  Use :func:`repro.profiling.profile`
    rather than calling this directly.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous


def _set_anomaly_hook(hook):
    """Install ``hook`` as the anomaly checker; returns the previous.

    ``None`` disables anomaly mode.  Use
    :func:`repro.tensor.detect_anomaly` rather than calling this
    directly.
    """
    global _ANOMALY_HOOK
    previous = _ANOMALY_HOOK
    _ANOMALY_HOOK = hook
    return previous


def _set_trace_hook(hook):
    """Install ``hook`` as the graph tracer; returns the previous.

    ``None`` disables tracing.  Use :func:`repro.inspect.check_model`
    rather than calling this directly.
    """
    global _TRACE_HOOK
    previous = _TRACE_HOOK
    _TRACE_HOOK = hook
    return previous


def _set_recorder(recorder):
    """Install ``recorder`` as the active kernel recorder; returns the previous.

    ``None`` disables recording.  Use :mod:`repro.compile` rather than
    calling this directly.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def set_default_dtype(dtype):
    """Set the dtype used when constructing tensors from Python data.

    ``float64`` (the default) is what the gradient-checking tests use;
    models switch to ``float32`` for speed.  Only floating dtypes are
    valid — the policy governs *compute* precision, not index arrays.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be floating point; got {resolved}")
    _DEFAULT_DTYPE = resolved.type


def get_default_dtype():
    """Return the dtype currently used for new tensors."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def default_dtype(dtype):
    """Scope the tensor-construction dtype policy to a block.

    The trainer runs its fit loop under ``default_dtype(np.float32)``
    when single precision is requested, while gradient checking pins
    ``float64`` the same way — the policy composes by nesting and always
    restores the previous dtype on exit.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    set_default_dtype(dtype)
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


def is_grad_enabled():
    """Return ``True`` when operations should record the autodiff tape.

    The flag is thread-local: disabling gradients on one thread never
    affects tape recording on any other.
    """
    return getattr(_GRAD_MODE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording on this thread.

    Inside the block every operation behaves like plain numpy: outputs
    have ``requires_grad=False`` and no backward closures are created.
    Use it for evaluation loops and data preprocessing.  The state is
    per-thread, so an eval loop cannot disable the tape under a
    concurrently-running training step.
    """
    previous = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Floating point inputs keep
        their dtype; Python scalars/lists are converted to the default
        dtype (see :func:`set_default_dtype`).
    requires_grad:
        When ``True`` the tensor accumulates gradients during
        :meth:`backward`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_freed", "_grad_stale", "name")

    def __init__(self, data, requires_grad=False, name=None):
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, (np.ndarray, np.generic)):
            # Explicit numpy data keeps its floating dtype (a float32
            # array stays float32 regardless of the policy).
            array = np.asarray(data)
            if array.dtype.kind not in "fc":
                array = array.astype(_DEFAULT_DTYPE)
        else:
            # Python scalars and (nested) sequences follow the policy
            # dtype, so `Tensor(0.5)` is float32 under a float32 policy.
            array = np.asarray(data)
            if array.dtype.kind != "c" and array.dtype != _DEFAULT_DTYPE:
                array = array.astype(_DEFAULT_DTYPE)
        self.data = array
        self.grad = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._parents = ()
        self._freed = False
        # Compiled-replay bookkeeping: when True the gradient *buffer*
        # is kept but its contents are from a previous step, so the
        # next deposit overwrites instead of accumulating (see
        # repro.compile; equivalent to ``grad is None`` without the
        # reallocation).
        self._grad_stale = False
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self):
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad}{label})"

    # ------------------------------------------------------------------
    # Graph construction helpers (used by the op modules)
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(cls, data, parents, backward, name=None):
        """Build a graph node from an op result.

        ``parents`` is the tuple of input tensors, ``backward`` the
        closure mapping the upstream gradient to per-parent gradient
        deposits.  When gradients are globally disabled or no parent
        requires them, the result is a detached leaf.
        """
        out = cls(data, name=name)
        if _ANOMALY_HOOK is not None:
            # Check *before* the result joins the tape or the profiler's
            # accounting: when the hook raises, the failed op must leave
            # no state behind — tape bytes recorded here would never be
            # freed and would poison later clean runs.
            _ANOMALY_HOOK("forward", name or "op", out.data, parents)
        on_tape = False
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
            on_tape = True
        if _PROFILER is not None:
            # A view result (reshape/transpose/basic getitem) shares its
            # parent's buffer; only owned buffers count as forward
            # allocations.
            _PROFILER._record_forward(
                name or "op", out.data.nbytes, on_tape,
                alloc_bytes=out.data.nbytes if out.data.base is None else 0)
        if _TRACE_HOOK is not None:
            _TRACE_HOOK(name or "op", out, parents)
        if _RECORDER is not None:
            _RECORDER._on_op(name or "op", out, parents)
        return out

    def _accumulate_grad(self, grad):
        """Add ``grad`` into ``self.grad``, allocating on first use.

        The buffer is always created in — and accumulation stays in —
        this tensor's own dtype: a float64 upstream gradient deposited
        into a float32 parameter is cast at the boundary rather than
        silently widening the gradient buffer.
        """
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.data.shape} (tensor {self.name or '<unnamed>'})"
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
            self._grad_stale = False
            if _PROFILER is not None:
                _PROFILER._record_grad_alloc(self.name or "tensor",
                                             self.grad.nbytes)
        elif self._grad_stale:
            # Compiled replay: the buffer survives across steps but its
            # contents belong to the previous one — the first deposit
            # overwrites.  ``copyto`` with unsafe casting is bitwise the
            # first-branch ``astype(dtype, copy=True)``.
            np.copyto(self.grad, grad, casting="unsafe")
            self._grad_stale = False
        else:
            # In-place add keeps the buffer's dtype; "unsafe" permits
            # the float64 -> float32 narrowing the buffer policy implies.
            np.add(self.grad, grad, out=self.grad, casting="unsafe")

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None, retain_graph=False):
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient with the same shape as ``self``.  May be
            omitted for scalar tensors, in which case it defaults to 1.
        retain_graph:
            By default the tape is *freed* once gradients have been
            deposited: every visited node drops its backward closure and
            parent links, releasing the intermediate buffers those
            closures capture (conv/pool window views, padded inputs,
            activation caches) without waiting for the whole graph to
            fall out of scope.  Pass ``True`` to keep the graph alive,
            e.g. to call ``backward()`` again or to extend the graph
            from intermediate nodes afterwards.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if self._freed:
            raise RuntimeError(
                "backward() through a freed graph; pass retain_graph=True "
                "to the first backward() call if you need the tape again"
            )
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors; got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self._accumulate_grad(np.broadcast_to(np.asarray(grad), self.data.shape))

        profiler = _PROFILER
        anomaly_hook = _ANOMALY_HOOK
        order = self._topological_order()
        try:
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                if profiler is not None:
                    start = perf_counter()
                    node._backward(node.grad)
                    profiler._record_backward(node.name or "op", perf_counter() - start)
                else:
                    node._backward(node.grad)
                if anomaly_hook is not None:
                    anomaly_hook("backward", node.name or "op", node.grad,
                                 node._parents)
        finally:
            # Free the tape even when a backward closure or the anomaly
            # hook raises mid-walk: a partially-backpropagated graph has
            # already deposited gradients into some nodes, so retrying
            # backward() on it would double-count.  Freeing turns the
            # retry into an explicit freed-graph error and keeps the
            # profiler's tape-byte accounting balanced.
            if not retain_graph:
                for node in order:
                    if node._backward is not None:
                        if profiler is not None:
                            profiler._record_tape_free(node.data.nbytes)
                        node._backward = None
                        node._parents = ()
                        node._freed = True
            if profiler is not None:
                # Don't let backward time leak into the next forward
                # op's interval attribution.
                profiler.mark()

    def _topological_order(self):
        """Return graph nodes reachable from ``self`` in topological order."""
        order = []
        visited = set()
        # Iterative DFS: model graphs are deep enough (recurrent nets
        # unrolled over time) that recursion would hit Python's limit.
        stack = [(self, iter(self._parents))]
        visited.add(id(self))
        while stack:
            node, parents = stack[-1]
            advanced = False
            for parent in parents:
                if id(parent) not in visited and parent.requires_grad:
                    visited.add(id(parent))
                    stack.append((parent, iter(parent._parents)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return order

    # ------------------------------------------------------------------
    # Gradient / graph management
    # ------------------------------------------------------------------
    def zero_grad(self):
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self):
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def numpy(self):
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self):
        """Return the value of a scalar tensor as a Python number."""
        return self.data.item()

    def astype(self, dtype):
        """Return a detached copy cast to ``dtype`` (keeps ``name``)."""
        return Tensor(self.data.astype(dtype), name=self.name)


def as_tensor(value, name=None, dtype=None):
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one).

    ``dtype`` is a *weak* hint used by the op layer: python scalars and
    sequences are cast to it so a constant like ``0.5`` adopts the other
    operand's dtype instead of upcasting a float32 graph to float64.
    Explicit ``numpy`` arrays keep their own dtype — writing
    ``Tensor(np.float64(...))`` remains a deliberate precision choice.
    """
    if isinstance(value, Tensor):
        return value
    out = Tensor(value, name=name)
    if (dtype is not None
            and not isinstance(value, (np.ndarray, np.generic))
            and out.data.dtype.kind == "f"
            and np.dtype(dtype).kind == "f"
            and out.data.dtype != dtype):
        out.data = out.data.astype(dtype)
    return out
