"""Elementwise and broadcasting operations with gradients.

Every function takes tensors (or values coercible to tensors), computes
the forward result with numpy, and registers a backward closure that
deposits gradients into the inputs.  Broadcasting is handled by
:func:`unbroadcast`, which sums gradients over the broadcast axes so
each input receives a gradient of its own shape.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softplus",
    "clip",
    "maximum",
    "minimum",
    "where",
]


def unbroadcast(grad, shape):
    """Reduce ``grad`` to ``shape`` by summing over broadcast axes.

    Numpy broadcasting either prepends axes or stretches size-1 axes;
    the gradient of a broadcast is the sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce_operands(a, b):
    """Wrap a binary op's operands, keeping constants in the graph dtype.

    A weakly-typed operand (python scalar, list — anything that is not
    already a tensor or an explicit numpy array) adopts the other
    operand's floating dtype, so ``loss * 0.5`` on a float32 graph stays
    float32 instead of silently upcasting through a float64 constant.
    """
    if isinstance(a, Tensor):
        return a, as_tensor(b, dtype=a.dtype)
    if isinstance(b, Tensor):
        return as_tensor(a, dtype=b.dtype), b
    a = as_tensor(a)
    return a, as_tensor(b, dtype=a.dtype)


def _binary(a, b, forward, grad_a, grad_b, name):
    """Build a broadcasting binary op.

    ``grad_a``/``grad_b`` map the upstream gradient to the raw (still
    broadcast-shaped) gradient of each input; unbroadcasting to the
    input shapes happens here so individual ops don't repeat it.
    """
    a, b = _coerce_operands(a, b)
    data = forward(a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate_grad(unbroadcast(grad_a(grad), a.shape))
        if b.requires_grad:
            b._accumulate_grad(unbroadcast(grad_b(grad), b.shape))

    return Tensor._from_op(data, (a, b), backward, name=name)


def add(a, b):
    """Elementwise ``a + b`` with broadcasting."""
    return _binary(a, b, np.add, lambda g: g, lambda g: g, "add")


def sub(a, b):
    """Elementwise ``a - b`` with broadcasting."""
    return _binary(a, b, np.subtract, lambda g: g, lambda g: -g, "sub")


def mul(a, b):
    """Elementwise ``a * b`` with broadcasting."""
    a, b = _coerce_operands(a, b)
    return _binary(a, b, np.multiply, lambda g: g * b.data, lambda g: g * a.data, "mul")


def div(a, b):
    """Elementwise ``a / b`` with broadcasting."""
    a, b = _coerce_operands(a, b)
    return _binary(
        a,
        b,
        np.divide,
        lambda g: g / b.data,
        lambda g: -g * a.data / (b.data * b.data),
        "div",
    )


def maximum(a, b):
    """Elementwise maximum; gradient flows to the larger input.

    Ties send the full gradient to ``a`` (matching ``np.maximum``'s
    choice of the first argument), keeping the op's gradient well
    defined under gradient checking.
    """
    a, b = _coerce_operands(a, b)
    mask = a.data >= b.data
    return _binary(
        a, b, np.maximum, lambda g: g * mask, lambda g: g * (~mask), "maximum"
    )


def minimum(a, b):
    """Elementwise minimum; gradient flows to the smaller input."""
    a, b = _coerce_operands(a, b)
    mask = a.data <= b.data
    return _binary(
        a, b, np.minimum, lambda g: g * mask, lambda g: g * (~mask), "minimum"
    )


def _unary(a, data, grad_fn, name):
    a = as_tensor(a)

    def backward(grad):
        a._accumulate_grad(grad_fn(grad))

    return Tensor._from_op(data, (a,), backward, name=name)


def neg(a):
    """Elementwise negation."""
    a = as_tensor(a)
    return _unary(a, -a.data, lambda g: -g, "neg")


def pow_(a, exponent):
    """Elementwise power with a constant (non-tensor) exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("pow_ supports constant exponents only; use exp/log for tensor exponents")
    data = a.data ** exponent
    return _unary(a, data, lambda g: g * exponent * a.data ** (exponent - 1), "pow")


def exp(a):
    """Elementwise exponential."""
    a = as_tensor(a)
    data = np.exp(a.data)
    return _unary(a, data, lambda g: g * data, "exp")


def log(a):
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    return _unary(a, np.log(a.data), lambda g: g / a.data, "log")


def sqrt(a):
    """Elementwise square root."""
    a = as_tensor(a)
    data = np.sqrt(a.data)
    return _unary(a, data, lambda g: g * 0.5 / data, "sqrt")


def abs_(a):
    """Elementwise absolute value (subgradient 0 at zero... sign)."""
    a = as_tensor(a)
    return _unary(a, np.abs(a.data), lambda g: g * np.sign(a.data), "abs")


def tanh(a):
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    data = np.tanh(a.data)
    return _unary(a, data, lambda g: g * (1.0 - data * data), "tanh")


def sigmoid(a):
    """Numerically stable elementwise logistic sigmoid."""
    a = as_tensor(a)
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))
    return _unary(a, data, lambda g: g * data * (1.0 - data), "sigmoid")


def relu(a):
    """Elementwise rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    return _unary(a, a.data * mask, lambda g: g * mask, "relu")


def leaky_relu(a, negative_slope=0.01):
    """Leaky ReLU with configurable negative slope."""
    a = as_tensor(a)
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return _unary(a, a.data * scale, lambda g: g * scale, "leaky_relu")


def softplus(a):
    """Numerically stable ``log(1 + exp(a))``."""
    a = as_tensor(a)
    x = a.data
    data = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
    sig = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))
    return _unary(a, data, lambda g: g * sig, "softplus")


def clip(a, low, high):
    """Clamp values to ``[low, high]``; gradient is zero outside."""
    a = as_tensor(a)
    mask = (a.data >= low) & (a.data <= high)
    return _unary(a, np.clip(a.data, low, high), lambda g: g * mask, "clip")


def where(condition, a, b):
    """Select from ``a`` where ``condition`` else from ``b``.

    ``condition`` is a plain boolean array (no gradient flows to it).
    """
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = _coerce_operands(a, b)
    data = np.where(cond, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate_grad(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate_grad(unbroadcast(grad * (~cond), b.shape))

    return Tensor._from_op(data, (a, b), backward, name="where")
