"""Elementwise and broadcasting operations with gradients.

Every function takes tensors (or values coercible to tensors), computes
the forward result with numpy, and registers a backward closure that
deposits gradients into the inputs.  Broadcasting is handled by
:func:`unbroadcast`, which sums gradients over the broadcast axes so
each input receives a gradient of its own shape.

When a :mod:`repro.compile` recorder is installed (see
``tensor._RECORDER``) each op additionally registers a *refresh kernel*
describing how to recompute its output buffer in place: either a
``ufunc`` spec (fusable into an ``out=``-dispatched chain) or a small
closure for ops with auxiliary state (masks, scales).  Backward
closures read their captured arrays — which the refresh kernels update
in place — so one recorded step can be replayed against new inputs
without rebuilding the graph.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _core
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softplus",
    "clip",
    "maximum",
    "minimum",
    "where",
]


def unbroadcast(grad, shape):
    """Reduce ``grad`` to ``shape`` by summing over broadcast axes.

    Numpy broadcasting either prepends axes or stretches size-1 axes;
    the gradient of a broadcast is the sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce_operands(a, b):
    """Wrap a binary op's operands, keeping constants in the graph dtype.

    A weakly-typed operand (python scalar, list — anything that is not
    already a tensor or an explicit numpy array) adopts the other
    operand's floating dtype, so ``loss * 0.5`` on a float32 graph stays
    float32 instead of silently upcasting through a float64 constant.
    """
    if isinstance(a, Tensor):
        return a, as_tensor(b, dtype=a.dtype)
    if isinstance(b, Tensor):
        return as_tensor(a, dtype=b.dtype), b
    a = as_tensor(a)
    return a, as_tensor(b, dtype=a.dtype)


def _binary(a, b, forward, grad_a, grad_b, name):
    """Build a broadcasting binary op.

    ``grad_a``/``grad_b`` map the upstream gradient to the raw (still
    broadcast-shaped) gradient of each input; unbroadcasting to the
    input shapes happens here so individual ops don't repeat it.
    """
    a, b = _coerce_operands(a, b)
    data = forward(a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate_grad(unbroadcast(grad_a(grad), a.shape))
        if b.requires_grad:
            b._accumulate_grad(unbroadcast(grad_b(grad), b.shape))

    return Tensor._from_op(data, (a, b), backward, name=name)


def _binary_ufunc(a, b, fn, grad_a, grad_b, name):
    """A :func:`_binary` whose forward is a plain ufunc: fusable refresh."""
    a, b = _coerce_operands(a, b)
    result = _binary(a, b, fn, grad_a, grad_b, name)
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(fn, (a.data, b.data), result.data)
    return result


def add(a, b):
    """Elementwise ``a + b`` with broadcasting."""
    return _binary_ufunc(a, b, np.add, lambda g: g, lambda g: g, "add")


def sub(a, b):
    """Elementwise ``a - b`` with broadcasting."""
    return _binary_ufunc(a, b, np.subtract, lambda g: g, lambda g: -g, "sub")


def mul(a, b):
    """Elementwise ``a * b`` with broadcasting."""
    a, b = _coerce_operands(a, b)
    return _binary_ufunc(a, b, np.multiply, lambda g: g * b.data, lambda g: g * a.data, "mul")


def div(a, b):
    """Elementwise ``a / b`` with broadcasting."""
    a, b = _coerce_operands(a, b)
    return _binary_ufunc(
        a,
        b,
        np.divide,
        lambda g: g / b.data,
        lambda g: -g * a.data / (b.data * b.data),
        "div",
    )


def maximum(a, b):
    """Elementwise maximum; gradient flows to the larger input.

    Ties send the full gradient to ``a`` (matching ``np.maximum``'s
    choice of the first argument), keeping the op's gradient well
    defined under gradient checking.
    """
    a, b = _coerce_operands(a, b)
    mask = a.data >= b.data
    result = _binary(
        a, b, np.maximum, lambda g: g * mask, lambda g: g * (~mask), "maximum"
    )
    rec = _core._RECORDER
    if rec is not None:
        ad, bd, od = a.data, b.data, result.data

        def refresh():
            np.greater_equal(ad, bd, out=mask)
            np.maximum(ad, bd, out=od)

        rec.run(refresh, reads=(ad, bd), writes=(od,))
    return result


def minimum(a, b):
    """Elementwise minimum; gradient flows to the smaller input."""
    a, b = _coerce_operands(a, b)
    mask = a.data <= b.data
    result = _binary(
        a, b, np.minimum, lambda g: g * mask, lambda g: g * (~mask), "minimum"
    )
    rec = _core._RECORDER
    if rec is not None:
        ad, bd, od = a.data, b.data, result.data

        def refresh():
            np.less_equal(ad, bd, out=mask)
            np.minimum(ad, bd, out=od)

        rec.run(refresh, reads=(ad, bd), writes=(od,))
    return result


def _unary(a, data, grad_fn, name):
    a = as_tensor(a)

    def backward(grad):
        a._accumulate_grad(grad_fn(grad))

    return Tensor._from_op(data, (a,), backward, name=name)


def _unary_ufunc(a, fn, grad_fn, name):
    """A :func:`_unary` whose forward is a plain ufunc: fusable refresh."""
    a = as_tensor(a)
    result = _unary(a, fn(a.data), grad_fn, name)
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(fn, (a.data,), result.data)
    return result


def neg(a):
    """Elementwise negation."""
    return _unary_ufunc(a, np.negative, lambda g: -g, "neg")


def pow_(a, exponent):
    """Elementwise power with a constant (non-tensor) exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("pow_ supports constant exponents only; use exp/log for tensor exponents")
    result = _unary(a, a.data ** exponent,
                    lambda g: g * exponent * a.data ** (exponent - 1), "pow")
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(np.power, (a.data, exponent), result.data)
    return result


def exp(a):
    """Elementwise exponential."""
    a = as_tensor(a)
    data = np.exp(a.data)
    return _unary_graph_output(a, np.exp, data, lambda d: lambda g: g * d, "exp")


def _unary_graph_output(a, fn, data, make_grad, name):
    """Unary ufunc op whose gradient reads its own (refreshed) output."""
    result = _unary(a, data, make_grad(data), name)
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(fn, (a.data,), result.data)
    return result


def log(a):
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    return _unary_ufunc(a, np.log, lambda g: g / a.data, "log")


def sqrt(a):
    """Elementwise square root."""
    a = as_tensor(a)
    data = np.sqrt(a.data)
    return _unary_graph_output(a, np.sqrt, data, lambda d: lambda g: g * 0.5 / d, "sqrt")


def abs_(a):
    """Elementwise absolute value (subgradient 0 at zero... sign)."""
    a = as_tensor(a)
    return _unary_ufunc(a, np.absolute, lambda g: g * np.sign(a.data), "abs")


def tanh(a):
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    data = np.tanh(a.data)
    return _unary_graph_output(a, np.tanh, data,
                               lambda d: lambda g: g * (1.0 - d * d), "tanh")


def sigmoid(a):
    """Numerically stable elementwise logistic sigmoid."""
    a = as_tensor(a)
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))
    result = _unary(a, data, lambda g: g * data * (1.0 - data), "sigmoid")
    rec = _core._RECORDER
    if rec is not None:
        od = result.data

        def refresh():
            od[...] = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)),
                               np.exp(x) / (1.0 + np.exp(x)))

        rec.run(refresh, reads=(x,), writes=(od,))
    return result


def relu(a):
    """Elementwise rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    result = _unary(a, a.data * mask, lambda g: g * mask, "relu")
    rec = _core._RECORDER
    if rec is not None:
        # Two fusable specs: refresh the mask, then the masked product.
        rec.ufunc(np.greater, (a.data, 0), mask)
        rec.ufunc(np.multiply, (a.data, mask), result.data)
    return result


def leaky_relu(a, negative_slope=0.01):
    """Leaky ReLU with configurable negative slope."""
    a = as_tensor(a)
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    result = _unary(a, a.data * scale, lambda g: g * scale, "leaky_relu")
    rec = _core._RECORDER
    if rec is not None:
        ad, od = a.data, result.data

        def refresh():
            np.greater(ad, 0, out=mask)
            scale[...] = np.where(mask, 1.0, negative_slope)
            np.multiply(ad, scale, out=od)

        rec.run(refresh, reads=(ad,), writes=(od,))
    return result


def softplus(a):
    """Numerically stable ``log(1 + exp(a))``."""
    a = as_tensor(a)
    x = a.data
    data = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
    sig = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))
    result = _unary(a, data, lambda g: g * sig, "softplus")
    rec = _core._RECORDER
    if rec is not None:
        od = result.data

        def refresh():
            od[...] = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
            sig[...] = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)),
                                np.exp(x) / (1.0 + np.exp(x)))

        rec.run(refresh, reads=(x,), writes=(od,))
    return result


def clip(a, low, high):
    """Clamp values to ``[low, high]``; gradient is zero outside."""
    a = as_tensor(a)
    mask = (a.data >= low) & (a.data <= high)
    result = _unary(a, np.clip(a.data, low, high), lambda g: g * mask, "clip")
    rec = _core._RECORDER
    if rec is not None:
        ad, od = a.data, result.data

        def refresh():
            mask[...] = (ad >= low) & (ad <= high)
            np.clip(ad, low, high, out=od)

        rec.run(refresh, reads=(ad,), writes=(od,))
    return result


def where(condition, a, b):
    """Select from ``a`` where ``condition`` else from ``b``.

    ``condition`` is a plain boolean array (no gradient flows to it).
    """
    cond_src = condition.data if isinstance(condition, Tensor) else None
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = _coerce_operands(a, b)
    data = np.where(cond, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate_grad(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate_grad(unbroadcast(grad * (~cond), b.shape))

    result = Tensor._from_op(data, (a, b), backward, name="where")
    rec = _core._RECORDER
    if rec is not None:
        ad, bd, od = a.data, b.data, result.data
        # A tensor-valued condition may itself be refreshed by the plan;
        # re-derive the bool snapshot from the live buffer each replay.
        src = cond_src if cond_src is not None and cond_src is not cond else None
        reads = (ad, bd) if src is None else (src, ad, bd)

        def refresh():
            if src is not None:
                cond[...] = src
            np.copyto(od, bd)
            np.copyto(od, ad, where=cond)

        rec.run(refresh, reads=reads, writes=(od,))
    return result
