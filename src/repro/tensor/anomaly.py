"""Anomaly detection for the autodiff engine.

``detect_anomaly()`` arms a per-op non-finite check at the engine's two
choke points (:meth:`repro.tensor.Tensor._from_op` for forwards,
:meth:`repro.tensor.Tensor.backward` for backwards, the same hooks the
op profiler uses).  The first op whose forward output or backward
gradient deposit contains a NaN/Inf raises :class:`AnomalyError`
naming the op, its input/output shapes and dtypes, and whether the
non-finite values originated at this op or were already present in an
input — so a diverging training run points at ``log``/``div``/``exp``
instead of surfacing as a NaN loss hundreds of ops later.

The checks scan every op output, so anomaly mode costs roughly one
extra pass over each array; use it to *localise* a known divergence
(e.g. re-running a failing batch), not as an always-on guard.  For the
cheap always-on guard see the trainer's divergence sentinel
(:mod:`repro.training.sentinel`).
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor import tensor as _tensor_core

__all__ = ["AnomalyError", "detect_anomaly", "is_anomaly_enabled"]


class AnomalyError(ArithmeticError):
    """A non-finite value appeared under :func:`detect_anomaly`.

    Attributes
    ----------
    op:
        Name of the op at which the non-finite value was detected.
    phase:
        ``"forward"`` or ``"backward"``.
    """

    def __init__(self, message, op, phase):
        super().__init__(message)
        self.op = op
        self.phase = phase


def _describe(array):
    """``shape=... dtype=...`` plus a NaN/Inf census for an array."""
    array = np.asarray(array)
    finite = np.isfinite(array)
    if finite.all():
        census = "all finite"
    else:
        nans = int(np.isnan(array).sum())
        infs = int(array.size - finite.sum() - nans)
        census = f"{nans} NaN, {infs} Inf of {array.size}"
    return f"shape={array.shape} dtype={array.dtype} [{census}]"


def _check(phase, name, result, parents):
    """Raise :class:`AnomalyError` when ``result`` went non-finite.

    ``result`` is the op's forward output (phase ``"forward"``) or the
    op node's own upstream gradient (phase ``"backward"``); for the
    backward phase the freshly *deposited* per-parent gradients are
    what is actually scanned.
    """
    if phase == "forward":
        if np.isfinite(result).all():
            return
        lines = [
            f"detect_anomaly: op {name!r} produced a non-finite forward "
            f"output ({_describe(result)})"
        ]
        tainted = [p for p in parents
                   if not np.isfinite(np.asarray(p.data)).all()]
        if tainted:
            lines.append(
                "note: the non-finite values entered through this op's "
                "input(s), not its arithmetic:"
            )
        else:
            lines.append("all inputs were finite — this op is the origin:")
        for index, parent in enumerate(parents):
            label = parent.name or f"input {index}"
            lines.append(f"  input {index} ({label}): {_describe(parent.data)}")
        raise AnomalyError("\n".join(lines), op=name, phase="forward")

    # Backward: the closure for `name` just deposited gradients into its
    # parents.  Its own upstream gradient (`result`) was finite when the
    # graph above ran (it was checked as a deposit then), so any fresh
    # non-finite parent gradient was produced by this op's backward.
    for index, parent in enumerate(parents):
        grad = parent.grad
        if grad is None or np.isfinite(grad).all():
            continue
        label = parent.name or f"input {index}"
        message = (
            f"detect_anomaly: backward of op {name!r} deposited a "
            f"non-finite gradient into input {index} ({label}): "
            f"{_describe(grad)}\n"
            f"  op upstream gradient: {_describe(result)}\n"
            f"  input value: {_describe(parent.data)}"
        )
        raise AnomalyError(message, op=name, phase="backward")


def is_anomaly_enabled():
    """Return ``True`` while inside a :func:`detect_anomaly` block."""
    return _tensor_core._ANOMALY_HOOK is not None


@contextlib.contextmanager
def detect_anomaly():
    """Context manager that pinpoints the op introducing a NaN/Inf.

    >>> with detect_anomaly():               # doctest: +SKIP
    ...     loss = model.training_loss(batch, rng)[0].total
    ...     loss.backward()
    AnomalyError: detect_anomaly: op 'log' produced a non-finite ...

    Nests like :func:`no_grad`: the previous mode is restored on exit.
    """
    previous = _tensor_core._set_anomaly_hook(_check)
    try:
        yield
    finally:
        _tensor_core._set_anomaly_hook(previous)
