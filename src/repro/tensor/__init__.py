"""Reverse-mode autodiff engine on numpy.

Public surface:

- :class:`Tensor` — array with gradient tracking.
- Functional ops (``add``, ``matmul``, ``conv2d``, ...).
- Operator overloads and methods on ``Tensor`` (attached here so the op
  modules stay free of circular imports).
- :func:`no_grad`, :func:`check_gradients`, seeded RNG helpers.
"""

from repro.tensor.tensor import (
    Tensor,
    as_tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)
from repro.tensor import ops as _ops
from repro.tensor import reductions as _reductions
from repro.tensor import shape as _shape
from repro.tensor import matmul as _matmul
from repro.tensor import conv as _conv
from repro.tensor.ops import (
    abs_,
    add,
    unbroadcast,
    clip,
    div,
    exp,
    leaky_relu,
    log,
    maximum,
    minimum,
    mul,
    neg,
    pow_,
    relu,
    sigmoid,
    softplus,
    sqrt,
    sub,
    tanh,
    where,
)
from repro.tensor.reductions import logsumexp, max_, mean, min_, std, sum_, var
from repro.tensor.shape import (
    broadcast_to,
    concat,
    expand_dims,
    flatten,
    flip,
    getitem,
    pad,
    repeat_interleave,
    reshape,
    split,
    squeeze,
    stack,
    swapaxes,
    tile,
    transpose,
)
from repro.tensor.matmul import dot, matmul, outer
from repro.tensor.conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from repro.tensor.random import make_rng, normal_like, reparameterize_noise, spawn
from repro.tensor.gradcheck import check_gradients, numerical_gradient
from repro.tensor.anomaly import AnomalyError, detect_anomaly, is_anomaly_enabled

# ---------------------------------------------------------------------------
# Attach operators and convenience methods to Tensor.  Doing it here (one
# explicit assignment per method) keeps tensor.py free of imports from the
# op modules while giving users the familiar `x + y`, `x.sum()` API.
# ---------------------------------------------------------------------------
Tensor.__add__ = _ops.add
Tensor.__radd__ = lambda self, other: _ops.add(other, self)
Tensor.__sub__ = _ops.sub
Tensor.__rsub__ = lambda self, other: _ops.sub(other, self)
Tensor.__mul__ = _ops.mul
Tensor.__rmul__ = lambda self, other: _ops.mul(other, self)
Tensor.__truediv__ = _ops.div
Tensor.__rtruediv__ = lambda self, other: _ops.div(other, self)
Tensor.__neg__ = _ops.neg
Tensor.__pow__ = _ops.pow_
Tensor.__matmul__ = _matmul.matmul
Tensor.__rmatmul__ = lambda self, other: _matmul.matmul(other, self)
Tensor.__getitem__ = _shape.getitem

Tensor.exp = _ops.exp
Tensor.log = _ops.log
Tensor.sqrt = _ops.sqrt
Tensor.abs = _ops.abs_
Tensor.tanh = _ops.tanh
Tensor.sigmoid = _ops.sigmoid
Tensor.relu = _ops.relu
Tensor.clip = _ops.clip

Tensor.sum = _reductions.sum_
Tensor.mean = _reductions.mean
Tensor.max = _reductions.max_
Tensor.min = _reductions.min_
Tensor.var = _reductions.var
Tensor.std = _reductions.std

Tensor.reshape = _shape.reshape
Tensor.transpose = _shape.transpose
Tensor.swapaxes = _shape.swapaxes
Tensor.flatten = _shape.flatten
Tensor.squeeze = _shape.squeeze
Tensor.expand_dims = _shape.expand_dims

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    # ops
    "add", "sub", "mul", "div", "neg", "pow_", "exp", "log", "sqrt", "abs_",
    "tanh", "sigmoid", "relu", "leaky_relu", "softplus", "clip", "maximum",
    "minimum", "where", "unbroadcast",
    # reductions
    "sum_", "mean", "max_", "min_", "var", "std", "logsumexp",
    # shape
    "reshape", "transpose", "swapaxes", "flatten", "concat", "stack", "split",
    "getitem", "pad", "broadcast_to", "squeeze", "expand_dims", "flip",
    "repeat_interleave", "tile",
    # matmul / conv
    "matmul", "dot", "outer", "conv2d", "avg_pool2d", "max_pool2d",
    "global_avg_pool2d",
    # random / gradcheck
    "make_rng", "spawn", "normal_like", "reparameterize_noise",
    "check_gradients", "numerical_gradient",
    # anomaly detection
    "AnomalyError", "detect_anomaly", "is_anomaly_enabled",
]
