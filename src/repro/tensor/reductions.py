"""Reduction operations (sum, mean, max, ...) with gradients."""

from __future__ import annotations

import numpy as np

from repro.tensor import tensor as _core
from repro.tensor.tensor import Tensor, as_tensor

__all__ = ["sum_", "mean", "max_", "min_", "var", "std", "logsumexp"]


def _normalize_axis(axis, ndim):
    """Return ``axis`` as a sorted tuple of non-negative ints (or None)."""
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(sorted(a % ndim for a in axis))


def _expand_to_input(grad, input_shape, axis, keepdims):
    """Reshape/broadcast an upstream reduction gradient back to the input."""
    if axis is None:
        return np.broadcast_to(grad, input_shape)
    if not keepdims:
        shape = list(input_shape)
        for a in axis:
            shape[a] = 1
        grad = grad.reshape(shape)
    return np.broadcast_to(grad, input_shape)


def sum_(a, axis=None, keepdims=False):
    """Sum over ``axis`` (all axes when None)."""
    a = as_tensor(a)
    axis = _normalize_axis(axis, a.ndim)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        a._accumulate_grad(_expand_to_input(grad, a.shape, axis, keepdims))

    result = Tensor._from_op(data, (a,), backward, name="sum")
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(np.sum, (a.data,), result.data, axis=axis, keepdims=keepdims)
    return result


def mean(a, axis=None, keepdims=False):
    """Mean over ``axis`` (all axes when None)."""
    a = as_tensor(a)
    axis = _normalize_axis(axis, a.ndim)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.size
    else:
        count = int(np.prod([a.shape[i] for i in axis]))

    def backward(grad):
        a._accumulate_grad(_expand_to_input(grad, a.shape, axis, keepdims) / count)

    result = Tensor._from_op(data, (a,), backward, name="mean")
    rec = _core._RECORDER
    if rec is not None:
        rec.ufunc(np.mean, (a.data,), result.data, axis=axis, keepdims=keepdims)
    return result


def _extreme(a, axis, keepdims, np_fn, name):
    """Shared implementation of max/min.

    When several elements tie for the extreme, the gradient is split
    evenly among them, which keeps the op consistent under gradient
    checking.
    """
    a = as_tensor(a)
    axis = _normalize_axis(axis, a.ndim)
    data = np_fn(a.data, axis=axis, keepdims=keepdims)
    expanded = _expand_to_input(data, a.shape, axis, keepdims)
    mask = (a.data == expanded).astype(a.data.dtype)
    # counts is always a 0-d/keepdims array (never a python scalar) so a
    # compiled plan can refresh it in place.
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
        else np.asarray(mask.sum())

    def backward(grad):
        g = _expand_to_input(grad, a.shape, axis, keepdims)
        c = _expand_to_input(np.asarray(counts), a.shape, None, True) if axis is None \
            else np.broadcast_to(counts, a.shape)
        a._accumulate_grad(g * mask / c)

    result = Tensor._from_op(data, (a,), backward, name=name)
    rec = _core._RECORDER
    if rec is not None:
        ad, od = a.data, result.data

        def refresh():
            np_fn(ad, axis=axis, keepdims=keepdims, out=od)
            # Re-expand from the live output (``expanded`` may wrap a
            # scalar snapshot when the forward reduced to 0-d).
            mask[...] = ad == _expand_to_input(od, ad.shape, axis, keepdims)
            if axis is not None:
                counts[...] = mask.sum(axis=axis, keepdims=True)
            else:
                counts[...] = mask.sum()

        rec.run(refresh, reads=(ad,), writes=(od,))
    return result


def max_(a, axis=None, keepdims=False):
    """Maximum over ``axis``."""
    return _extreme(a, axis, keepdims, np.max, "max")


def min_(a, axis=None, keepdims=False):
    """Minimum over ``axis``."""
    return _extreme(a, axis, keepdims, np.min, "min")


def var(a, axis=None, keepdims=False, ddof=0):
    """Variance, composed from differentiable primitives."""
    a = as_tensor(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = a - mu
    sq = centered * centered
    axis_t = _normalize_axis(axis, a.ndim)
    if axis_t is None:
        count = a.size
    else:
        count = int(np.prod([a.shape[i] for i in axis_t]))
    total = sum_(sq, axis=axis, keepdims=keepdims)
    return total * (1.0 / max(count - ddof, 1))


def std(a, axis=None, keepdims=False, eps=0.0):
    """Standard deviation; ``eps`` is added under the square root."""
    from repro.tensor.ops import sqrt

    return sqrt(var(a, axis=axis, keepdims=keepdims) + eps)


def logsumexp(a, axis=None, keepdims=False):
    """Numerically stable ``log(sum(exp(a)))`` along ``axis``."""
    from repro.tensor.ops import exp, log

    a = as_tensor(a)
    axnorm = _normalize_axis(axis, a.ndim)
    shift = Tensor(a.data.max(axis=axnorm, keepdims=True))
    rec = _core._RECORDER
    if rec is not None:
        # ``shift`` is a data-dependent *leaf* (no _from_op call), so a
        # compiled plan must refresh it explicitly before the ops below.
        ad, sd = a.data, shift.data

        def refresh_shift():
            np.max(ad, axis=axnorm, keepdims=True, out=sd)

        rec.leaf(refresh_shift, reads=(ad,), writes=(sd,))
    out = log(sum_(exp(a - shift), axis=axis, keepdims=True)) + shift
    if keepdims or axis is None and out.size == 1:
        if not keepdims and axis is None:
            return out.reshape(())
        return out
    axes = _normalize_axis(axis, a.ndim)
    new_shape = tuple(dim for i, dim in enumerate(out.shape) if i not in axes)
    return out.reshape(new_shape)
