"""Numerical gradient checking for autodiff ops.

Used heavily by the test suite: every primitive op is validated against
central finite differences in float64.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, default_dtype

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn, inputs, index, eps=1e-6):
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` maps a list of :class:`Tensor` inputs to a scalar
    :class:`Tensor`.  Returns an array shaped like the chosen input.
    """
    with default_dtype(np.float64):
        base = [Tensor(t.data.astype(np.float64)) for t in inputs]
        target = base[index]
        grad = np.zeros_like(target.data, dtype=np.float64)
        flat = target.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = fn(base).item()
            flat[i] = original - eps
            minus = fn(base).item()
            flat[i] = original
            grad_flat[i] = (plus - minus) / (2.0 * eps)
        return grad


def check_gradients(fn, inputs, atol=1e-5, rtol=1e-4, eps=1e-6):
    """Assert analytic gradients of ``fn`` match finite differences.

    Parameters
    ----------
    fn:
        Callable mapping a list of tensors to a scalar tensor.
    inputs:
        List of float64 tensors; each gets ``requires_grad=True``.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    with default_dtype(np.float64):
        tracked = [Tensor(t.data.astype(np.float64), requires_grad=True)
                   for t in inputs]
        out = fn(tracked)
        out.backward()
    for i, tensor in enumerate(tracked):
        analytic = tensor.grad
        if analytic is None:
            analytic = np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, tracked, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
