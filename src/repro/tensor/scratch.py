"""Persistent keyed scratch buffers for allocation-free kernels.

A :class:`ScratchPool` hands out numpy arrays keyed by
``(tag, shape, dtype)`` and keeps them alive, so a hot-path kernel that
needs the same-shaped workspace every call (the conv im2col buffer, the
packed-weight matrix, the GEMM output) reuses one allocation instead of
materialising a fresh array per call.

Two pools exist:

- the *thread-local default pool* (:func:`default_pool`), used by the
  eager conv path.  Thread-local because ``repro.serve``'s micro-batch
  consumer thread and the main training thread may run convolutions
  concurrently and the buffers are stateful scratch, not shared data;
- a *recorder-owned pool* created per compiled plan (see
  :mod:`repro.compile`).  Compiled replay kernels capture their scratch
  arrays by reference, so a plan must never share a pool with code that
  could hand the same key to somebody else mid-flight — each
  :class:`~repro.compile.recorder.Recorder` therefore owns a private
  pool, which doubles as the "single persistent im2col scratch shared
  across all conv calls" of the plan (same-shaped convolutions get the
  same buffer; every kernel rewrites it fully before use).

``requested_bytes`` accumulates the bytes of every ``get`` request
while ``nbytes`` is the pool's actual footprint; their ratio is the
buffer-reuse percentage reported by the compile profiling counters.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ScratchPool", "default_pool"]


class ScratchPool:
    """Keyed, persistent scratch arrays (never returned, never freed)."""

    def __init__(self):
        self._buffers = {}
        self.requested_bytes = 0

    def get(self, tag, shape, dtype):
        """Return the pooled array for ``(tag, shape, dtype)``.

        The contents are unspecified: callers must fully overwrite the
        buffer before reading it.
        """
        key = (tag, tuple(shape), np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)  # lint: ignore[alloc]
            self._buffers[key] = buffer
        self.requested_bytes += buffer.nbytes
        return buffer

    @property
    def nbytes(self):
        """Actual bytes held by the pool."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __len__(self):
        return len(self._buffers)

    def reuse_pct(self):
        """Percentage of requested bytes served without a new allocation."""
        if not self.requested_bytes:
            return 0.0
        return 100.0 * (1.0 - self.nbytes / self.requested_bytes)

    def clear(self):
        """Drop every buffer (callers holding references keep theirs)."""
        self._buffers.clear()
        self.requested_bytes = 0


_LOCAL = threading.local()


def default_pool():
    """This thread's shared eager-path :class:`ScratchPool`."""
    pool = getattr(_LOCAL, "pool", None)
    if pool is None:
        pool = _LOCAL.pool = ScratchPool()
    return pool
