"""Neural-network layers on the autodiff engine."""

from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.conv import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.activations import (
    Dropout,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    log_softmax,
    softmax,
)
from repro.nn.container import ModuleList, Sequential
from repro.nn.recurrent import GRU, GRUCell, LSTM, LSTMCell
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.graph import (
    AdaptiveGraphConv,
    ChebConv,
    GraphConv,
    grid_adjacency,
    normalize_adjacency,
)
from repro.nn.losses import (
    gaussian_nll,
    huber_loss,
    kl_diag_gaussians,
    kl_standard_normal,
    mae_loss,
    mse_loss,
)

__all__ = [
    "Module", "Parameter", "init",
    "Linear", "Conv2d", "AvgPool2d", "MaxPool2d",
    "BatchNorm2d", "LayerNorm",
    "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Softplus", "Dropout",
    "softmax", "log_softmax",
    "Sequential", "ModuleList",
    "GRUCell", "LSTMCell", "GRU", "LSTM",
    "MultiHeadAttention", "scaled_dot_product_attention",
    "GraphConv", "ChebConv", "AdaptiveGraphConv",
    "grid_adjacency", "normalize_adjacency",
    "mse_loss", "mae_loss", "huber_loss",
    "kl_standard_normal", "kl_diag_gaussians", "gaussian_nll",
]
