"""Loss functions and Gaussian divergences.

The KL divergences here are the work-horses of MUSE-Net's lower-bound
objective (Eqs. 27-29 of the paper): every term is a KL between diagonal
Gaussians parameterized by ``(mean, log-variance)`` tensors.
"""

from __future__ import annotations

from repro.tensor import abs_, exp, mean, sum_

__all__ = [
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "kl_standard_normal",
    "kl_diag_gaussians",
    "gaussian_nll",
]


def mse_loss(prediction, target):
    """Mean squared error (the paper's regression loss, Eq. 30)."""
    diff = prediction - target
    return mean(diff * diff)


def mae_loss(prediction, target):
    """Mean absolute error."""
    return mean(abs_(prediction - target))


def huber_loss(prediction, target, delta=1.0):
    """Huber loss: quadratic near zero, linear in the tails."""
    from repro.tensor import minimum

    error = abs_(prediction - target)
    quadratic = minimum(error, delta)
    linear = error - quadratic
    return mean(0.5 * quadratic * quadratic + delta * linear)


def kl_standard_normal(mu, logvar, reduce_mean=True):
    """KL( N(mu, diag exp(logvar)) || N(0, I) ).

    Summed over the latent axis, averaged over the batch when
    ``reduce_mean`` (the convention the training objective uses).
    """
    per_dim = 0.5 * (exp(logvar) + mu * mu - 1.0 - logvar)
    per_sample = sum_(per_dim, axis=-1)
    return mean(per_sample) if reduce_mean else per_sample


def kl_diag_gaussians(mu_p, logvar_p, mu_q, logvar_q, reduce_mean=True):
    """KL( N(mu_p, exp(logvar_p)) || N(mu_q, exp(logvar_q)) ).

    Both distributions are diagonal Gaussians over the last axis.
    """
    diff = mu_p - mu_q
    per_dim = 0.5 * (
        logvar_q - logvar_p
        + (exp(logvar_p) + diff * diff) / exp(logvar_q)
        - 1.0
    )
    per_sample = sum_(per_dim, axis=-1)
    return mean(per_sample) if reduce_mean else per_sample


def gaussian_nll(target, mu, logvar=None):
    """Negative log-likelihood of ``target`` under a diagonal Gaussian.

    With ``logvar=None`` the variance is fixed at 1, reducing to MSE up
    to constants — the standard VAE reconstruction term for continuous
    data (used for ``log q_theta(i | z^i, z^s)`` in Eq. 28).
    """
    diff = target - mu
    if logvar is None:
        return mean(sum_(0.5 * diff * diff, axis=-1))
    per_dim = 0.5 * (logvar + diff * diff / exp(logvar))
    return mean(sum_(per_dim, axis=-1))
