"""Convolutional layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import avg_pool2d, conv2d, max_pool2d

__all__ = ["Conv2d", "AvgPool2d", "MaxPool2d"]


class Conv2d(Module):
    """2-D convolution over ``(N, C, H, W)`` inputs.

    ``padding='same'`` keeps the spatial size when ``stride == 1``
    (odd kernels only), matching the Keras layers MUSE-Net uses.
    """

    def __init__(self, in_channels, out_channels, kernel_size, stride=1,
                 padding=0, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if padding == "same":
            if kh % 2 == 0 or kw % 2 == 0:
                raise ValueError("padding='same' requires odd kernel sizes")
            padding = (kh // 2, kw // 2)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.glorot_uniform((out_channels, in_channels, kh, kw), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x):
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self):
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x):
        return avg_pool2d(x, self.kernel_size, self.stride)


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x):
        return max_pool2d(x, self.kernel_size, self.stride)
