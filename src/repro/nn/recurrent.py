"""Recurrent cells and sequence wrappers (for the RNN baselines)."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, concat, sigmoid, split, stack, tanh

__all__ = ["GRUCell", "LSTMCell", "GRU", "LSTM"]


class GRUCell(Module):
    """Gated recurrent unit cell (Cho et al., 2014 formulation)."""

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates are fused: [reset | update | candidate].
        self.w_ih = Parameter(init.glorot_uniform((input_size, 3 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 3 * hidden_size), rng))
        self.b = Parameter(init.zeros((3 * hidden_size,)))

    def initial_state(self, batch_size, dtype=None):
        """Zero hidden state of shape ``(batch, hidden)``."""
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=dtype))

    def forward(self, x, h):
        gates_x = x @ self.w_ih + self.b
        gates_h = h @ self.w_hh
        rx, zx, nx = split(gates_x, 3, axis=-1)
        rh, zh, nh = split(gates_h, 3, axis=-1)
        reset = sigmoid(rx + rh)
        update = sigmoid(zx + zh)
        candidate = tanh(nx + reset * nh)
        return update * h + (1.0 - update) * candidate


class LSTMCell(Module):
    """Long short-term memory cell."""

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused gates: [input | forget | cell | output].
        self.w_ih = Parameter(init.glorot_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        self.b = Parameter(init.zeros((4 * hidden_size,)))
        # Forget-gate bias of 1 is the standard trick for gradient flow.
        self.b.data[hidden_size:2 * hidden_size] = 1.0

    def initial_state(self, batch_size, dtype=None):
        """Zero (hidden, cell) states."""
        zeros = np.zeros((batch_size, self.hidden_size), dtype=dtype)
        return Tensor(zeros.copy()), Tensor(zeros.copy())

    def forward(self, x, state):
        h, c = state
        gates = x @ self.w_ih + h @ self.w_hh + self.b
        i, f, g, o = split(gates, 4, axis=-1)
        i = sigmoid(i)
        f = sigmoid(f)
        g = tanh(g)
        o = sigmoid(o)
        c_next = f * c + i * g
        h_next = o * tanh(c_next)
        return h_next, c_next


class GRU(Module):
    """Run a :class:`GRUCell` over a ``(N, T, F)`` sequence.

    Returns ``(outputs, last_hidden)`` where outputs is ``(N, T, H)``.
    """

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x, h=None):
        batch, steps, _features = x.shape
        if h is None:
            h = self.cell.initial_state(batch, dtype=x.dtype)
        outputs = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return stack(outputs, axis=1), h


class LSTM(Module):
    """Run an :class:`LSTMCell` over a ``(N, T, F)`` sequence."""

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, x, state=None):
        batch, steps, _features = x.shape
        if state is None:
            state = self.cell.initial_state(batch, dtype=x.dtype)
        h, c = state
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
