"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Include the additive bias term (default ``True``).
    rng:
        ``numpy.random.Generator`` for weight init; a fixed default
        keeps ad-hoc usage deterministic.
    """

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.glorot_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
