"""Module base class: parameter registration, modes, state dicts."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.tensor import Tensor

__all__ = ["Parameter", "Module"]

# Active module-call observer (see repro.inspect).  A callable
# ``(module, forward, args, kwargs) -> result`` that wraps every
# Module.__call__, used by the static checker to attribute graph ops to
# the dotted module path that produced them.  ``None`` when off; the
# common path costs a single global load.
_FORWARD_HOOK = None


def _set_forward_hook(hook):
    """Install ``hook`` as the module-call observer; returns the previous.

    ``None`` disables observation.  Use :func:`repro.inspect.check_model`
    rather than calling this directly.
    """
    global _FORWARD_HOOK
    previous = _FORWARD_HOOK
    _FORWARD_HOOK = hook
    return previous


class Parameter(Tensor):
    """A tensor that is a trainable model weight.

    Identical to :class:`Tensor` except that ``requires_grad`` defaults
    to ``True`` and :meth:`Module.parameters` collects it automatically.
    """

    def __init__(self, data, name=None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Assigning a :class:`Parameter` or another :class:`Module` as an
    attribute registers it, so :meth:`parameters`, :meth:`state_dict`
    and train/eval mode propagation work without manual bookkeeping —
    the same contract as ``torch.nn.Module``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        if _FORWARD_HOOK is not None:
            return _FORWARD_HOOK(self, self.forward, args, kwargs)
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        """Yield ``(dotted_name, Parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self):
        """Return the list of all parameters (deduplicated, in order)."""
        seen = set()
        result = []
        for _name, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def num_parameters(self):
        """Total number of scalar weights in the module."""
        return sum(p.size for p in self.parameters())

    def modules(self):
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix=""):
        """Yield ``(dotted_name, Module)`` pairs, depth first.

        The root module itself is yielded with its ``prefix`` (empty
        string by default), matching the torch contract.
        """
        yield (prefix, self)
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(prefix=child_prefix)

    def children(self):
        """Yield direct child modules."""
        yield from self._modules.values()

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode=True):
        """Set training mode recursively (affects dropout, batch norm)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self):
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return ``{dotted_name: ndarray}`` of all parameter values."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        """Load parameter values produced by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on
        shape mismatches — silent partial loads hide bugs.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"parameter {name!r}: expected shape {param.shape}, got {value.shape}"
                )
            param.data[...] = value

    def save(self, path):
        """Save the state dict as a compressed ``.npz`` file."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path):
        """Load weights previously written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})
