"""Module containers."""

from __future__ import annotations

from collections import OrderedDict

from repro.nn.module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers):
        super().__init__()
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
        self._layers = list(layers)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, index):
        return self._layers[index]

    def __iter__(self):
        return iter(self._layers)


class ModuleList(Module):
    """List of modules registered for parameter traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module):
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)
        return self

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __iter__(self):
        return iter(self._items)
