"""Attention primitives (for the GMAN / ST-GSP baselines)."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.activations import softmax
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor, concat, matmul, split, swapaxes

__all__ = ["scaled_dot_product_attention", "MultiHeadAttention"]


def scaled_dot_product_attention(query, key, value, mask=None):
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    Shapes are ``(..., T_q, d)``, ``(..., T_k, d)``, ``(..., T_k, d_v)``.
    ``mask`` (optional) is a boolean array broadcastable to the score
    shape; ``False`` positions are excluded.
    """
    d = query.shape[-1]
    # math.sqrt keeps the scale a Python float: np.sqrt would make it a
    # float64 scalar and silently upcast float32 scores (dtype-upcast
    # finding from `repro check-model`).
    scores = matmul(query, swapaxes(key, -1, -2)) * (1.0 / math.sqrt(d))
    if mask is not None:
        blocked = (~np.asarray(mask)).astype(scores.dtype) * -1e9
        scores = scores + Tensor(np.broadcast_to(blocked, scores.shape).copy())
    weights = softmax(scores, axis=-1)
    return matmul(weights, value), weights


class MultiHeadAttention(Module):
    """Multi-head attention over ``(N, T, D)`` sequences."""

    def __init__(self, model_dim, num_heads, rng=None):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.q_proj = Linear(model_dim, model_dim, rng=rng)
        self.k_proj = Linear(model_dim, model_dim, rng=rng)
        self.v_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x):
        batch, steps, _dim = x.shape
        x = x.reshape((batch, steps, self.num_heads, self.head_dim))
        return swapaxes(x, 1, 2)  # (N, heads, T, head_dim)

    def _merge_heads(self, x):
        batch, _heads, steps, _dim = x.shape
        x = swapaxes(x, 1, 2)
        return x.reshape((batch, steps, self.model_dim))

    def forward(self, query, key=None, value=None, mask=None):
        key = key if key is not None else query
        value = value if value is not None else key
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        attended, _weights = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.out_proj(self._merge_heads(attended))
