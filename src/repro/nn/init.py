"""Weight initialization schemes.

Every function takes an explicit ``numpy.random.Generator`` so weight
draws are reproducible and independent of other random consumers.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import get_default_dtype

__all__ = [
    "zeros",
    "ones",
    "constant",
    "uniform",
    "normal",
    "glorot_uniform",
    "glorot_normal",
    "he_normal",
    "orthogonal",
]


def zeros(shape):
    """All-zero array (bias default)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape):
    """All-one array (scale parameters in normalization layers)."""
    return np.ones(shape, dtype=get_default_dtype())


def constant(shape, value):
    """Array filled with ``value``."""
    return np.full(shape, value, dtype=get_default_dtype())


def uniform(shape, rng, low=-0.05, high=0.05):
    """Uniform draw in ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(get_default_dtype())


def normal(shape, rng, std=0.05):
    """Zero-mean normal draw with standard deviation ``std``."""
    return (rng.standard_normal(shape) * std).astype(get_default_dtype())


def _fans(shape):
    """Compute (fan_in, fan_out) for dense and conv kernels."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def glorot_uniform(shape, rng):
    """Glorot/Xavier uniform — Keras's Dense/Conv default, which the
    paper's Keras implementation would have used."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, rng, low=-limit, high=limit)


def glorot_normal(shape, rng):
    """Glorot/Xavier normal."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return normal(shape, rng, std=std)


def he_normal(shape, rng):
    """He normal, suited to ReLU networks."""
    fan_in, _fan_out = _fans(shape)
    return normal(shape, rng, std=np.sqrt(2.0 / fan_in))


def orthogonal(shape, rng, gain=1.0):
    """Orthogonal init (used for recurrent kernels)."""
    if len(shape) < 2:
        raise ValueError("orthogonal init needs at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape).astype(get_default_dtype())
