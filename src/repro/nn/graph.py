"""Graph convolution layers (for the GCN baselines).

Grid datasets induce a natural lattice graph; :func:`grid_adjacency`
builds it with networkx and :func:`normalize_adjacency` produces the
symmetric-normalized operator of Kipf & Welling.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, get_default_dtype, matmul

__all__ = [
    "grid_adjacency",
    "normalize_adjacency",
    "GraphConv",
    "ChebConv",
    "AdaptiveGraphConv",
]


def grid_adjacency(height, width, diagonal=False):
    """Dense adjacency of an ``height x width`` lattice.

    Nodes are regions in row-major order (matching flattened grid
    tensors).  ``diagonal=True`` adds 8-neighbourhood edges.
    """
    graph = nx.grid_2d_graph(height, width)
    if diagonal:
        for h in range(height - 1):
            for w in range(width - 1):
                graph.add_edge((h, w), (h + 1, w + 1))
                graph.add_edge((h + 1, w), (h, w + 1))
    nodes = [(h, w) for h in range(height) for w in range(width)]
    return nx.to_numpy_array(graph, nodelist=nodes)


def normalize_adjacency(adjacency, add_self_loops=True):
    """Symmetric normalization D^-1/2 (A + I) D^-1/2 (policy dtype)."""
    adjacency = np.asarray(adjacency, dtype=get_default_dtype())
    if add_self_loops:
        adjacency = adjacency + np.eye(adjacency.shape[0],
                                       dtype=adjacency.dtype)
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.where(degree > 0, degree ** -0.5, 0.0)
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class GraphConv(Module):
    """Kipf-Welling graph convolution: ``A_hat X W + b``.

    ``adjacency`` is a fixed (pre-normalized) dense matrix; inputs are
    ``(N, M, F)`` node-feature batches with ``M`` graph nodes.
    """

    def __init__(self, in_features, out_features, adjacency, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.adjacency = Tensor(np.asarray(adjacency, dtype=get_default_dtype()))
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x):
        mixed = matmul(self.adjacency, x)  # broadcasts over the batch axis
        return matmul(mixed, self.weight) + self.bias


class ChebConv(Module):
    """Chebyshev-polynomial graph convolution (ASTGCN's operator).

    Uses the scaled Laplacian ``L~ = 2 L / lambda_max - I`` and the
    recurrence ``T_k = 2 L~ T_{k-1} - T_{k-2}``.
    """

    def __init__(self, in_features, out_features, adjacency, order=3, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        # The spectral pieces (eigvalsh, polynomial recurrence) stay in
        # float64 for accuracy; only the cached operator tensors follow
        # the precision policy.
        adjacency = np.asarray(adjacency, dtype=np.float64)
        degree = np.diag(adjacency.sum(axis=1))
        laplacian = degree - adjacency
        eigs = np.linalg.eigvalsh(laplacian)
        lam_max = float(eigs[-1]) if eigs[-1] > 0 else 2.0
        scaled = (2.0 * laplacian / lam_max
                  - np.eye(adjacency.shape[0], dtype=np.float64))
        self.order = order
        self._cheb = [np.eye(adjacency.shape[0], dtype=np.float64), scaled]
        for _ in range(2, order):
            self._cheb.append(2.0 * scaled @ self._cheb[-1] - self._cheb[-2])
        self._cheb = [Tensor(t.astype(get_default_dtype(), copy=False))
                      for t in self._cheb[:order]]
        self.weights = Parameter(
            init.glorot_uniform((order, in_features, out_features), rng)
        )
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x):
        out = None
        for k in range(self.order):
            term = matmul(matmul(self._cheb[k], x), self.weights[k])
            out = term if out is None else out + term
        return out + self.bias


class AdaptiveGraphConv(Module):
    """Graph conv with a learned adjacency (DMSTGCN-style dynamics).

    The adjacency is ``softmax(relu(E1 E2^T))`` over learned node
    embeddings, so spatial structure is data-driven rather than fixed.
    """

    def __init__(self, in_features, out_features, num_nodes, embed_dim=8, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.source_embed = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.1))
        self.target_embed = Parameter(init.normal((embed_dim, num_nodes), rng, std=0.1))
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))

    def adjacency(self):
        """The current learned adjacency, rows normalized by softmax."""
        from repro.nn.activations import softmax
        from repro.tensor.ops import relu

        return softmax(relu(matmul(self.source_embed, self.target_embed)), axis=-1)

    def forward(self, x):
        mixed = matmul(self.adjacency(), x)
        return matmul(mixed, self.weight) + self.bias
