"""Activation and regularization modules, plus functional helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import ops as _ops
from repro.tensor.reductions import logsumexp, max_, sum_

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Dropout",
    "softmax",
    "log_softmax",
]


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    shifted = x - max_(x, axis=axis, keepdims=True).detach()
    exp = _ops.exp(shifted)
    return exp / sum_(exp, axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    return x - logsumexp(x, axis=axis, keepdims=True)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        return _ops.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with a fixed negative slope."""

    def __init__(self, negative_slope=0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return _ops.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x):
        return _ops.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x):
        return _ops.sigmoid(x)


class Softplus(Module):
    """Softplus (smooth ReLU); used for positive std-dev heads."""

    def forward(self, x):
        return _ops.softplus(x)


class Dropout(Module):
    """Inverted dropout.

    Active only in training mode; evaluation is the identity.  The mask
    draws come from the layer's own generator, seeded at construction.
    """

    def __init__(self, p=0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1); got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)
