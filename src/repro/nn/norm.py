"""Normalization layers."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.reductions import mean, var
from repro.tensor.ops import sqrt

__all__ = ["BatchNorm2d", "LayerNorm"]


class BatchNorm2d(Module):
    """Batch normalization over ``(N, C, H, W)`` inputs.

    Running statistics are tracked with exponential moving averages and
    used in evaluation mode.
    """

    def __init__(self, num_features, eps=1e-5, momentum=0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.running_mean = init.zeros((num_features,))
        self.running_var = init.ones((num_features,))

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W); got shape {x.shape}")
        if self.training:
            mu = mean(x, axis=(0, 2, 3), keepdims=True)
            sigma2 = var(x, axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mu.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * sigma2.data.reshape(-1)
        else:
            # Buffers may predate a dtype cast (e.g. a float64 checkpoint
            # restored into a float32 run); follow the input's dtype so
            # eval stays in one precision.
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1)
                        .astype(x.dtype, copy=False))
            sigma2 = Tensor(self.running_var.reshape(1, -1, 1, 1)
                            .astype(x.dtype, copy=False))
        normalized = (x - mu) / sqrt(sigma2 + self.eps)
        scale = self.weight.reshape((1, -1, 1, 1))
        shift = self.bias.reshape((1, -1, 1, 1))
        return normalized * scale + shift


class LayerNorm(Module):
    """Layer normalization over the trailing ``normalized_shape`` axes."""

    def __init__(self, normalized_shape, eps=1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = Parameter(init.ones(self.normalized_shape), name="weight")
        self.bias = Parameter(init.zeros(self.normalized_shape), name="bias")

    def forward(self, x):
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mu = mean(x, axis=axes, keepdims=True)
        sigma2 = var(x, axis=axes, keepdims=True)
        normalized = (x - mu) / sqrt(sigma2 + self.eps)
        return normalized * self.weight + self.bias
