"""Value-range abstract domain for the numeric-hazard checker.

Every traced op gets an :class:`Interval` over-approximating the set of
values its output can take, derived from its parents' intervals by
per-op transfer rules.  The domain tracks *open* bounds so that
``exp(x)`` is known to be strictly positive — that strictness is what
lets ``log(softmax(x))`` or ``x / (norm + 1e-8)`` be proven safe while
``log(x)`` on a raw input is flagged.

The rules are deliberately conservative: an op with no rule widens to
``(-inf, inf)``, so the checker can only miss hazards through genuinely
unknown ops, never invent safety.
"""

from __future__ import annotations

import math

__all__ = ["Interval", "TOP", "propagate"]

_INF = math.inf


class Interval:
    """A closed-or-open real interval ``[lo, hi]`` / ``(lo, hi)``.

    ``lo_open=True`` means the lower bound is *excluded*: the value is
    strictly greater than ``lo``.  Infinite bounds are always open.
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open")

    def __init__(self, lo, hi, lo_open=False, hi_open=False):
        self.lo = float(lo)
        self.hi = float(hi)
        self.lo_open = bool(lo_open) or math.isinf(self.lo)
        self.hi_open = bool(hi_open) or math.isinf(self.hi)

    def __repr__(self):
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right}"

    # -- predicates the hazard rules ask about -------------------------
    @property
    def is_positive(self):
        """True when every possible value is > 0."""
        return self.lo > 0 or (self.lo == 0 and self.lo_open)

    @property
    def is_negative(self):
        """True when every possible value is < 0."""
        return self.hi < 0 or (self.hi == 0 and self.hi_open)

    @property
    def is_nonnegative(self):
        """True when every possible value is >= 0."""
        return self.lo >= 0

    @property
    def contains_zero(self):
        """True when 0 is a possible value."""
        if self.lo > 0 or self.hi < 0:
            return False
        if self.lo == 0 and self.lo_open:
            return False
        if self.hi == 0 and self.hi_open:
            return False
        return True

    @property
    def can_be_negative(self):
        """True when some possible value is < 0."""
        return self.lo < 0

    def hull(self, other):
        """Smallest interval containing both operands."""
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)


TOP = Interval(-_INF, _INF)
"""The unknown range: any real value."""


def _mul_bound(a, b):
    # Interval endpoints come from finite data or limits; adopt the
    # 0 * inf = 0 convention so a zero bound never poisons the product.
    if a == 0 or b == 0:
        return 0.0
    return a * b


def _add(vals):
    a, b = vals
    return Interval(a.lo + b.lo, a.hi + b.hi,
                    a.lo_open or b.lo_open, a.hi_open or b.hi_open)


def _neg(vals):
    (a,) = vals
    return Interval(-a.hi, -a.lo, a.hi_open, a.lo_open)


def _sub(vals):
    a, b = vals
    return _add((a, _neg((b,))))


def _mul(vals, same_parent=False):
    a, b = vals
    if same_parent:
        # x * x is a square: never negative, even when x's sign is
        # unknown.  This is how `(z * z).sum() ** 0.5` norms are proven
        # safe without a dedicated square op.
        hi = max(_mul_bound(a.lo, a.lo), _mul_bound(a.hi, a.hi))
        return Interval(0.0, hi)
    candidates = [(_mul_bound(a.lo, b.lo), a.lo_open or b.lo_open),
                  (_mul_bound(a.lo, b.hi), a.lo_open or b.hi_open),
                  (_mul_bound(a.hi, b.lo), a.hi_open or b.lo_open),
                  (_mul_bound(a.hi, b.hi), a.hi_open or b.hi_open)]
    lo, lo_open = min(candidates, key=lambda c: c[0])
    hi, hi_open = max(candidates, key=lambda c: c[0])
    return Interval(lo, hi, lo_open, hi_open)


def _reciprocal(a):
    if not (a.is_positive or a.is_negative):
        return TOP
    sign = 1.0 if a.is_positive else -1.0

    def inv(x):
        if x == 0.0:
            return sign * _INF
        if math.isinf(x):
            return 0.0
        return 1.0 / x

    lo, hi = inv(a.hi), inv(a.lo)
    # 1/x never attains 0 (finite x) nor inf (nonzero x): bounds that
    # came from an infinite or zero endpoint are open.
    lo_open = a.hi_open or math.isinf(a.hi) or a.hi == 0.0
    hi_open = a.lo_open or math.isinf(a.lo) or a.lo == 0.0
    return Interval(lo, hi, lo_open, hi_open)


def _div(vals):
    a, b = vals
    return _mul((a, _reciprocal(b)))


def _exp(vals):
    (a,) = vals
    lo = math.exp(a.lo) if a.lo < 700 else _INF
    hi = math.exp(a.hi) if a.hi < 700 else _INF
    # exp never attains 0, even at lo = -inf.
    return Interval(lo, hi, lo_open=(lo == 0.0) or a.lo_open, hi_open=a.hi_open)


def _log(vals):
    (a,) = vals
    lo = math.log(a.lo) if a.lo > 0 else -_INF
    hi = math.log(a.hi) if a.hi > 0 else -_INF
    return Interval(lo, hi, a.lo_open, a.hi_open)


def _sqrt(vals):
    (a,) = vals
    lo = math.sqrt(max(a.lo, 0.0))
    hi = math.sqrt(a.hi) if a.hi > 0 else 0.0
    return Interval(lo, hi, a.lo_open and a.lo > 0, a.hi_open)


def _abs(vals):
    (a,) = vals
    if a.is_nonnegative:
        return a
    if a.hi <= 0:
        return _neg(vals)
    return Interval(0.0, max(-a.lo, a.hi))


def _tanh(vals):
    (a,) = vals
    return Interval(math.tanh(a.lo), math.tanh(a.hi), a.lo_open, a.hi_open)


def _sigmoid(vals):
    (a,) = vals
    def sig(x):
        if x > 700:
            return 1.0
        if x < -700:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))
    lo, hi = sig(a.lo), sig(a.hi)
    return Interval(lo, hi, lo_open=(lo == 0.0) or a.lo_open,
                    hi_open=(hi == 1.0) or a.hi_open)


def _relu(vals):
    (a,) = vals
    return Interval(max(a.lo, 0.0), max(a.hi, 0.0),
                    a.lo_open and a.lo > 0, a.hi_open)


def _softplus(vals):
    (a,) = vals
    def sp(x):
        if x > 700:
            return x
        return math.log1p(math.exp(min(x, 700)))
    # softplus is strictly positive everywhere.
    lo = sp(a.lo) if not math.isinf(a.lo) else 0.0
    return Interval(lo, sp(a.hi) if not math.isinf(a.hi) else _INF,
                    lo_open=(lo == 0.0) or a.lo_open, hi_open=a.hi_open)


def _maximum(vals):
    a, b = vals
    lo = max(a.lo, b.lo)
    lo_open = (a.lo_open if a.lo > b.lo else b.lo_open if b.lo > a.lo
               else a.lo_open and b.lo_open)
    return Interval(lo, max(a.hi, b.hi), lo_open,
                    a.hi_open if a.hi >= b.hi else b.hi_open)


def _minimum(vals):
    return _neg((_maximum([_neg((v,)) for v in vals]),))


def _pow(vals):
    (a,) = vals
    if a.is_nonnegative:
        return Interval(0.0, _INF, lo_open=a.is_positive)
    return TOP


def _sum(vals):
    (a,) = vals
    # A sum of strictly positive terms is strictly positive — that fact
    # carries logsumexp / softmax denominators to safety.
    if a.is_nonnegative:
        return Interval(0.0, _INF, lo_open=a.is_positive)
    if a.hi <= 0:
        return Interval(-_INF, 0.0, hi_open=a.is_negative)
    return TOP


def _within(vals):
    # Reductions/reshapes whose output values are drawn from (or stay
    # within the hull of) the input values.
    if len(vals) == 1:
        return vals[0]
    out = vals[0]
    for v in vals[1:]:
        out = out.hull(v)
    return out


def _pad(vals):
    # Padding injects the fill value; the common fill is 0.
    return _within(vals).hull(Interval(0.0, 0.0))


def _bilinear(vals):
    # matmul/conv sum products: nonneg x nonneg stays nonneg, otherwise
    # unknown.
    if all(v.is_nonnegative for v in vals):
        return Interval(0.0, _INF)
    return TOP


_RULES = {
    "add": _add,
    "sub": _sub,
    "div": _div,
    "neg": _neg,
    "exp": _exp,
    "log": _log,
    "sqrt": _sqrt,
    "abs": _abs,
    "tanh": _tanh,
    "sigmoid": _sigmoid,
    "relu": _relu,
    "leaky_relu": _within,   # |leaky_relu(x)| <= |x| with the same sign
    "softplus": _softplus,
    "maximum": _maximum,
    "minimum": _minimum,
    "pow": _pow,
    "sum": _sum,
    "mean": _within,
    "max": _within,
    "min": _within,
    "where": _within,
    "reshape": _within,
    "transpose": _within,
    "swapaxes": _within,
    "flatten": _within,
    "concat": _within,
    "stack": _within,
    "split": _within,
    "getitem": _within,
    "pad": _pad,
    "broadcast_to": _within,
    "squeeze": _within,
    "expand_dims": _within,
    "flip": _within,
    "repeat_interleave": _within,
    "tile": _within,
    "avg_pool2d": _within,
    "max_pool2d": _within,
    "global_avg_pool2d": _within,
    "matmul": _bilinear,
    "conv2d": _bilinear,
    "dot": _bilinear,
    "outer": _bilinear,
}


def propagate(op, parent_intervals, same_parent=False):
    """Return the output interval of ``op`` given its parents' intervals.

    ``same_parent=True`` marks a binary op whose two operands are the
    *same* tensor (``x * x``), enabling the square refinement.  Unknown
    ops return :data:`TOP`.
    """
    if op == "mul":
        return _mul(parent_intervals, same_parent=same_parent)
    rule = _RULES.get(op)
    if rule is None:
        return TOP
    try:
        return rule(parent_intervals)
    except (ValueError, OverflowError, IndexError):
        return TOP
