"""Abstract tensors: shape + dtype + requires-grad, O(1) storage.

The checker feeds models :class:`AbstractTensor` inputs instead of real
batches.  An abstract tensor is backed by a zero-stride broadcast view
of a single scalar, so a ``(1, 4, 2, 10, 20)`` trend window costs eight
bytes of storage regardless of geometry.  Tracing then *executes* the
real op layer on these views at batch size 1 — the abstract
interpretation reuses the production kernels for shape/dtype/graph
semantics (no risk of drifting from the real implementation) while the
value lattice lives in :mod:`repro.inspect.intervals`, not in the data.
"""

from __future__ import annotations

import numpy as np

from repro.data.windows import SampleBatch
from repro.tensor import Tensor

__all__ = ["AbstractTensor", "abstract_batch", "buffer_address"]


def buffer_address(array):
    """Return the memory address of an ndarray's backing buffer.

    Views (slices, broadcasts, reshapes that alias) share the address of
    their base buffer; copies do not.  The tracer uses this to recognise
    leaf tensors the model built from abstract batch arrays: any tensor
    aliasing an abstract input keeps the *unbounded* value range, while
    genuine constants get ranges from their observed data.
    """
    return np.asarray(array).__array_interface__["data"][0]


class AbstractTensor(Tensor):
    """A tensor described by shape/dtype whose data carries no signal.

    The backing array is a read-only broadcast view of one scalar
    (``fill``), chosen away from special points (0, 1) so accidental
    value-dependent branches in a model still take their generic path.
    The checker treats the *value range* of an abstract input as
    unbounded; the fill exists only so numpy kernels can run.
    """

    def __init__(self, shape, dtype=np.float64, fill=0.5, requires_grad=False,
                 name=None):
        scalar = np.asarray(fill, dtype=dtype)
        view = np.broadcast_to(scalar, tuple(shape))
        super().__init__(view, requires_grad=requires_grad, name=name)


def abstract_batch(config, dtype=np.float64, batch_size=1):
    """Build a :class:`SampleBatch` of abstract windows for ``config``.

    ``config`` is any object with the shared geometry fields
    (``len_closeness``/``len_period``/``len_trend``, ``height``,
    ``width``, ``flow_channels``) — both ``MuseConfig`` and
    ``BaselineConfig`` qualify.  ``batch_size=1`` keeps tracing cost
    independent of the real training batch.
    """
    n = int(batch_size)
    spatial = (int(config.flow_channels), int(config.height), int(config.width))

    def window(length, name):
        return AbstractTensor((n, int(length)) + spatial, dtype=dtype,
                              name=name).data

    return SampleBatch(
        closeness=window(config.len_closeness, "closeness"),
        period=window(config.len_period, "period"),
        trend=window(config.len_trend, "trend"),
        target=AbstractTensor((n,) + spatial, dtype=dtype, name="target").data,
        indices=np.arange(n),
    )
