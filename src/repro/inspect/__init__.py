"""Static analysis: model graph checker + codebase linter.

Two layers, surfaced as ``repro check-model`` and ``repro lint``:

* :func:`check_model` / :func:`check_method` trace a model's
  ``training_loss`` on abstract (shape-only) inputs through the real op
  layer and prove shape, dtype-policy, gradient-reachability and
  numeric-hazard properties before any real batch is spent;
* :func:`lint_paths` runs repo-specific AST rules (dtype policy,
  gradient-check coverage, optimizer ``out=`` contract, mutable
  defaults) over the source tree.

A third layer, ``repro check-concurrency``, covers the threaded/forked
serving and training stack: :func:`check_concurrency` is a
whole-program lock-discipline pass (lock-order cycles, guarded-field
violations, fork-while-locked) and :mod:`repro.inspect.sanitizer` is
its runtime counterpart — instrumented lock/thread factories that
detect dynamic lock-order inversions, fork/join hazards, and long
holds on real executions (``REPRO_TSAN=1``).
"""

from repro.inspect import sanitizer
from repro.inspect.abstract import AbstractTensor, abstract_batch
from repro.inspect.concurrency import (
    CONCURRENCY_RULES,
    ConcurrencyReport,
    check_concurrency,
)
from repro.inspect.checker import (
    Finding,
    ModelReport,
    check_method,
    check_model,
)
from repro.inspect.gradcov import gradcheck_cases, registered_ops
from repro.inspect.intervals import Interval
from repro.inspect.lint import (
    LintConfig,
    LintFinding,
    LintReport,
    lint_paths,
    load_config,
)
from repro.inspect.liveness import compute_liveness, plan_arena
from repro.inspect.trace import GraphTracer, Trace, TraceEvent

__all__ = [
    "AbstractTensor", "abstract_batch", "Finding", "ModelReport",
    "check_method", "check_model", "gradcheck_cases", "registered_ops",
    "Interval", "LintConfig", "LintFinding", "LintReport", "lint_paths",
    "load_config", "GraphTracer", "Trace", "TraceEvent",
    "compute_liveness", "plan_arena", "CONCURRENCY_RULES",
    "ConcurrencyReport", "check_concurrency", "sanitizer",
]
