"""Static model checker: abstract interpretation over a traced graph.

:func:`check_model` traces one ``training_loss`` call on abstract
(zero-stride, batch-size-1) inputs and analyses the recorded graph for:

* **shape errors** — the trace raised; the finding names the dotted
  module path whose forward saw the exception first;
* **dtype upcasts** — ops whose parents mix float32 and float64 (the
  promotion sites PR 2's policy exists to prevent);
* **dead parameters** — parameters not reachable from the loss along
  tape edges (detached or disconnected subgraphs train to nothing);
* **numeric hazards** — ``log``/``sqrt``/``div`` whose input interval
  admits invalid values, and softmax built without max-subtraction
  (see :mod:`repro.inspect.intervals` for the value domain);
* **cost estimates** — per-component parameter/FLOP/tape-byte totals,
  cross-checked against ``repro.analysis.complexity``.

Everything runs on the *real* op layer (a trace hook, not a parallel
implementation), so the checker cannot drift from execution semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.complexity import count_parameters
from repro.tensor import default_dtype

from .abstract import abstract_batch
from .intervals import TOP, Interval, propagate
from .trace import GraphTracer

__all__ = ["Finding", "ModuleCost", "ModelReport", "check_model",
           "check_method"]

#: FLOPs are reported per traced sample (batch size 1).
_REDUCTION_OPS = {"sum", "mean", "max", "min", "logsumexp"}


@dataclass
class Finding:
    """One defect the checker can prove from the traced graph."""

    rule: str          # shape-error | dtype-upcast | dead-parameter | numeric-hazard
    message: str
    module: str = ""   # dotted module path, "" when not attributable
    op: str = ""       # op name for graph-level findings

    def to_dict(self):
        return {"rule": self.rule, "message": self.message,
                "module": self.module, "op": self.op}

    def __str__(self):
        where = f" [{self.module}]" if self.module else ""
        return f"{self.rule}{where}: {self.message}"


@dataclass
class ModuleCost:
    """Aggregated per-component cost estimates."""

    module: str
    params: int = 0
    flops: int = 0
    tape_bytes: int = 0

    def to_dict(self):
        return {"module": self.module, "params": self.params,
                "flops": self.flops, "tape_bytes": self.tape_bytes}


@dataclass
class ModelReport:
    """Outcome of one :func:`check_model` run."""

    model: str
    findings: list = field(default_factory=list)
    costs: list = field(default_factory=list)
    total_params: int = 0
    total_flops: int = 0
    total_tape_bytes: int = 0
    num_ops: int = 0

    @property
    def ok(self):
        return not self.findings

    def to_dict(self):
        return {
            "model": self.model,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "costs": [c.to_dict() for c in self.costs],
            "totals": {"params": self.total_params,
                       "flops_per_sample": self.total_flops,
                       "tape_bytes_per_sample": self.total_tape_bytes,
                       "ops": self.num_ops},
        }

    def format_text(self):
        lines = [f"check-model: {self.model}"]
        lines.append(
            f"  graph: {self.num_ops} ops, {self.total_params:,} params, "
            f"{self.total_flops / 1e6:.1f} MFLOP/sample, "
            f"{self.total_tape_bytes / 1024:.0f} KiB tape/sample")
        for cost in self.costs:
            lines.append(
                f"    {cost.module:<20s} {cost.params:>12,}  "
                f"{cost.flops / 1e6:>10.1f} MFLOP  "
                f"{cost.tape_bytes / 1024:>8.0f} KiB")
        if self.findings:
            lines.append(f"  findings ({len(self.findings)}):")
            for finding in self.findings:
                lines.append(f"    - {finding}")
        else:
            lines.append("  findings: none")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Graph analyses
# ----------------------------------------------------------------------
def _analyse_shapes(trace, report):
    if trace.error is None:
        return False
    module = trace.error_module or ""
    report.findings.append(Finding(
        rule="shape-error",
        message=f"{type(trace.error).__name__}: {trace.error}",
        module=module))
    return True


def _analyse_upcasts(trace, report):
    # Report promotion *origins* only: once a float64 value has leaked
    # into a float32 graph, every downstream op would re-trigger the
    # rule, burying the root cause.  An output is "tainted" when its
    # float64-ness came from an already-reported promotion.
    tainted = set()
    seen = set()
    for event in trace.events:
        if any(pid in tainted for pid in event.parent_ids):
            tainted.add(event.out_id)
        float_dtypes = {d for d in event.parent_dtypes if d.kind == "f"}
        if len(float_dtypes) < 2:
            continue
        narrow = min(float_dtypes, key=lambda d: d.itemsize)
        origins = []
        for pid, dtype in zip(event.parent_ids, event.parent_dtypes):
            if dtype.kind != "f" or dtype == narrow or pid in tainted:
                continue
            leaf = trace.leaves.get(pid)
            if leaf is not None:
                label = leaf["name"] or leaf["kind"]
            else:
                producer = trace.event_for(pid)
                label = f"{producer.op} output" if producer else "op output"
            origins.append(f"{label} ({dtype})")
        tainted.add(event.out_id)
        if not origins:
            continue  # contagion from an already-reported origin
        key = (event.module, event.op, tuple(origins))
        if key in seen:
            continue
        seen.add(key)
        report.findings.append(Finding(
            rule="dtype-upcast",
            message=(f"'{event.op}' promotes mixed precisions "
                     f"{sorted(str(d) for d in float_dtypes)} -> "
                     f"{event.out_dtype}; widening operand: "
                     f"{', '.join(origins)}"),
            module=event.module, op=event.op))


def _reachable_params(trace, loss_ids):
    """Ids of param leaves reachable from the loss along tape edges."""
    reachable = set()
    stack = [tid for tid in loss_ids]
    visited = set()
    while stack:
        tid = stack.pop()
        if tid in visited:
            continue
        visited.add(tid)
        event = trace.event_for(tid)
        if event is None:
            leaf = trace.leaves.get(tid)
            if leaf is not None and leaf["kind"] == "param":
                reachable.add(tid)
            continue
        if not event.on_tape:
            continue
        stack.extend(event.parent_ids)
    return reachable


def _analyse_dead_params(trace, model, loss_ids, report, allow_unused=()):
    reachable = _reachable_params(trace, loss_ids)
    for name, param in model.named_parameters():
        if id(param) in reachable:
            continue
        if any(name.startswith(prefix) for prefix in allow_unused):
            continue
        module = name.rsplit(".", 1)[0] if "." in name else ""
        report.findings.append(Finding(
            rule="dead-parameter",
            message=(f"parameter '{name}' (shape {tuple(param.shape)}) "
                     "is not reachable from the loss; it will never "
                     "receive gradient"),
            module=module))


def _leaf_interval(leaf):
    lo, hi = leaf.get("min"), leaf.get("max")
    if lo is None or hi is None or math.isnan(lo) or math.isnan(hi):
        return TOP
    return Interval(lo, hi)


def _has_max_subtraction(trace, tensor_id, depth=8):
    """Does the value chain behind ``tensor_id`` subtract a max?"""
    for _ in range(depth):
        event = trace.event_for(tensor_id)
        if event is None:
            return False
        if event.op == "sub":
            guard_id = event.parent_ids[1]
            guard_event = trace.event_for(guard_id)
            if guard_event is not None and guard_event.op == "max":
                return True
            guard_leaf = trace.leaves.get(guard_id)
            # `x - max(x).detach()` leaves a leaf carrying the
            # reduction's name — detach() preserves it.
            if guard_leaf is not None and guard_leaf["name"] == "max":
                return True
            return False
        if event.op in ("reshape", "broadcast_to", "expand_dims", "squeeze",
                        "getitem", "transpose", "mul", "div", "add"):
            tensor_id = event.parent_ids[0]
            continue
        return False
    return False


def _analyse_hazards(trace, report):
    intervals = {}

    def interval_of(tid):
        cached = intervals.get(tid)
        if cached is not None:
            return cached
        leaf = trace.leaves.get(tid)
        if leaf is None:
            return TOP
        if leaf["kind"] == "const":
            return _leaf_interval(leaf)
        return TOP  # params and inputs: unbounded

    for event in trace.events:
        parent_ivs = [interval_of(pid) for pid in event.parent_ids]
        same = (len(event.parent_ids) == 2
                and event.parent_ids[0] == event.parent_ids[1])
        intervals[event.out_id] = propagate(event.op, parent_ivs,
                                            same_parent=same)

        if event.op == "log" and not parent_ivs[0].is_positive:
            report.findings.append(Finding(
                rule="numeric-hazard",
                message=(f"log of a value in {parent_ivs[0]}: input is not "
                         "provably positive (add an epsilon guard or bound "
                         "the operand)"),
                module=event.module, op="log"))
        elif event.op == "sqrt" and parent_ivs[0].can_be_negative:
            report.findings.append(Finding(
                rule="numeric-hazard",
                message=(f"sqrt of a value in {parent_ivs[0]}: input may be "
                         "negative (square or clamp the operand first)"),
                module=event.module, op="sqrt"))
        elif event.op == "div" and parent_ivs[1].contains_zero:
            report.findings.append(Finding(
                rule="numeric-hazard",
                message=(f"division by a value in {parent_ivs[1]}: "
                         "denominator may be zero (add an epsilon guard)"),
                module=event.module, op="div"))
            continue
        if event.op == "div":
            _check_softmax(trace, event, interval_of, intervals, report)


def _check_softmax(trace, event, interval_of, intervals, report):
    """Flag ``exp(x) / sum(exp(x))`` when x was not max-shifted."""
    num = trace.event_for(event.parent_ids[0])
    den = trace.event_for(event.parent_ids[1])
    if num is None or den is None or num.op != "exp" or den.op != "sum":
        return
    if den.parent_ids[0] != num.out_id:
        return
    logits_id = num.parent_ids[0]
    if _has_max_subtraction(trace, logits_id):
        return
    logits_iv = intervals.get(logits_id, interval_of(logits_id))
    if not math.isinf(logits_iv.hi):
        return  # bounded logits cannot overflow exp
    report.findings.append(Finding(
        rule="numeric-hazard",
        message=("softmax without max-subtraction: exp of unbounded logits "
                 "overflows; subtract a detached max before exponentiating"),
        module=event.module, op="softmax"))


def _event_flops(event):
    out_size = int(np.prod(event.out_shape)) if event.out_shape else 1
    if event.op == "matmul":
        k = event.parent_shapes[0][-1] if event.parent_shapes[0] else 1
        return 2 * out_size * int(k)
    if event.op == "conv2d":
        weight = event.parent_shapes[1]
        if len(weight) == 4:
            _c_out, c_in, kh, kw = weight
            return 2 * out_size * int(c_in) * int(kh) * int(kw)
    if event.op in _REDUCTION_OPS and event.parent_shapes:
        return int(np.prod(event.parent_shapes[0]) or 1)
    return out_size


def _analyse_costs(trace, model, report):
    per_module = {}

    def bucket(path):
        top = path.split(".", 1)[0] if path else "(root)"
        if top not in per_module:
            per_module[top] = ModuleCost(module=top)
        return per_module[top]

    for event in trace.events:
        cost = bucket(event.module)
        cost.flops += _event_flops(event)
        if event.on_tape:
            cost.tape_bytes += event.out_nbytes
    for name, param in model.named_parameters():
        bucket(name).params += int(param.size)

    report.costs = sorted(per_module.values(), key=lambda c: -c.params)
    report.total_params = model.num_parameters()
    report.total_flops = sum(c.flops for c in per_module.values())
    report.total_tape_bytes = sum(c.tape_bytes for c in per_module.values())
    report.num_ops = len(trace.events)

    cross_check = count_parameters(model)
    if cross_check != report.total_params:
        report.findings.append(Finding(
            rule="cost-mismatch",
            message=(f"analysis.complexity.count_parameters reports "
                     f"{cross_check} params but the module tree holds "
                     f"{report.total_params}")))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check_model(model, config, *, rng=None, allow_unused=(), name=None):
    """Statically check ``model`` at the geometry given by ``config``.

    Traces one ``training_loss`` call on abstract batch-size-1 inputs
    (see :mod:`repro.inspect.abstract`) and runs every graph analysis.
    Returns a :class:`ModelReport`; ``report.ok`` is ``True`` when no
    finding fired.  The model's train/eval mode is preserved.
    """
    dtype = model.parameters()[0].dtype if model.parameters() else np.float64
    batch = abstract_batch(config, dtype=dtype)
    inputs = [("closeness", batch.closeness), ("period", batch.period),
              ("trend", batch.trend), ("target", batch.target)]

    report = ModelReport(model=name or type(model).__name__)
    tracer = GraphTracer(model, input_arrays=inputs)
    was_training = model.training
    model.train()
    try:
        with default_dtype(dtype):
            trace = tracer.run(
                model.training_loss, batch,
                rng=rng if rng is not None else np.random.default_rng(0))
    finally:
        model.train(was_training)

    if _analyse_shapes(trace, report):
        # A failed trace has no complete graph to analyse further.
        _analyse_costs(trace, model, report)
        return report

    breakdown = tracer.result[0]
    loss_ids = (id(breakdown.total),)
    _analyse_upcasts(trace, report)
    _analyse_dead_params(trace, model, loss_ids, report,
                         allow_unused=allow_unused)
    _analyse_hazards(trace, report)
    _analyse_costs(trace, model, report)
    return report


def check_method(method, *, dtype=np.float32, rng=None):
    """Build the named method at paper geometry and check it.

    ``method`` is ``"MUSE-Net"`` or any entry of
    ``repro.baselines.BASELINE_NAMES``.  Models are constructed under
    the float32 policy by default — the configuration training uses —
    so dtype-upcast findings reflect real runs.
    """
    from repro.baselines import BASELINE_NAMES, make_baseline
    from repro.core.model import MuseConfig, MUSENet

    with default_dtype(dtype):
        if method == "MUSE-Net":
            config = MuseConfig()
            model = MUSENet(config)
        elif method in BASELINE_NAMES:
            from repro.baselines.base import BaselineConfig

            config = BaselineConfig()
            model = make_baseline(method, config)
        else:
            raise ValueError(
                f"unknown method {method!r}; expected 'MUSE-Net' or one of "
                f"{', '.join(BASELINE_NAMES)}")
    return check_model(model, config, rng=rng, name=method)
