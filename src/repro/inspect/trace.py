"""Graph tracer: records every op a model executes, with module paths.

The tracer installs two observation hooks for the duration of one
traced call:

* ``repro.tensor.tensor._TRACE_HOOK`` — fires once per ``_from_op``
  result with the op name, output tensor and parent tensors;
* ``repro.nn.module._FORWARD_HOOK`` — wraps every ``Module.__call__``
  so each recorded op can be attributed to the dotted module path
  (``encoder_c.net.1``) that produced it.

Both hooks are restored in a ``finally`` block, so a model that raises
mid-trace (the exact scenario a shape checker exists for) cannot leak
instrumentation into later code.  The raising module's path is captured
before the stack unwinds and reported alongside the exception.
"""

from __future__ import annotations

import numpy as np

import repro.nn.module as _module_mod
import repro.tensor.tensor as _tensor_mod

from .abstract import buffer_address

__all__ = ["TraceEvent", "Trace", "GraphTracer"]

# Constants bigger than this skip min/max observation and widen to an
# unknown range; real guard constants (eps scalars, masks, adjacency
# matrices) are far smaller.
_CONST_OBSERVE_LIMIT = 1 << 20


class TraceEvent:
    """One executed op: output facts plus parent references."""

    __slots__ = ("index", "op", "module", "out_id", "out_shape", "out_dtype",
                 "out_nbytes", "on_tape", "parent_ids", "parent_shapes",
                 "parent_dtypes")

    def __init__(self, index, op, module, out, parents):
        self.index = index
        self.op = op
        self.module = module
        self.out_id = id(out)
        self.out_shape = out.data.shape
        self.out_dtype = out.data.dtype
        self.out_nbytes = out.data.nbytes
        self.on_tape = out.requires_grad
        self.parent_ids = tuple(id(p) for p in parents)
        self.parent_shapes = tuple(p.data.shape for p in parents)
        self.parent_dtypes = tuple(p.data.dtype for p in parents)


class Trace:
    """The result of tracing one call: events plus leaf observations."""

    def __init__(self):
        self.events = []
        #: id(tensor) -> TraceEvent that produced it.
        self.producer = {}
        #: id(tensor) -> dict for leaves (parameters, inputs, constants).
        self.leaves = {}
        #: strong refs to every recorded tensor: ids key the two maps
        #: above, so letting a traced tensor be collected mid-trace
        #: would allow CPython to hand its id to a new object and
        #: silently cross-wire the graph.
        self._pinned = []
        #: innermost dotted module path active when the call raised.
        self.error_module = None
        #: the exception the traced call raised, if any.
        self.error = None
        #: final output tensor of the traced call (id), when it is one.
        self.output_ids = ()

    def event_for(self, tensor_id):
        return self.producer.get(tensor_id)


class GraphTracer:
    """Installs the trace/forward hooks around a single model call."""

    def __init__(self, model=None, input_arrays=()):
        self._trace = Trace()
        self._module_paths = {}
        self._param_names = {}
        if model is not None:
            for path, module in model.named_modules():
                self._module_paths[id(module)] = path or type(model).__name__
            for name, param in model.named_parameters():
                self._param_names.setdefault(id(param), name)
        self._input_addresses = {}
        for name, array in input_arrays:
            self._input_addresses[buffer_address(array)] = name
        self._stack = []

    # -- hook bodies ---------------------------------------------------
    def _on_op(self, name, out, parents):
        trace = self._trace
        for parent in parents:
            pid = id(parent)
            if pid not in trace.producer and pid not in trace.leaves:
                trace.leaves[pid] = self._describe_leaf(parent)
                trace._pinned.append(parent)
        module = self._stack[-1] if self._stack else ""
        event = TraceEvent(len(trace.events), name, module, out, parents)
        trace.events.append(event)
        trace.producer[id(out)] = event
        trace._pinned.append(out)

    def _on_module_call(self, module, forward, args, kwargs):
        path = self._module_paths.get(id(module), type(module).__name__)
        self._stack.append(path)
        try:
            return forward(*args, **kwargs)
        except Exception:
            # Record the innermost module only: the first frame to see
            # the exception is the one whose op failed.
            if self._trace.error_module is None:
                self._trace.error_module = path
            raise
        finally:
            self._stack.pop()

    def _describe_leaf(self, tensor):
        tid = id(tensor)
        info = {
            "shape": tensor.data.shape,
            "dtype": tensor.data.dtype,
            "name": tensor.name,
            "requires_grad": tensor.requires_grad,
        }
        if tid in self._param_names:
            info["kind"] = "param"
            info["name"] = self._param_names[tid]
            return info
        address = buffer_address(tensor.data)
        if address in self._input_addresses:
            info["kind"] = "input"
            info["name"] = info["name"] or self._input_addresses[address]
            return info
        info["kind"] = "const"
        if tensor.data.size and tensor.data.size <= _CONST_OBSERVE_LIMIT:
            with np.errstate(all="ignore"):
                info["min"] = float(tensor.data.min())
                info["max"] = float(tensor.data.max())
        return info

    # -- driving -------------------------------------------------------
    def run(self, fn, *args, **kwargs):
        """Trace ``fn(*args, **kwargs)``; returns the populated Trace.

        The traced call's exception (if any) is captured on
        ``trace.error`` rather than propagated — an analysis pass turns
        it into a finding.  Hook state is always restored.
        """
        trace = self._trace
        prev_op = _tensor_mod._set_trace_hook(self._on_op)
        prev_fwd = _module_mod._set_forward_hook(self._on_module_call)
        try:
            with np.errstate(all="ignore"):
                result = fn(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 — analysed, not hidden
            trace.error = exc
        finally:
            _tensor_mod._set_trace_hook(prev_op)
            _module_mod._set_forward_hook(prev_fwd)
            self._stack.clear()
        if trace.error is None:
            trace.output_ids = tuple(
                id(t) for t in _iter_tensors(result))
            self._result = result
        else:
            self._result = None
        return trace

    @property
    def result(self):
        return getattr(self, "_result", None)


def _iter_tensors(value):
    from repro.tensor import Tensor

    if isinstance(value, Tensor):
        yield value
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_tensors(item)
