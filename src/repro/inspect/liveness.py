"""Buffer liveness analysis and arena planning for compiled plans.

A compiled forward plan is a linear schedule of kernels; each kernel
reads some buffers and writes others.  Given that schedule,
:func:`compute_liveness` derives, for every written buffer, the interval
of schedule positions during which its contents must be preserved —
from the step that produces it (*birth*) to the last step that reads it
(*death*).  Two buffers whose intervals do not overlap can share the
same storage.

:func:`plan_arena` turns those intervals into concrete byte offsets in
one flat arena using a first-fit interval-graph colouring: buffers are
placed in birth order, each at the lowest 64-byte-aligned offset whose
extent does not collide with any *live-overlapping* previously placed
buffer.  First-fit on interval graphs is optimal for single rows and
near-optimal in practice for the short, chain-heavy schedules a forward
pass produces; the planner reports both the packed arena size and the
sum of raw buffer sizes so callers can surface the reuse percentage.
"""

from __future__ import annotations

__all__ = ["compute_liveness", "plan_arena", "ARENA_ALIGN"]

ARENA_ALIGN = 64


def compute_liveness(events):
    """Derive [birth, death] intervals from a read/write schedule.

    Parameters
    ----------
    events:
        Sequence of ``(reads, writes)`` pairs, one per schedule step,
        where each element is an iterable of hashable buffer keys.

    Returns
    -------
    dict mapping each written key to ``[birth, death]``: the index of
    the step that first writes it and the index of the last step that
    reads *or rewrites* it (death == birth for never-read outputs).
    Reads of keys never written inside the schedule (plan inputs,
    parameters) are ignored — they live outside the arena.
    """
    intervals = {}
    for position, (reads, writes) in enumerate(events):
        for key in reads:
            interval = intervals.get(key)
            if interval is not None:
                interval[1] = position
        for key in writes:
            interval = intervals.get(key)
            if interval is None:
                intervals[key] = [position, position]
            else:
                # Rewriting an existing buffer extends its lifetime.
                interval[1] = position
    return intervals


def _align(offset, align=ARENA_ALIGN):
    return (offset + align - 1) // align * align


def plan_arena(intervals, sizes, align=ARENA_ALIGN):
    """First-fit offset assignment for buffers with live intervals.

    Parameters
    ----------
    intervals:
        ``{key: [birth, death]}`` as produced by
        :func:`compute_liveness`.
    sizes:
        ``{key: nbytes}`` for every key in ``intervals``.
    align:
        Offset alignment in bytes (keeps reinterpreted buffers on cache
        -line boundaries).

    Returns
    -------
    ``(offsets, arena_bytes)``: byte offset per key and the total arena
    size.  Keys are placed in birth order (ties by death, then by
    descending size for stability), each at the lowest aligned offset
    that does not overlap — in both address space *and* lifetime — any
    buffer already placed.
    """
    order = sorted(intervals,
                   key=lambda k: (intervals[k][0], intervals[k][1], -sizes[k]))
    placed = []  # (offset, end, birth, death)
    offsets = {}
    arena_bytes = 0
    for key in order:
        birth, death = intervals[key]
        size = max(int(sizes[key]), 1)
        # Collect address ranges of buffers whose lifetime overlaps.
        blockers = sorted((off, end) for off, end, b, d in placed
                          if not (d < birth or b > death))
        offset = 0
        for blk_off, blk_end in blockers:
            if offset + size <= blk_off:
                break
            if blk_end > offset:
                offset = _align(blk_end, align)
        offsets[key] = offset
        placed.append((offset, offset + size, birth, death))
        arena_bytes = max(arena_bytes, offset + size)
    return offsets, arena_bytes
