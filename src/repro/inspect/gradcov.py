"""Gradient-coverage registry: one canonical gradcheck per op.

The autodiff layer registers its differentiable ops in the ``__all__``
of five modules (``ops``, ``reductions``, ``shape``, ``matmul``,
``conv``).  This module pairs every registered op with a canonical
finite-difference check case.  Two consumers:

* ``tests/tensor/test_gradcheck_coverage.py`` runs every case, so each
  op's analytic gradient is verified against central differences on
  every CI run — and the test *fails* when a newly registered op has no
  case here;
* the ``gradcheck-coverage`` lint rule (``repro lint``) reports
  registered ops missing from this registry without running anything.

Inputs are chosen away from non-differentiable points (``abs`` at 0,
``max`` ties, ``sqrt`` near 0) so the finite-difference probe stays
well-conditioned.
"""

from __future__ import annotations

import importlib

import numpy as np

__all__ = ["OP_MODULES", "registered_ops", "gradcheck_cases",
           "uncovered_ops"]

#: The op registry: every name in these modules' ``__all__`` is a
#: differentiable op, except the helpers listed below.
OP_MODULES = ("repro.tensor.ops", "repro.tensor.reductions",
              "repro.tensor.shape", "repro.tensor.matmul",
              "repro.tensor.conv")

#: ``__all__`` entries that are not ops (gradient plumbing helpers).
NON_OPS = frozenset({"unbroadcast"})


def registered_ops():
    """Return ``{op_name: module_name}`` for every registered op."""
    registry = {}
    for module_name in OP_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            if name not in NON_OPS:
                registry[name] = module_name
    return registry


def _t(*shape, low=-2.0, high=2.0, seed=0):
    from repro.tensor import Tensor

    rng = np.random.default_rng(seed)
    return Tensor(rng.uniform(low, high, size=shape))


def _pos(*shape, seed=0):
    return _t(*shape, low=0.5, high=2.0, seed=seed)


def _spread(*shape, seed=0):
    """Values with pairwise gaps: safe for max/min/ties."""
    from repro.tensor import Tensor

    rng = np.random.default_rng(seed)
    size = int(np.prod(shape))
    values = np.arange(size, dtype=np.float64) + rng.uniform(0.1, 0.4, size)
    rng.shuffle(values)
    return Tensor(values.reshape(shape))


def gradcheck_cases():
    """Return ``{op_name: (fn, inputs)}`` ready for ``check_gradients``.

    ``fn`` maps the (tracked) input list to a scalar tensor; reductions
    to a scalar use ``.sum()`` where the op itself is not scalar.
    """
    import repro.tensor as rt

    # Fixed multiplier constants give structural ops (reshape & co) a
    # non-uniform upstream gradient — a plain .sum() would miss
    # transposed or mis-ordered gradients whose elements merely sum to
    # the same total.  Built here (not at import time) so they follow
    # the float64 policy gradcheck pins.
    _W12 = _const(12)
    _W22 = _const(2, 2)
    _W34 = _const(3, 4)
    _W43 = _const(4, 3)
    _W36 = _const(3, 6)
    _W38 = _const(3, 8)
    _W56 = _const(5, 6)
    _W64 = _const(6, 4)
    _W35 = _const(3, 5)
    _W134 = _const(1, 3, 4)
    _W234 = _const(2, 3, 4)
    _MASK = np.random.default_rng(101).random((3, 4)) > 0.5

    cases = {
        # ops.py ------------------------------------------------------
        "add": (lambda ts: (ts[0] + ts[1]).sum(), [_t(3, 4), _t(1, 4)]),
        "sub": (lambda ts: (ts[0] - ts[1]).sum(), [_t(3, 4), _t(3, 1)]),
        "mul": (lambda ts: (ts[0] * ts[1]).sum(), [_t(3, 4), _t(3, 4)]),
        "div": (lambda ts: (ts[0] / ts[1]).sum(), [_t(3, 4), _pos(3, 4)]),
        "neg": (lambda ts: (-ts[0]).sum(), [_t(3, 4)]),
        "pow_": (lambda ts: rt.pow_(ts[0], 3.0).sum(), [_pos(3, 4)]),
        "exp": (lambda ts: ts[0].exp().sum(), [_t(3, 4)]),
        "log": (lambda ts: ts[0].log().sum(), [_pos(3, 4)]),
        "sqrt": (lambda ts: ts[0].sqrt().sum(), [_pos(3, 4)]),
        "abs_": (lambda ts: ts[0].abs().sum(), [_pos(3, 4, seed=1)]),
        "tanh": (lambda ts: ts[0].tanh().sum(), [_t(3, 4)]),
        "sigmoid": (lambda ts: ts[0].sigmoid().sum(), [_t(3, 4)]),
        "relu": (lambda ts: ts[0].relu().sum(), [_spread(3, 4)]),
        "leaky_relu": (lambda ts: rt.leaky_relu(ts[0], 0.1).sum(),
                       [_spread(3, 4, seed=2)]),
        "softplus": (lambda ts: rt.softplus(ts[0]).sum(), [_t(3, 4)]),
        "clip": (lambda ts: rt.clip(ts[0], -0.9, 0.9).sum(),
                 [_spread(3, 4, seed=3)]),
        "maximum": (lambda ts: rt.maximum(ts[0], ts[1]).sum(),
                    [_spread(3, 4, seed=4), _spread(3, 4, seed=5)]),
        "minimum": (lambda ts: rt.minimum(ts[0], ts[1]).sum(),
                    [_spread(3, 4, seed=6), _spread(3, 4, seed=7)]),
        "where": (lambda ts: rt.where(_MASK, ts[0], ts[1]).sum(),
                  [_t(3, 4), _t(3, 4, seed=8)]),
        # reductions.py -----------------------------------------------
        "sum_": (lambda ts: ts[0].sum(axis=1).sum(), [_t(3, 4)]),
        "mean": (lambda ts: ts[0].mean(axis=0).sum(), [_t(3, 4)]),
        "max_": (lambda ts: ts[0].max(axis=1).sum(), [_spread(3, 4, seed=9)]),
        "min_": (lambda ts: ts[0].min(axis=1).sum(), [_spread(3, 4, seed=10)]),
        "var": (lambda ts: rt.var(ts[0], axis=1).sum(), [_t(3, 4)]),
        "std": (lambda ts: rt.std(ts[0], axis=1, eps=1e-3).sum(), [_t(3, 4)]),
        "logsumexp": (lambda ts: rt.logsumexp(ts[0], axis=1).sum(),
                      [_t(3, 4)]),
        # shape.py ----------------------------------------------------
        "reshape": (lambda ts: (ts[0].reshape((4, 3)) * _W43).sum(),
                    [_t(3, 4)]),
        "transpose": (lambda ts: (ts[0].transpose() * _W43).sum(),
                      [_t(3, 4)]),
        "swapaxes": (lambda ts: (rt.swapaxes(ts[0], 0, 1) * _W43).sum(),
                     [_t(3, 4)]),
        "flatten": (lambda ts: (rt.flatten(ts[0]) * _W12).sum(), [_t(3, 4)]),
        "concat": (lambda ts: (rt.concat([ts[0], ts[1]], axis=1)
                               * _W36).sum(),
                   [_t(3, 4), _t(3, 2)]),
        "stack": (lambda ts: (rt.stack([ts[0], ts[1]], axis=0)
                              * _W234).sum(),
                  [_t(3, 4), _t(3, 4, seed=11)]),
        "split": (lambda ts: sum((piece * piece).sum()
                                 for piece in rt.split(ts[0], 2, axis=1)),
                  [_t(3, 4)]),
        "getitem": (lambda ts: (ts[0][1:, ::2] * _W22).sum(), [_t(3, 4)]),
        "pad": (lambda ts: (rt.pad(ts[0], ((1, 1), (0, 2))) * _W56).sum(),
                [_t(3, 4)]),
        "broadcast_to": (lambda ts: (rt.broadcast_to(ts[0], (2, 3, 4))
                                     * _W234).sum(),
                         [_t(3, 4)]),
        "squeeze": (lambda ts: (rt.squeeze(ts[0], axis=1) * _W43).sum(),
                    [_t(4, 1, 3)]),
        "expand_dims": (lambda ts: (rt.expand_dims(ts[0], 0)
                                    * _W134).sum(),
                        [_t(3, 4)]),
        "flip": (lambda ts: (rt.flip(ts[0], 1) * _W34).sum(), [_t(3, 4)]),
        "repeat_interleave": (lambda ts: (rt.repeat_interleave(ts[0], 2, 1)
                                          * _W38).sum(),
                              [_t(3, 4)]),
        "tile": (lambda ts: (rt.tile(ts[0], (2, 1)) * _W64).sum(),
                 [_t(3, 4)]),
        # matmul.py ---------------------------------------------------
        "matmul": (lambda ts: (ts[0] @ ts[1]).sum(), [_t(3, 4), _t(4, 2)]),
        "dot": (lambda ts: rt.dot(ts[0], ts[1]), [_t(5), _t(5, seed=12)]),
        "outer": (lambda ts: (rt.outer(ts[0], ts[1]) * _W35).sum(),
                  [_t(3), _t(5, seed=13)]),
        # conv.py -----------------------------------------------------
        "conv2d": (lambda ts: (rt.conv2d(ts[0], ts[1], bias=ts[2],
                                         stride=1, padding=1) ** 2).sum(),
                   [_t(2, 3, 5, 5), _t(4, 3, 3, 3), _t(4)]),
        "avg_pool2d": (lambda ts: (rt.avg_pool2d(ts[0], 2) ** 2).sum(),
                       [_t(2, 3, 4, 4)]),
        "max_pool2d": (lambda ts: (rt.max_pool2d(ts[0], 2) ** 2).sum(),
                       [_spread(2, 3, 4, 4, seed=14)]),
        "global_avg_pool2d": (lambda ts: (rt.global_avg_pool2d(ts[0])
                                          ** 2).sum(),
                              [_t(2, 3, 4, 4)]),
    }
    return cases


def uncovered_ops():
    """Registered ops with no gradcheck case — should always be empty."""
    cases = gradcheck_cases()
    return sorted(name for name in registered_ops() if name not in cases)


def _const(*shape, seed=100):
    from repro.tensor import Tensor

    rng = np.random.default_rng(seed)
    return Tensor(rng.uniform(0.5, 1.5, size=shape))
