"""AST-based codebase linter with repo-specific rules.

Rules (see ``docs/static_analysis.md`` for the catalog):

* ``dtype-policy`` — ``np.array``/``np.zeros``/``np.ones``/``np.empty``/
  ``np.full``/``np.eye`` without an explicit ``dtype=`` in compute hot
  paths.  Bare constructors default to float64 and silently break the
  float32 policy (PR 2); the rule applies only under the configured
  ``dtype-policy-paths`` prefixes so index/metadata code stays quiet.
* ``gradcheck-coverage`` — ops registered in the tensor op modules with
  no canonical gradcheck case in :mod:`repro.inspect.gradcov`.
* ``optimizer-out`` — numpy arithmetic inside optimizer ``_update``
  kernels without ``out=``: the in-place contract is what keeps the
  step allocation-free.
* ``mutable-default`` — mutable default arguments (list/dict/set
  literals or constructor calls).
* ``fork-discipline`` — direct process-forking primitives
  (``os.fork``, ``multiprocessing.Process``/``Pool``/``get_context``)
  outside :mod:`repro.parallel`.  The worker pool centralises fork
  lifecycle, shared-memory cleanup, and signal handling; ad-hoc forks
  elsewhere orphan children on interrupts and leak shared segments
  (``src/repro/parallel`` is exempted via ``per-path-ignores``).
* ``alloc`` — numpy calls that allocate fresh arrays (constructors and
  ``out=``-capable functions called without ``out=``) under the
  configured ``alloc-paths`` prefixes.  Those modules are replay hot
  paths whose contract is zero allocations per step (PR 7's compiled
  arenas); one-time plan-build allocations are suppressed in place
  with ``# lint: ignore[alloc]``.
* ``bounded-buffer`` — ``collections.deque(...)`` constructed without
  ``maxlen=`` under the configured ``bounded-buffer-paths`` prefixes
  (the streaming runtime by default).  A stream runs forever; any
  unbounded tick/error/quarantine buffer is a slow memory leak that
  only shows up days into a deployment.  Every long-lived buffer in
  ``repro.stream`` must declare its bound at construction.
* ``thread-discipline`` — ``threading.Thread``/``create_thread`` spawns
  without an explicit ``daemon=`` and ``.join()`` calls with no bound.
  A thread whose daemon-ness is implicit inherits it from its spawner,
  and an unbounded join means one hung worker hangs CI forever; spawn
  sites must decide both explicitly (``repro.inspect.sanitizer.
  join_thread`` reports an error on timeout).

The whole-program lock-discipline rules (``lock-order``,
``guarded-field``, ``fork-safety``) live in
:mod:`repro.inspect.concurrency` and run under
``repro check-concurrency``; they share this module's config
(``concurrency-paths``, ``guard-map``) and suppression syntax.

Configuration lives in ``[tool.repro.lint]`` in ``pyproject.toml``;
individual lines can be suppressed with a ``# lint: ignore[rule]``
comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

try:
    import tomllib
except ImportError:  # Python 3.10: run with built-in defaults
    tomllib = None

__all__ = ["LintFinding", "LintConfig", "LintReport", "lint_paths",
           "load_config", "ALL_RULES"]

ALL_RULES = ("dtype-policy", "gradcheck-coverage", "optimizer-out",
             "mutable-default", "fork-discipline", "alloc",
             "bounded-buffer", "thread-discipline")

#: numpy constructors that allocate *new* float arrays with a float64
#: default.  ``*_like``/``asarray`` variants inherit their input dtype
#: and are deliberately not listed.
_DTYPE_POLICY_FUNCS = frozenset(
    {"array", "zeros", "ones", "empty", "full", "eye"})

#: numpy arithmetic that optimizer kernels must call with ``out=``.
_OUT_REQUIRED_FUNCS = frozenset(
    {"add", "subtract", "multiply", "divide", "true_divide", "sqrt",
     "square", "power", "abs", "absolute", "maximum", "minimum", "exp",
     "log", "negative", "clip"})

#: Process-creating entry points of :mod:`multiprocessing` that the
#: fork-discipline rule flags outside ``repro.parallel``.
_FORK_FUNCS = frozenset({"Process", "Pool", "get_context"})

#: numpy calls that allocate a fresh array unless ``out=`` is given:
#: pure constructors (which never take ``out=``) plus the
#: ``out=``-capable functions a replay kernel must call in place.
#: ``asarray``/``copyto``/views are deliberately absent — they don't
#: allocate (or allocate only on dtype mismatch).
_ALLOC_FUNCS = frozenset(
    {"empty", "zeros", "ones", "full", "empty_like", "zeros_like",
     "ones_like", "full_like", "array", "arange", "eye", "copy",
     "concatenate", "stack", "matmul", "where", "mean", "sum"}
    | _OUT_REQUIRED_FUNCS)

#: Long-running stream modules where every deque must be bounded.
_DEFAULT_BOUNDED_BUFFER_PATHS = ("src/repro/stream",)

#: Modules whose lock/thread/fork discipline the whole-program
#: concurrency pass (repro.inspect.concurrency) analyzes by default:
#: everything that spawns threads, forks replicas, or shares state
#: across them.
_DEFAULT_CONCURRENCY_PATHS = (
    "src/repro/serve", "src/repro/parallel", "src/repro/stream",
    "src/repro/training",
)

_DEFAULT_DTYPE_POLICY_PATHS = (
    "src/repro/tensor", "src/repro/nn", "src/repro/core",
    "src/repro/baselines", "src/repro/optim", "src/repro/training",
    "src/repro/experiments", "src/repro/inspect",
)


@dataclass
class LintFinding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class LintConfig:
    """Rule enable/disable state and per-path scoping."""

    disabled: frozenset = frozenset()
    dtype_policy_paths: tuple = _DEFAULT_DTYPE_POLICY_PATHS
    # Zero-allocation hot paths for the ``alloc`` rule; opt-in (empty
    # by default) because most code is allowed to allocate freely.
    alloc_paths: tuple = ()
    # Forever-running modules where every deque must declare maxlen=.
    bounded_buffer_paths: tuple = _DEFAULT_BOUNDED_BUFFER_PATHS
    # Modules the whole-program lock-discipline pass analyzes.
    concurrency_paths: tuple = _DEFAULT_CONCURRENCY_PATHS
    # "Class.field" -> "lock-free" declarations: intentional unguarded
    # fast paths the guarded-field rule must not flag (e.g. the serving
    # generation counter read by telemetry without the forward lock).
    guard_map: dict = None
    per_path_ignores: dict = None

    def __post_init__(self):
        if self.per_path_ignores is None:
            self.per_path_ignores = {}
        if self.guard_map is None:
            self.guard_map = {}

    def rule_applies(self, rule, rel_path):
        if rule in self.disabled:
            return False
        for prefix, rules in self.per_path_ignores.items():
            if rel_path.startswith(prefix) and rule in rules:
                return False
        if rule == "dtype-policy":
            return any(rel_path.startswith(p)
                       for p in self.dtype_policy_paths)
        if rule == "alloc":
            return any(rel_path.startswith(p) for p in self.alloc_paths)
        if rule == "bounded-buffer":
            return any(rel_path.startswith(p)
                       for p in self.bounded_buffer_paths)
        return True


def load_config(root):
    """Read ``[tool.repro.lint]`` from ``<root>/pyproject.toml``."""
    pyproject = Path(root) / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    from .concurrency import CONCURRENCY_RULES

    known = set(ALL_RULES) | set(CONCURRENCY_RULES)
    unknown = set(table.get("disable", ())) - known
    if unknown:
        raise ValueError(
            f"[tool.repro.lint] disables unknown rules: {sorted(unknown)}")
    guard_map = dict(table.get("guard-map", {}))
    bad = {field: why for field, why in guard_map.items()
           if why != "lock-free"}
    if bad:
        raise ValueError(
            "[tool.repro.lint.guard-map] entries must declare 'lock-free' "
            f"(the only supported policy); got: {bad}")
    return LintConfig(
        disabled=frozenset(table.get("disable", ())),
        dtype_policy_paths=tuple(
            table.get("dtype-policy-paths", _DEFAULT_DTYPE_POLICY_PATHS)),
        alloc_paths=tuple(table.get("alloc-paths", ())),
        bounded_buffer_paths=tuple(
            table.get("bounded-buffer-paths", _DEFAULT_BOUNDED_BUFFER_PATHS)),
        concurrency_paths=tuple(
            table.get("concurrency-paths", _DEFAULT_CONCURRENCY_PATHS)),
        guard_map=guard_map,
        per_path_ignores={
            prefix: frozenset(rules)
            for prefix, rules in table.get("per-path-ignores", {}).items()},
    )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list
    files_checked: int

    @property
    def ok(self):
        return not self.findings

    def to_dict(self):
        return {"ok": self.ok, "files_checked": self.files_checked,
                "findings": [f.to_dict() for f in self.findings]}

    def format_text(self):
        lines = [str(f) for f in self.findings]
        lines.append(f"lint: {self.files_checked} files, "
                     f"{len(self.findings)} finding(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-file AST rules
# ----------------------------------------------------------------------
def _np_attr(node):
    """Return ``'zeros'`` for a ``np.zeros``/``numpy.zeros`` call node."""
    func = node.func
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")):
        return func.attr
    return None


def _has_keyword(node, name):
    return any(kw.arg == name for kw in node.keywords)


class _FileLinter(ast.NodeVisitor):
    def __init__(self, rel_path, source_lines, config):
        self.rel_path = rel_path
        self.source_lines = source_lines
        self.config = config
        self.findings = []
        self._update_depth = 0
        # Names this file binds to multiprocessing (module aliases and
        # from-imports of process-creating entry points).
        self._mp_modules = {"multiprocessing"}
        self._mp_names = {}
        # Names this file binds to collections.deque (for the
        # bounded-buffer rule).
        self._collections_modules = {"collections"}
        self._deque_names = set()
        # Names bound to threading / the sanitizer factories (for the
        # thread-discipline rule).
        self._threading_modules = {"threading"}
        self._sanitizer_modules = {"sanitizer"}
        self._thread_ctor_names = {}

    def _suppressed(self, line, rule):
        if 1 <= line <= len(self.source_lines):
            text = self.source_lines[line - 1]
            if f"lint: ignore[{rule}]" in text:
                return True
        return False

    def _emit(self, rule, node, message):
        if not self.config.rule_applies(rule, self.rel_path):
            return
        if self._suppressed(node.lineno, rule):
            return
        self.findings.append(LintFinding(
            rule=rule, path=self.rel_path, line=node.lineno,
            message=message))

    # -- fork-discipline imports ---------------------------------------
    def visit_Import(self, node):
        for alias in node.names:
            if alias.name.split(".")[0] == "multiprocessing":
                self._mp_modules.add(alias.asname or alias.name)
            if alias.name == "collections":
                self._collections_modules.add(alias.asname or alias.name)
            if alias.name == "threading":
                self._threading_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module and node.module.split(".")[0] == "multiprocessing":
            for alias in node.names:
                if alias.name in _FORK_FUNCS:
                    self._mp_names[alias.asname or alias.name] = alias.name
        if node.module == "collections":
            for alias in node.names:
                if alias.name == "deque":
                    self._deque_names.add(alias.asname or alias.name)
        if node.module == "threading":
            for alias in node.names:
                if alias.name == "Thread":
                    self._thread_ctor_names[alias.asname or alias.name] = \
                        "threading.Thread"
        if node.module and node.module.endswith("sanitizer"):
            for alias in node.names:
                if alias.name == "create_thread":
                    self._thread_ctor_names[alias.asname or alias.name] = \
                        "sanitizer.create_thread"
        if node.module == "repro.inspect":
            for alias in node.names:
                if alias.name == "sanitizer":
                    self._sanitizer_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _check_fork_discipline(self, node):
        func = node.func
        origin = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "os" and func.attr == "fork":
                origin = "os.fork"
            elif (func.value.id in self._mp_modules
                    and func.attr in _FORK_FUNCS):
                origin = f"multiprocessing.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self._mp_names:
            origin = f"multiprocessing.{self._mp_names[func.id]}"
        if origin is not None:
            self._emit(
                "fork-discipline", node,
                f"direct {origin} call outside repro.parallel; route "
                "process-level parallelism through TrainConfig.workers / "
                "repro.parallel.ParallelEngine so worker lifecycle, "
                "shared-memory cleanup, and signal handling stay "
                "centralised")

    # -- bounded-buffer ------------------------------------------------
    def _check_bounded_buffer(self, node):
        func = node.func
        is_deque = (isinstance(func, ast.Name)
                    and func.id in self._deque_names)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self._collections_modules
                and func.attr == "deque"):
            is_deque = True
        if is_deque and not _has_keyword(node, "maxlen"):
            # A positional maxlen (second arg) also satisfies the bound.
            if len(node.args) >= 2:
                return
            self._emit(
                "bounded-buffer", node,
                "deque without maxlen= in a forever-running stream "
                "module; an unbounded tick/error buffer grows without "
                "limit on a live stream — declare the retention bound "
                "at construction (deque(maxlen=...))")

    # -- thread-discipline ---------------------------------------------
    def _check_thread_discipline(self, node):
        func = node.func
        ctor = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (func.value.id in self._threading_modules
                    and func.attr == "Thread"):
                ctor = "threading.Thread"
            elif (func.value.id in self._sanitizer_modules
                    and func.attr == "create_thread"):
                ctor = "sanitizer.create_thread"
        elif isinstance(func, ast.Name) and func.id in self._thread_ctor_names:
            ctor = self._thread_ctor_names[func.id]
        if ctor is not None and not _has_keyword(node, "daemon"):
            self._emit(
                "thread-discipline", node,
                f"{ctor}(...) without an explicit daemon=; implicit "
                "daemon-ness is inherited from the spawning thread — "
                "decide it at the spawn site")
        if (isinstance(func, ast.Attribute) and func.attr == "join"
                and not node.args and not node.keywords):
            self._emit(
                "thread-discipline", node,
                "unbounded .join(); one hung worker hangs the caller "
                "forever — use join(timeout=...) (or "
                "repro.inspect.sanitizer.join_thread, which reports an "
                "error on timeout)")

    # -- dtype-policy / optimizer-out ----------------------------------
    def visit_Call(self, node):
        self._check_fork_discipline(node)
        self._check_bounded_buffer(node)
        self._check_thread_discipline(node)
        attr = _np_attr(node)
        if attr in _DTYPE_POLICY_FUNCS and not _has_keyword(node, "dtype"):
            self._emit(
                "dtype-policy", node,
                f"np.{attr} without an explicit dtype defaults to float64; "
                "pass dtype=... (policy-aware: repro.tensor."
                "get_default_dtype()) or an input-derived dtype")
        if (self._update_depth > 0 and attr in _OUT_REQUIRED_FUNCS
                and not _has_keyword(node, "out")):
            self._emit(
                "optimizer-out", node,
                f"np.{attr} inside an optimizer _update kernel allocates a "
                "fresh array; pass out=... to keep the step in-place")
        if attr in _ALLOC_FUNCS and not _has_keyword(node, "out"):
            self._emit(
                "alloc", node,
                f"np.{attr} allocates a fresh array in a zero-allocation "
                "hot path; write into a preallocated buffer (out=, "
                "np.copyto, a ScratchPool slot) or mark a deliberate "
                "plan-build allocation with # lint: ignore[alloc]")
        self.generic_visit(node)

    # -- mutable-default ----------------------------------------------
    def _check_defaults(self, node):
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                mutable = True
            if mutable:
                self._emit(
                    "mutable-default", default,
                    f"mutable default argument in {node.name}(); defaults "
                    "are shared across calls — use None and create the "
                    "object inside the function")

    def visit_FunctionDef(self, node):
        self._check_defaults(node)
        if node.name == "_update":
            self._update_depth += 1
            self.generic_visit(node)
            self._update_depth -= 1
        else:
            self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node):
        self._check_defaults(node)
        self.generic_visit(node)


def _lint_file(path, root, config):
    resolved = Path(path).resolve()
    try:
        rel_path = str(resolved.relative_to(Path(root).resolve()))
    except ValueError:
        # Outside the root: keep the absolute path.  Path-scoped rules
        # (dtype-policy, per-path-ignores) simply won't match it.
        rel_path = str(resolved)
    source = Path(path).read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [LintFinding(rule="parse-error", path=rel_path,
                            line=exc.lineno or 0, message=str(exc.msg))]
    linter = _FileLinter(rel_path, source.splitlines(), config)
    linter.visit(tree)
    return linter.findings


def _coverage_findings(config):
    if "gradcheck-coverage" in config.disabled:
        return []
    from .gradcov import registered_ops, uncovered_ops

    registry = registered_ops()
    return [
        LintFinding(
            rule="gradcheck-coverage",
            path=registry[name].replace(".", "/") + ".py",
            line=0,
            message=(f"op '{name}' has no gradcheck case in "
                     "repro.inspect.gradcov; add one so its gradient is "
                     "verified in CI"))
        for name in uncovered_ops()
    ]


def lint_paths(paths, root, config=None):
    """Lint every ``.py`` file under ``paths``; returns a LintReport.

    ``root`` anchors relative paths in findings and config prefixes.
    """
    config = config if config is not None else load_config(root)
    files = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings = []
    for path in files:
        findings.extend(_lint_file(path, root, config))
    findings.extend(_coverage_findings(config))
    findings.sort(key=lambda f: (f.path, f.line))
    return LintReport(findings=findings, files_checked=len(files))
