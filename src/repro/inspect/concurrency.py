"""Whole-program lock-discipline analysis over the concurrent modules.

The serving / parallel-training / streaming stack shares state across
threads and forked replicas through a handful of per-class locks.
This pass parses the configured ``concurrency-paths`` (see
``[tool.repro.lint]``), builds a model of every class — which
attributes are locks, which fields each method touches under which
``with self._lock:`` scopes, which methods call which while holding —
and checks three whole-program rules:

* ``lock-order`` — the inter-module lock-acquisition graph: an edge
  ``A -> B`` means some thread acquires ``B`` while holding ``A``
  (directly, or through a call chain).  Any cycle is a potential
  deadlock and is reported with the acquisition path of every edge in
  the cycle; acquiring a non-reentrant ``Lock`` while already holding
  it is reported as a self-deadlock.
* ``guarded-field`` — infers which lock guards each instance field
  (every non-lifecycle write happens under it, or at least two
  accesses do) and flags accesses of the field outside that lock.
  ``__init__``/``start`` run before the object is shared and are
  exempt.  Intentional lock-free fast paths are declared either inline
  (``# lint: ignore[guarded-field]``) or centrally in
  ``[tool.repro.lint.guard-map]`` (``"Class.field" = "lock-free"``).
* ``fork-safety`` — flags ``os.fork()`` / ``multiprocessing`` process
  or pool construction reachable while any lock is held: the child
  inherits a locked mutex whose owning thread does not exist there,
  so the first acquisition in the child deadlocks forever.  (The
  dynamic half — fork while a non-daemon *thread* is alive — needs
  runtime knowledge and lives in :mod:`repro.inspect.sanitizer`.)

Held-context is interprocedural two ways: acquisitions made by callees
propagate to callers (fixpoint closure over ``self.method()`` and
``self.attr.method()`` calls with known attribute types), and private
helpers (``_name``) inherit the *intersection* of the lock sets held
at their non-lifecycle intra-class call sites — so ``_recv`` in the
replica pool, only ever called with the dispatch lock held, is
analyzed as lock-protected without annotations.

Run via ``repro check-concurrency`` (exit 0 clean / 2 findings / 1
internal error, ``--format json``); CI keeps it always-on next to
``repro lint``.  Findings share the lint ``rule/path/line/message``
shape and suppression syntax.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .lint import LintFinding, load_config

__all__ = ["CONCURRENCY_RULES", "ConcurrencyReport", "check_concurrency"]

CONCURRENCY_RULES = ("lock-order", "guarded-field", "fork-safety")

#: Constructors recognised as lock attributes, mapped to reentrancy
#: kind.  ``threading.Condition()`` with no lock argument wraps an
#: RLock; the sanitizer factory wraps a plain Lock.
_LOCK_CTORS = {
    ("threading", "Lock"): "lock",
    ("threading", "RLock"): "rlock",
    ("threading", "Condition"): "condition",
    ("sanitizer", "create_lock"): "lock",
    ("sanitizer", "create_rlock"): "rlock",
    ("sanitizer", "create_condition"): "condition",
}

#: Methods that run before (or while) the object is published to other
#: threads: construction and single-threaded startup.  Exempt from
#: guarded-field (not from fork-safety or lock-order).
_LIFECYCLE_METHODS = frozenset({"__init__", "__enter__", "start"})

_MP_FORK_ATTRS = frozenset({"Process", "Pool"})


@dataclass
class _Access:
    field: str
    kind: str           # "read" | "write"
    method: str
    held: frozenset     # lock attr names held at the access
    line: int


@dataclass
class _Acquire:
    lock: str           # lock attr name being acquired
    held: frozenset     # lock attr names already held
    method: str
    line: int


@dataclass
class _CallSite:
    target_attr: str    # None for self.m(), else the attribute name
    method: str
    caller: str
    held: frozenset
    line: int


@dataclass
class _Fork:
    desc: str
    held: frozenset
    method: str
    line: int


@dataclass
class _ClassModel:
    name: str
    path: str
    line: int
    locks: dict = field(default_factory=dict)       # attr -> (kind, line)
    attr_types: dict = field(default_factory=dict)  # attr -> class name
    methods: set = field(default_factory=set)
    acquires: list = field(default_factory=list)    # [_Acquire]
    accesses: list = field(default_factory=list)    # [_Access]
    calls: list = field(default_factory=list)       # [_CallSite]
    forks: list = field(default_factory=list)       # [_Fork]


# ----------------------------------------------------------------------
# Per-file extraction
# ----------------------------------------------------------------------
class _ModuleImports:
    """Names a module binds to threading/sanitizer/multiprocessing."""

    def __init__(self, tree):
        self.threading = {"threading"}
        self.sanitizer = {"sanitizer"}
        self.mp = {"multiprocessing"}
        self.lock_ctor_names = {}   # bare name -> kind
        self.fork_names = set()     # bare names that construct processes
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    base = alias.name.split(".")[0]
                    bound = alias.asname or alias.name
                    if base == "threading":
                        self.threading.add(bound)
                    elif base == "multiprocessing":
                        self.mp.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module.split(".")[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "threading":
                        kind = _LOCK_CTORS.get(("threading", alias.name))
                        if kind:
                            self.lock_ctor_names[bound] = kind
                    elif node.module.endswith("sanitizer"):
                        kind = _LOCK_CTORS.get(("sanitizer", alias.name))
                        if kind:
                            self.lock_ctor_names[bound] = kind
                    elif alias.name == "sanitizer":
                        self.sanitizer.add(bound)
                    if base == "multiprocessing" and alias.name in \
                            _MP_FORK_ATTRS:
                        self.fork_names.add(bound)

    def lock_kind(self, call):
        """Reentrancy kind if ``call`` constructs a lock, else None."""
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            if func.value.id in self.threading:
                return _LOCK_CTORS.get(("threading", func.attr))
            if func.value.id in self.sanitizer:
                return _LOCK_CTORS.get(("sanitizer", func.attr))
        elif isinstance(func, ast.Name):
            return self.lock_ctor_names.get(func.id)
        return None


def _self_attr(node):
    """``'x'`` when ``node`` is the expression ``self.x``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _MethodExtractor:
    """Walk one method body tracking the ``with self.lock:`` held set."""

    def __init__(self, model, imports, method_name):
        self.model = model
        self.imports = imports
        self.method = method_name
        # Locals bound to multiprocessing contexts within this method
        # (``ctx = multiprocessing.get_context("fork")``).
        self._mp_locals = set()

    # -- helpers -------------------------------------------------------
    def _is_fork_call(self, call):
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            if func.value.id == "os" and func.attr == "fork":
                return "os.fork()"
            if (func.attr in _MP_FORK_ATTRS
                    and (func.value.id in self.imports.mp
                         or func.value.id in self._mp_locals)):
                return f"{func.value.id}.{func.attr}(...)"
        elif isinstance(func, ast.Name) and func.id in self.imports.fork_names:
            return f"{func.id}(...)"
        return None

    def _note_mp_local(self, stmt):
        if not isinstance(stmt, ast.Assign):
            return
        value = stmt.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "get_context"
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id in self.imports.mp):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._mp_locals.add(target.id)

    # -- statement walk ------------------------------------------------
    def walk(self, stmts, held):
        for stmt in stmts:
            self._note_mp_local(stmt)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in self.model.locks:
                        self.model.acquires.append(_Acquire(
                            lock=attr, held=frozenset(inner),
                            method=self.method,
                            line=item.context_expr.lineno))
                        inner.add(attr)
                    else:
                        self._scan_expr(item.context_expr, frozenset(held))
                self.walk(stmt.body, frozenset(inner))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later, possibly on another thread:
                # the current held set is meaningless for its body, so
                # we neither assume it nor analyze the body (keep
                # thread targets as methods, not closures).
                continue
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, held)
                self._scan_expr(stmt.target, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, ast.Try):
                self.walk(stmt.body, held)
                for handler in stmt.handlers:
                    self.walk(handler.body, held)
                self.walk(stmt.orelse, held)
                self.walk(stmt.finalbody, held)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_expr(child, held)

    # -- expression scan -----------------------------------------------
    def _scan_expr(self, node, held):
        held = frozenset(held)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, held)
            elif isinstance(sub, ast.Attribute):
                self._maybe_access(sub, held)
            elif isinstance(sub, (ast.Lambda,)):
                # Same reasoning as nested defs: runs later.
                pass

    def _scan_call(self, call, held):
        desc = self._is_fork_call(call)
        if desc is not None:
            self.model.forks.append(_Fork(
                desc=desc, held=held, method=self.method, line=call.lineno))
        func = call.func
        attr = _self_attr(func)
        if attr is not None:
            # self.m(...): an intra-class call, not a field access —
            # unless the name is not a method (a stored callable).
            if attr in self.model.methods:
                self.model.calls.append(_CallSite(
                    target_attr=None, method=attr, caller=self.method,
                    held=held, line=call.lineno))
            return
        if (isinstance(func, ast.Attribute)
                and _self_attr(func.value) is not None):
            base = _self_attr(func.value)
            self.model.calls.append(_CallSite(
                target_attr=base, method=func.attr, caller=self.method,
                held=held, line=call.lineno))

    def _maybe_access(self, node, held):
        attr = _self_attr(node)
        if attr is None or attr in self.model.locks:
            return
        kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) \
            else "read"
        self.model.accesses.append(_Access(
            field=attr, kind=kind, method=self.method, held=held,
            line=node.lineno))


def _extract_classes(tree, rel_path, imports):
    models = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        model = _ClassModel(name=node.name, path=rel_path, line=node.lineno)
        methods = [n for n in node.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        model.methods = {m.name for m in methods}
        # Pass A: lock attributes and attribute types from assignments
        # anywhere in the class — ``self.x = threading.Lock()``,
        # ``self.x = SomeClass(...)``, or ``self.x = param`` where the
        # parameter carries a class annotation.
        for method in methods:
            annotations = {}
            for arg in (method.args.posonlyargs + method.args.args
                        + method.args.kwonlyargs):
                note = arg.annotation
                if isinstance(note, ast.Name):
                    annotations[arg.arg] = note.id
                elif (isinstance(note, ast.Constant)
                        and isinstance(note.value, str)):
                    annotations[arg.arg] = note.value
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if (isinstance(sub.value, ast.Name)
                            and sub.value.id in annotations):
                        model.attr_types.setdefault(
                            attr, annotations[sub.value.id])
                        continue
                    if not isinstance(sub.value, ast.Call):
                        continue
                    kind = imports.lock_kind(sub.value)
                    if kind is not None:
                        model.locks.setdefault(attr, (kind, sub.lineno))
                        continue
                    func = sub.value.func
                    cls_name = None
                    if isinstance(func, ast.Name):
                        cls_name = func.id
                    elif isinstance(func, ast.Attribute):
                        cls_name = func.attr
                    if cls_name and cls_name[:1].isupper():
                        model.attr_types.setdefault(attr, cls_name)
        # Pass B: held-set tracking through every method body.
        for method in methods:
            extractor = _MethodExtractor(model, imports, method.name)
            extractor.walk(method.body, frozenset())
        models.append(model)
    return models


# ----------------------------------------------------------------------
# Whole-program analysis
# ----------------------------------------------------------------------
class _Program:
    def __init__(self, models, sources, config):
        self.models = models
        self.sources = sources          # rel_path -> source lines
        self.config = config
        self.by_name = {}
        for model in models:
            self.by_name.setdefault(model.name, model)
        # (class, private method) -> [call sites from within the class]
        self.intra_calls = {}
        for model in models:
            for call in model.calls:
                if call.target_attr is None:
                    key = (model.name, call.method)
                    self.intra_calls.setdefault(key, []).append(call)
        self._closure_memo = {}
        self._context_memo = {}
        self.findings = []
        self.edges = {}                 # (qa, qb) -> witness dict

    # -- plumbing ------------------------------------------------------
    def qual(self, model, lock_attr):
        return f"{model.name}.{lock_attr}"

    def lock_kind(self, qname):
        cls_name, _, attr = qname.partition(".")
        model = self.by_name.get(cls_name)
        if model is None:
            return "lock"
        return model.locks.get(attr, ("lock", 0))[0]

    def _suppressed(self, rel_path, line, rule):
        lines = self.sources.get(rel_path, ())
        if 1 <= line <= len(lines):
            return f"lint: ignore[{rule}]" in lines[line - 1]
        return False

    def _emit(self, rule, rel_path, line, message):
        if not self.config.rule_applies(rule, rel_path):
            return
        if self._suppressed(rel_path, line, rule):
            return
        self.findings.append(LintFinding(
            rule=rule, path=rel_path, line=line, message=message))

    def _resolve_callee(self, model, call):
        if call.target_attr is None:
            return model if call.method in model.methods else None
        cls_name = model.attr_types.get(call.target_attr)
        if cls_name is None:
            return None
        callee = self.by_name.get(cls_name)
        if callee is not None and call.method in callee.methods:
            return callee
        return None

    # -- interprocedural closures --------------------------------------
    def closure(self, model, method, _stack=frozenset()):
        """Locks acquired and forks performed by ``method`` or callees.

        Returns ``(acquired, forks)`` where ``acquired`` maps the
        qualified lock name to a witness string and ``forks`` is a
        list of ``(desc, path, line)``.
        """
        key = (model.name, method)
        if key in self._closure_memo:
            return self._closure_memo[key]
        if key in _stack:
            return {}, []
        acquired, forks = {}, []
        for acq in model.acquires:
            if acq.method != method:
                continue
            acquired.setdefault(
                self.qual(model, acq.lock),
                f"{model.path}:{acq.line} ({model.name}.{method})")
        for fork in model.forks:
            if fork.method == method:
                forks.append((fork.desc, model.path, fork.line))
        for call in model.calls:
            if call.caller != method:
                continue
            callee = self._resolve_callee(model, call)
            if callee is None:
                continue
            sub_acq, sub_forks = self.closure(
                callee, call.method, _stack | {key})
            for qname, witness in sub_acq.items():
                acquired.setdefault(
                    qname,
                    f"{model.path}:{call.line} ({model.name}.{method} -> "
                    f"{witness})")
            for desc, fpath, fline in sub_forks:
                forks.append((
                    f"{desc} via {callee.name}.{call.method}()",
                    model.path, call.line))
        self._closure_memo[key] = (acquired, forks)
        return acquired, forks

    def context(self, model, method, _stack=frozenset()):
        """Locks a private method can assume held at entry.

        The intersection of the effective held sets at every
        non-lifecycle intra-class call site; public methods and
        dunders assume nothing.
        """
        if not method.startswith("_") or method.startswith("__"):
            return frozenset()
        key = (model.name, method)
        if key in self._context_memo:
            return self._context_memo[key]
        if key in _stack:
            return frozenset()
        sites = [c for c in self.intra_calls.get(key, ())
                 if c.caller not in _LIFECYCLE_METHODS
                 and c.caller != method]
        parts = []
        for site in sites:
            held = frozenset(self.qual(model, h) for h in site.held)
            parts.append(held | self.context(model, site.caller,
                                             _stack | {key}))
        result = frozenset.intersection(*parts) if parts else frozenset()
        self._context_memo[key] = result
        return result

    def effective_held(self, model, method, held):
        return (frozenset(self.qual(model, h) for h in held)
                | self.context(model, method))

    # -- rule: lock-order ----------------------------------------------
    def build_edges(self):
        for model in self.models:
            for acq in model.acquires:
                target = self.qual(model, acq.lock)
                held = self.effective_held(model, acq.method, acq.held)
                for qheld in held:
                    self._add_edge(
                        qheld, target,
                        f"{model.path}:{acq.line} ({model.name}.{acq.method} "
                        f"acquires {target} while holding {qheld})",
                        model.path, acq.line)
            for call in model.calls:
                held = self.effective_held(model, call.caller, call.held)
                if not held:
                    continue
                callee = self._resolve_callee(model, call)
                if callee is None:
                    continue
                acquired, _ = self.closure(callee, call.method)
                for qname, witness in acquired.items():
                    for qheld in held:
                        self._add_edge(
                            qheld, qname,
                            f"{model.path}:{call.line} "
                            f"({model.name}.{call.caller} holds {qheld} "
                            f"and calls {witness})",
                            model.path, call.line)

    def _add_edge(self, qa, qb, witness, path, line):
        if qa == qb:
            if self.lock_kind(qa) != "rlock":
                self._emit(
                    "lock-order", path, line,
                    f"self-deadlock: non-reentrant lock '{qa}' acquired "
                    f"while already held — {witness}")
            return
        self.edges.setdefault(
            (qa, qb), {"witness": witness, "path": path, "line": line})

    def report_cycles(self):
        # Tarjan SCC over the lock-order digraph; every SCC with more
        # than one node contains at least one cycle.
        graph = {}
        for (qa, qb) in self.edges:
            graph.setdefault(qa, set()).add(qb)
            graph.setdefault(qb, set())
        index, low, on_stack, stack = {}, {}, set(), []
        sccs, counter = [], [0]

        def strongconnect(node):
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in graph[node]:
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        for component in sccs:
            if len(component) < 2:
                continue
            members = set(component)
            cycle_edges = [
                (qa, qb, info) for (qa, qb), info in sorted(
                    self.edges.items())
                if qa in members and qb in members]
            paths = "; ".join(
                f"{qa} -> {qb} [{info['witness']}]"
                for qa, qb, info in cycle_edges)
            anchor = cycle_edges[0][2]
            self._emit(
                "lock-order", anchor["path"], anchor["line"],
                "potential deadlock: lock-acquisition cycle through "
                f"{{{', '.join(sorted(members))}}}: {paths} — two threads "
                "entering these paths concurrently can each hold the lock "
                "the other needs")

    # -- rule: guarded-field -------------------------------------------
    def check_guarded_fields(self):
        for model in self.models:
            if not model.locks:
                continue
            fields = {}
            for access in model.accesses:
                fields.setdefault(access.field, []).append(access)
            for fname in sorted(fields):
                if self.config.guard_map.get(
                        f"{model.name}.{fname}") == "lock-free":
                    continue
                accesses = [a for a in fields[fname]
                            if a.method not in _LIFECYCLE_METHODS]
                writes = [a for a in accesses if a.kind == "write"]
                if not writes:
                    continue
                eff = {id(a): self.effective_held(model, a.method, a.held)
                       for a in accesses}
                guard, guard_score = None, -1
                for lock_attr in model.locks:
                    qlock = self.qual(model, lock_attr)
                    locked = sum(qlock in eff[id(a)] for a in accesses)
                    locked_writes = sum(qlock in eff[id(w)] for w in writes)
                    # Evidence that qlock guards the field: at least one
                    # deliberate locked write, or repeated locked
                    # accesses.  A single incidental locked read is not
                    # enough to infer a guard.
                    if locked_writes >= 1 or locked >= 2:
                        if locked > guard_score:
                            guard, guard_score = qlock, locked
                if guard is None:
                    continue
                for access in accesses:
                    if guard in eff[id(access)]:
                        continue
                    self._emit(
                        "guarded-field", model.path, access.line,
                        f"field '{model.name}.{fname}' is guarded by "
                        f"'{guard}' but this {access.kind} in "
                        f"{model.name}.{access.method}() does not hold it; "
                        "take the lock, or declare the lock-free fast "
                        "path in [tool.repro.lint.guard-map] "
                        f'("{model.name}.{fname}" = "lock-free") or with '
                        "# lint: ignore[guarded-field]")

    # -- rule: fork-safety ---------------------------------------------
    def check_fork_safety(self):
        for model in self.models:
            for fork in model.forks:
                held = self.effective_held(model, fork.method, fork.held)
                if held:
                    self._emit(
                        "fork-safety", model.path, fork.line,
                        f"{fork.desc} in {model.name}.{fork.method}() "
                        f"while holding {sorted(held)}: the forked child "
                        "inherits the locked mutex with no owner thread "
                        "to release it — first child acquisition "
                        "deadlocks")
            for call in model.calls:
                held = self.effective_held(model, call.caller, call.held)
                if not held:
                    continue
                callee = self._resolve_callee(model, call)
                if callee is None:
                    continue
                _, forks = self.closure(callee, call.method)
                for desc, _fpath, _fline in forks:
                    self._emit(
                        "fork-safety", model.path, call.line,
                        f"call to {callee.name}.{call.method}() while "
                        f"holding {sorted(held)} reaches {desc}: the "
                        "forked child inherits the locked mutex with no "
                        "owner thread to release it")

    def run(self):
        self.build_edges()
        self.report_cycles()
        self.check_guarded_fields()
        self.check_fork_safety()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
@dataclass
class ConcurrencyReport:
    """Outcome of one whole-program concurrency check."""

    findings: list
    files_checked: int
    classes: int
    locks: int
    order_edges: int

    @property
    def ok(self):
        return not self.findings

    def to_dict(self):
        return {"ok": self.ok, "files_checked": self.files_checked,
                "classes": self.classes, "locks": self.locks,
                "order_edges": self.order_edges,
                "findings": [f.to_dict() for f in self.findings]}

    def format_text(self):
        lines = [str(f) for f in self.findings]
        lines.append(
            f"check-concurrency: {self.files_checked} files, "
            f"{self.classes} classes, {self.locks} locks, "
            f"{self.order_edges} order edge(s), "
            f"{len(self.findings)} finding(s)")
        return "\n".join(lines)


def check_concurrency(paths=None, root=".", config=None):
    """Run the lock-discipline pass; returns a ConcurrencyReport.

    ``paths`` defaults to the configured ``concurrency-paths``
    (relative to ``root``); non-existent defaults are skipped so the
    checker works on partial trees.
    """
    config = config if config is not None else load_config(root)
    root_path = Path(root).resolve()
    if paths is None:
        paths = [root_path / p for p in config.concurrency_paths]
        paths = [p for p in paths if p.exists()]
    files = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
    models, sources = [], {}
    for path in files:
        resolved = Path(path).resolve()
        try:
            rel_path = str(resolved.relative_to(root_path))
        except ValueError:
            rel_path = str(resolved)
        source = Path(path).read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report = ConcurrencyReport(
                findings=[LintFinding(rule="parse-error", path=rel_path,
                                      line=exc.lineno or 0,
                                      message=str(exc.msg))],
                files_checked=len(files), classes=0, locks=0, order_edges=0)
            return report
        sources[rel_path] = source.splitlines()
        imports = _ModuleImports(tree)
        models.extend(_extract_classes(tree, rel_path, imports))
    program = _Program(models, sources, config)
    findings = program.run()
    return ConcurrencyReport(
        findings=findings,
        files_checked=len(files),
        classes=len(models),
        locks=sum(len(m.locks) for m in models),
        order_edges=len(program.edges),
    )
