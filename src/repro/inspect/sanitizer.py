"""Runtime concurrency sanitizer: instrumented locks, threads, and forks.

The serving and parallel-training stack is held together by a small
set of disciplines — consistent lock acquisition order, fields touched
only under their guarding lock, no fork while a lock is held, every
thread joined with a bound.  :mod:`repro.inspect.concurrency` proves
what it can statically; this module checks the *dynamic* side on real
executions of the test suites:

* **lock-order inversions** — the sanitizer records the dynamic
  acquisition graph (``A`` held while ``B`` is acquired); observing
  both ``A -> B`` and ``B -> A`` on any pair of lock *objects* is a
  potential deadlock even if this run happened not to hang.
* **fork while holding a lock** — a ``fork()`` while the calling
  thread holds any sanitized lock duplicates a locked mutex into the
  child, where it can never be released (the owning thread does not
  exist there).  Detected through :func:`os.register_at_fork`.
* **fork while a sanitized non-daemon thread is alive** — the thread
  does not survive the fork but any lock or buffer it owned does.
* **unjoined threads at shutdown** — a sanitized thread still alive
  when the session finalizes.
* **long holds** — a lock held longer than ``hold_warn_s`` (a serving
  lock held across a blocking call is a latency cliff).

Production code never pays for this: the ``create_*`` factories return
the *bare* :mod:`threading` primitives unless a sanitizer session is
active, so the disabled hot path is byte-for-byte the stock lock.  A
session is activated either explicitly::

    with sanitizer.enabled(stress=True, seed=0) as session:
        ...  # construct and exercise the system under test
    assert not session.findings

or for a whole process with ``REPRO_TSAN=1`` (CI runs the serve /
parallel / stream suites this way; ``tests/conftest.py`` fails the
session on findings).  ``REPRO_TSAN_STRESS=1`` additionally enables
**schedule perturbation**: a seeded per-thread random sleep before
every acquisition, which drives the scheduler toward the interleavings
that hand-written tests never hit.  Findings use the same
``rule/path/line/message`` shape as ``repro lint`` (see
``docs/static_analysis.md``).
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SanitizerFinding", "SanitizerSession", "enabled", "active_session",
    "ensure_env_session", "create_lock", "create_rlock",
    "create_condition", "create_thread", "join_thread",
]

_ENV_ENABLE = "REPRO_TSAN"
_ENV_STRESS = "REPRO_TSAN_STRESS"
_ENV_SEED = "REPRO_TSAN_SEED"
_ENV_HOLD = "REPRO_TSAN_HOLD_S"

#: The active session, or None.  Written only from enabled()/
#: ensure_env_session() on the orchestrating thread; instrumented
#: primitives read it once per operation.
_SESSION = None
_SESSION_GUARD = threading.Lock()
_FORK_HOOK_INSTALLED = False


@dataclass
class SanitizerFinding:
    """One dynamic concurrency violation, in the ``repro lint`` shape."""

    rule: str
    path: str
    line: int
    message: str
    thread: str = ""

    def to_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "thread": self.thread}

    def __str__(self):
        return (f"{self.path}:{self.line}: {self.rule}: {self.message} "
                f"[thread {self.thread}]")


def _call_site():
    """``(path, line)`` of the nearest caller outside this module."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter internals only
        return "<unknown>", 0
    return frame.f_code.co_filename, frame.f_lineno


class SanitizerSession:
    """State of one sanitizer run: held-lock stacks, order graph, findings."""

    def __init__(self, stress=False, seed=0, hold_warn_s=5.0,
                 max_sleep_ms=2.0):
        self.stress = bool(stress)
        self.seed = int(seed)
        self.hold_warn_s = float(hold_warn_s)
        self.max_sleep_s = float(max_sleep_ms) / 1e3
        self.findings = []
        self._meta = threading.Lock()   # guards findings/_edges/_threads
        self._edges = {}                # (serial_a, serial_b) -> witness
        self._threads = []              # (weakref, name, daemon, site)
        self._local = threading.local()
        self._serials = iter(range(1, 1 << 62)).__next__
        self.locks_created = 0
        self.acquisitions = 0

    # -- per-thread held stack -----------------------------------------
    def _held(self):
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = self._local.held = []
        return stack

    def _rng(self):
        rng = getattr(self._local, "rng", None)
        if rng is None:
            name = threading.current_thread().name
            rng = self._local.rng = random.Random(
                self.seed ^ zlib.crc32(name.encode()))
        return rng

    def _record(self, rule, message, path="<runtime>", line=0):
        finding = SanitizerFinding(
            rule=rule, path=path, line=line, message=message,
            thread=threading.current_thread().name)
        with self._meta:
            self.findings.append(finding)
        return finding

    # -- lock protocol hooks (called by the San* wrappers) -------------
    def before_acquire(self, lock):
        if self.stress and self.max_sleep_s > 0:
            time.sleep(self._rng().random() * self.max_sleep_s)

    def after_acquire(self, lock):
        path, line = _call_site()
        site = f"{path}:{line}"
        held = self._held()
        thread = threading.current_thread().name
        with self._meta:
            self.acquisitions += 1
            for entry in held:
                edge = (entry["serial"], lock.serial)
                if edge not in self._edges:
                    self._edges[edge] = (thread, entry["site"], site,
                                         entry["name"], lock.name)
                reverse = self._edges.get((lock.serial, entry["serial"]))
                if reverse is not None:
                    r_thread, r_first, r_second, _, _ = reverse
                    self.findings.append(SanitizerFinding(
                        rule="lock-order", path=path, line=line,
                        thread=thread,
                        message=(
                            f"lock-order inversion: '{entry['name']}' then "
                            f"'{lock.name}' here ({entry['site']} -> {site}) "
                            f"but '{lock.name}' then '{entry['name']}' on "
                            f"thread {r_thread} ({r_first} -> {r_second}); "
                            "two threads taking these paths concurrently "
                            "deadlock")))
        held.append({"serial": lock.serial, "name": lock.name,
                     "site": site, "t0": time.perf_counter()})

    def after_release(self, lock):
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index]["serial"] == lock.serial:
                entry = held.pop(index)
                duration = time.perf_counter() - entry["t0"]
                if duration > self.hold_warn_s:
                    path, line = _call_site()
                    self._record(
                        "long-hold",
                        f"lock '{lock.name}' held for {duration:.2f}s "
                        f"(warn threshold {self.hold_warn_s:.2f}s); a lock "
                        "held across blocking work stalls every waiter",
                        path=path, line=line)
                return
        # Release without a matching acquire in this session (e.g. lock
        # handed across threads): not a discipline we model — ignore.

    # -- thread / fork hooks -------------------------------------------
    def register_thread(self, thread, site):
        with self._meta:
            self._threads.append((weakref.ref(thread), thread.name,
                                  bool(thread.daemon), site))

    def on_fork(self):
        held = self._held()
        if held:
            names = ", ".join(f"'{e['name']}' (acquired {e['site']})"
                              for e in held)
            path, line = _call_site()
            self._record(
                "fork-safety",
                f"fork while holding {names}: the child inherits the "
                "locked mutex with no owning thread to ever release it",
                path=path, line=line)
        with self._meta:
            live = [(name, site) for ref, name, daemon, site in self._threads
                    if not daemon and ref() is not None
                    and ref().is_alive()]
        for name, site in live:
            self._record(
                "fork-safety",
                f"fork while non-daemon thread '{name}' (started {site}) "
                "is alive: the thread does not exist in the child but "
                "every lock or buffer it owned does")

    def finalize(self):
        """End-of-session checks; returns the accumulated findings."""
        with self._meta:
            leftovers = [(name, site)
                         for ref, name, _daemon, site in self._threads
                         if ref() is not None and ref().is_alive()]
        for name, site in leftovers:
            self._record(
                "unjoined-thread",
                f"thread '{name}' (started {site}) still alive at "
                "sanitizer shutdown; join every worker with a bounded "
                "timeout so a hung thread cannot outlive its owner")
        return list(self.findings)

    # -- reporting -----------------------------------------------------
    def report(self):
        """JSON-able summary in the ``repro lint`` report shape."""
        return {
            "ok": not self.findings,
            "stress": self.stress,
            "seed": self.seed,
            "locks": self.locks_created,
            "acquisitions": self.acquisitions,
            "order_edges": len(self._edges),
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_text(self):
        lines = [str(f) for f in self.findings]
        lines.append(
            f"sanitizer: {self.locks_created} lock(s), "
            f"{self.acquisitions} acquisition(s), "
            f"{len(self._edges)} order edge(s), "
            f"{len(self.findings)} finding(s)")
        return "\n".join(lines)


class _SanLockBase:
    """Shared protocol of the instrumented lock wrappers.

    The wrapper reports to whatever session is active *at use time*, so
    a lock created in one ``enabled()`` block and exercised in a later
    one is still tracked.  With no active session every method is a
    plain delegation.
    """

    _KIND = "lock"

    def __init__(self, name=None):
        self._lock = self._make_inner()
        session = _SESSION
        self.serial = session._serials() if session else 0
        if session is not None:
            session.locks_created += 1
        path, line = _call_site()
        self.name = name or f"{self._KIND}@{os.path.basename(path)}:{line}"

    def _make_inner(self):
        return threading.Lock()

    def acquire(self, blocking=True, timeout=-1):
        session = _SESSION
        if session is not None and blocking:
            session.before_acquire(self)
        got = self._lock.acquire(blocking, timeout)
        if got and session is not None:
            session.after_acquire(self)
        return got

    def release(self):
        session = _SESSION
        self._lock.release()
        if session is not None:
            session.after_release(self)

    def locked(self):
        return self._lock.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def __repr__(self):
        return f"<Sanitized{self._KIND.capitalize()} {self.name!r}>"


class SanLock(_SanLockBase):
    _KIND = "lock"


class SanRLock(_SanLockBase):
    _KIND = "rlock"

    def __init__(self, name=None):
        super().__init__(name)
        self._depth_local = threading.local()

    def _make_inner(self):
        return threading.RLock()

    def acquire(self, blocking=True, timeout=-1):
        depth = getattr(self._depth_local, "depth", 0)
        session = _SESSION
        if session is not None and blocking and depth == 0:
            session.before_acquire(self)
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._depth_local.depth = depth + 1
            # Only the outermost acquire is an ordering event; the
            # whole point of an RLock is that re-entry cannot deadlock.
            if session is not None and depth == 0:
                session.after_acquire(self)
        return got

    def release(self):
        depth = getattr(self._depth_local, "depth", 1)
        self._lock.release()
        self._depth_local.depth = depth - 1
        session = _SESSION
        if session is not None and depth == 1:
            session.after_release(self)

    def _is_owned(self):
        return self._lock._is_owned()


def create_lock(name=None):
    """A mutex: sanitized when a session is active, else a bare Lock."""
    if _SESSION is None:
        return threading.Lock()
    return SanLock(name)


def create_rlock(name=None):
    """A reentrant mutex: sanitized when a session is active."""
    if _SESSION is None:
        return threading.RLock()
    return SanRLock(name)


def create_condition(name=None, lock=None):
    """A condition variable over a (sanitized) lock.

    ``wait()`` releases and reacquires through the wrapper, so the
    held-lock bookkeeping stays correct across the wait.
    """
    if _SESSION is None:
        return threading.Condition(lock)
    return threading.Condition(lock if lock is not None else SanLock(name))


def create_thread(*, target, name, daemon, args=()):
    """A :class:`threading.Thread` registered with the active session.

    ``daemon`` is mandatory by signature — the ``thread-discipline``
    lint rule enforces the same at call sites using the bare API — and
    sanitized sessions flag any registered thread still alive at
    :meth:`SanitizerSession.finalize`.
    """
    thread = threading.Thread(target=target, name=name, daemon=daemon,
                              args=args)
    session = _SESSION
    if session is not None:
        path, line = _call_site()
        session.register_thread(thread, f"{path}:{line}")
    return thread


def join_thread(thread, timeout, what=None):
    """Bounded join with a reported error on timeout; True when joined.

    The caller decides whether a stuck thread is fatal; this helper
    guarantees the hang is *visible* — as a sanitizer finding when a
    session is active, and always on stderr — instead of CI silently
    waiting forever on an unbounded ``join()``.
    """
    thread.join(timeout)
    if not thread.is_alive():
        return True
    label = what or f"thread '{thread.name}'"
    message = (f"{label} did not stop within {timeout:.1f}s; "
               "continuing shutdown without it")
    session = _SESSION
    if session is not None:
        path, line = _call_site()
        session._record("unjoined-thread", message, path=path, line=line)
    print(f"warning: {message}", file=sys.stderr)
    return False


# ----------------------------------------------------------------------
# Session management
# ----------------------------------------------------------------------
def _install_fork_hook():
    global _FORK_HOOK_INSTALLED
    with _SESSION_GUARD:
        if _FORK_HOOK_INSTALLED:
            return
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(before=_before_fork)
        _FORK_HOOK_INSTALLED = True


def _before_fork():
    session = _SESSION
    if session is not None:
        session.on_fork()


def active_session():
    """The active :class:`SanitizerSession`, or ``None``."""
    return _SESSION


@contextmanager
def enabled(stress=False, seed=0, hold_warn_s=5.0, max_sleep_ms=2.0):
    """Activate the sanitizer for the dynamic extent of the block.

    Locks and threads must be *created* through the ``create_*``
    factories inside the block (or under ``REPRO_TSAN``) to be
    tracked; primitives created while disabled are bare stdlib objects
    and stay invisible.  Yields the session so the caller can assert
    on ``session.findings`` after :meth:`~SanitizerSession.finalize`
    runs at exit.
    """
    global _SESSION
    _install_fork_hook()
    with _SESSION_GUARD:
        if _SESSION is not None:
            raise RuntimeError("a sanitizer session is already active")
        session = SanitizerSession(stress=stress, seed=seed,
                                   hold_warn_s=hold_warn_s,
                                   max_sleep_ms=max_sleep_ms)
        _SESSION = session
    try:
        yield session
    finally:
        session.finalize()
        with _SESSION_GUARD:
            _SESSION = None


def ensure_env_session():
    """Activate a process-wide session from ``REPRO_TSAN`` env config.

    Idempotent; returns the session (or ``None`` when the env flag is
    unset).  Used by ``tests/conftest.py`` so a plain ``REPRO_TSAN=1
    pytest tests/serve`` run sanitizes every suite it executes and
    fails on findings at session teardown.
    """
    global _SESSION
    if not os.environ.get(_ENV_ENABLE):
        return None
    with _SESSION_GUARD:
        if _SESSION is None:
            _SESSION = SanitizerSession(
                stress=bool(os.environ.get(_ENV_STRESS)),
                seed=int(os.environ.get(_ENV_SEED, "0")),
                hold_warn_s=float(os.environ.get(_ENV_HOLD, "5.0")))
        session = _SESSION
    _install_fork_hook()
    return session


# Auto-enable under the environment flag so any entry point (pytest,
# the CLI, a benchmark) picks up instrumentation without code changes.
if os.environ.get(_ENV_ENABLE):  # pragma: no cover - env-dependent
    ensure_env_session()
