"""The 11 comparison methods of the paper's Table II.

All baselines are re-implemented (simplified but mechanism-faithful) on
the library's own substrate and follow the Trainer protocol, so any of
them can be swapped into an experiment via :func:`make_baseline`.
"""

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.baselines.rnn import RNNBaseline
from repro.baselines.seq2seq import Seq2SeqBaseline
from repro.baselines.astgcn import ASTGCNBaseline
from repro.baselines.convgcn import ConvGCNBaseline
from repro.baselines.gman import GMANBaseline
from repro.baselines.stgnn import STGNNBaseline
from repro.baselines.dmstgcn import DMSTGCNBaseline
from repro.baselines.stnorm import STNormBaseline
from repro.baselines.stgsp import STGSPBaseline
from repro.baselines.deepstn import DeepSTNBaseline
from repro.baselines.stssl import STSSLBaseline
from repro.baselines.naive import HistoricalAverageForecaster, PersistenceForecaster

_REGISTRY = {
    "RNN": RNNBaseline,
    "Seq2Seq": Seq2SeqBaseline,
    "ASTGCN": ASTGCNBaseline,
    "CONVGCN": ConvGCNBaseline,
    "GMAN": GMANBaseline,
    "STGNN": STGNNBaseline,
    "DMSTGCN": DMSTGCNBaseline,
    "ST-Norm": STNormBaseline,
    "STGSP": STGSPBaseline,
    "DeepSTN+": DeepSTNBaseline,
    "ST-SSL": STSSLBaseline,
}

BASELINE_NAMES = tuple(_REGISTRY)


def make_baseline(name, config: BaselineConfig):
    """Instantiate a baseline by its paper name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(f"unknown baseline {name!r}; choose from {BASELINE_NAMES}")
    return cls(config)


__all__ = [
    "BaselineConfig", "BaselineForecaster", "BASELINE_NAMES", "make_baseline",
    "RNNBaseline", "Seq2SeqBaseline", "ASTGCNBaseline", "ConvGCNBaseline",
    "GMANBaseline", "STGNNBaseline", "DMSTGCNBaseline", "STNormBaseline",
    "STGSPBaseline", "DeepSTNBaseline", "STSSLBaseline",
    "PersistenceForecaster", "HistoricalAverageForecaster",
]
