"""Seq2Seq baseline (LibCity-style GRU encoder-decoder).

A GRU encodes the flattened frame sequence; a one-step GRU decoder
(primed with the last observed frame) emits the forecast.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import GRUCell, Linear
from repro.tensor import tanh

__all__ = ["Seq2SeqBaseline"]


class Seq2SeqBaseline(BaselineForecaster):
    """GRU encoder-decoder over flattened frames."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        self.input_proj = Linear(config.frame_features, hidden, rng=rng)
        self.encoder = GRUCell(hidden, hidden, rng=rng)
        self.decoder = GRUCell(hidden, hidden, rng=rng)
        self.head = Linear(hidden, config.frame_features, rng=rng)

    def forward(self, closeness, period, trend):
        frames = self._frames_flat((closeness, period, trend))
        batch, length = frames.shape[0], frames.shape[1]
        h = self.encoder.initial_state(batch, dtype=frames.dtype)
        last_embedded = None
        for t in range(length):
            embedded = self.input_proj(frames[:, t, :]).relu()
            h = self.encoder(embedded, h)
            last_embedded = embedded
        h = self.decoder(last_embedded, h)
        out = tanh(self.head(h))
        cfg = self.config
        return out.reshape((batch, cfg.flow_channels, cfg.height, cfg.width))
