"""CONVGCN baseline (Zhang et al., IET ITS 2020), simplified.

Combines a graph-convolution branch over region features with a
convolutional branch over stacked frames — the method's short-term +
long-term spatial fusion.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Conv2d, GraphConv, Linear, grid_adjacency, normalize_adjacency
from repro.tensor import relu, tanh

__all__ = ["ConvGCNBaseline"]


class ConvGCNBaseline(BaselineForecaster):
    """Graph conv + grid conv fusion."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        adjacency = normalize_adjacency(grid_adjacency(config.height, config.width))
        in_features = config.total_length * config.flow_channels
        self.gcn1 = GraphConv(in_features, hidden, adjacency, rng=rng)
        self.gcn2 = GraphConv(hidden, hidden, adjacency, rng=rng)
        self.gcn_head = Linear(hidden, config.flow_channels, rng=rng)
        self.conv1 = Conv2d(in_features, hidden, 3, padding="same", rng=rng)
        self.conv2 = Conv2d(hidden, config.flow_channels, 3, padding="same", rng=rng)

    def forward(self, closeness, period, trend):
        triplet = (closeness, period, trend)
        # Graph branch: (N, M, L*2) node features.
        nodes = self._frames_nodes(triplet)  # (N, L, M, 2)
        n, length, m, _c = nodes.shape
        node_features = nodes.swapaxes(1, 2).reshape((n, m, -1))
        graph_out = self.gcn_head(relu(self.gcn2(relu(self.gcn1(node_features)))))
        graph_grid = self._to_grid(graph_out)
        # Conv branch: (N, L*2, H, W).
        conv_out = self.conv2(relu(self.conv1(self._stacked_channels(triplet))))
        return tanh(graph_grid + conv_out)
