"""Naive reference forecasters.

Not part of the paper's Table II, but standard sanity references for
any forecasting claim: a trained model that cannot beat persistence or
the historical time-of-day average has learned nothing.  Both follow a
fit/predict protocol over :class:`~repro.data.windows.SampleBatch`es
(they have no trainable parameters, so the gradient Trainer does not
apply).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PersistenceForecaster", "HistoricalAverageForecaster"]


class PersistenceForecaster:
    """Predict that the next interval equals the most recent one.

    Uses the last closeness frame of each sample — already in scaled
    space, so its output composes with the same inverse transform as
    the learned models.
    """

    def fit(self, _batch=None):
        """No-op (kept for protocol symmetry)."""
        return self

    def predict(self, batch):
        """Last observed frame per sample, ``(N, 2, H, W)``."""
        return np.asarray(batch.closeness)[:, -1].copy()


class HistoricalAverageForecaster:
    """Predict the time-of-day (and weekday/weekend) average flow.

    Fits a lookup table over the training samples keyed by
    ``(time-of-day, is_weekend)``; unseen keys fall back to the global
    mean.
    """

    def __init__(self, grid):
        self.grid = grid
        self._table = {}
        self._global_mean = None

    def _key(self, interval):
        f = self.grid.samples_per_day
        return (int(interval) % f, bool(self.grid.is_weekend(int(interval))))

    def fit(self, batch):
        """Average the training targets per (time-of-day, weekend) key."""
        targets = np.asarray(batch.target)
        sums, counts = {}, {}
        for i, interval in enumerate(batch.indices):
            key = self._key(interval)
            if key not in sums:
                sums[key] = np.zeros_like(targets[0])
                counts[key] = 0
            sums[key] += targets[i]
            counts[key] += 1
        self._table = {key: sums[key] / counts[key] for key in sums}
        self._global_mean = targets.mean(axis=0)
        return self

    def predict(self, batch):
        """Per-sample historical average, ``(N, 2, H, W)``."""
        if self._global_mean is None:
            raise RuntimeError("fit() must be called before predict()")
        rows = [
            self._table.get(self._key(interval), self._global_mean)
            for interval in batch.indices
        ]
        return np.stack(rows)
