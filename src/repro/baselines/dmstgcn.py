"""DMSTGCN baseline (Han et al., KDD 2021), simplified.

Keeps the defining mechanism: a *dynamic, learned* adjacency (node
embeddings, no fixed graph) combined with dilated temporal convolution
over the frame sequence.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import AdaptiveGraphConv, Linear, Parameter, init
from repro.tensor import relu, swapaxes, tanh

__all__ = ["DMSTGCNBaseline"]


class DMSTGCNBaseline(BaselineForecaster):
    """Dynamic graph conv + dilated temporal convolution."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        length = config.total_length
        self.embed = Linear(config.flow_channels, hidden, rng=rng)
        self.agc1 = AdaptiveGraphConv(hidden, hidden, config.num_regions,
                                      embed_dim=8, rng=rng)
        self.agc2 = AdaptiveGraphConv(hidden, hidden, config.num_regions,
                                      embed_dim=8, rng=rng)
        # Dilated temporal convolution expressed as two strided linear
        # maps over the time axis (kernel 2, dilation 1 then 2).
        self.temporal1 = Parameter(init.glorot_uniform((2, hidden, hidden), rng))
        self.temporal2 = Parameter(init.glorot_uniform((2, hidden, hidden), rng))
        self.head = Linear(hidden, config.flow_channels, rng=rng)

    def _dilated(self, sequence, kernel, dilation):
        """Causal dilated conv over (B, L, D) with kernel size 2."""
        length = sequence.shape[1]
        if length <= dilation:
            return sequence
        past = sequence[:, :length - dilation, :]
        present = sequence[:, dilation:, :]
        return relu(past @ kernel[0] + present @ kernel[1])

    def forward(self, closeness, period, trend):
        nodes = self._frames_nodes((closeness, period, trend))  # (N, L, M, 2)
        n, length, m, _c = nodes.shape
        x = relu(self.embed(nodes))  # (N, L, M, D)
        # Dynamic spatial mixing per frame.
        per_frame = x.reshape((n * length, m, -1))
        per_frame = relu(self.agc1(per_frame))
        per_frame = per_frame + relu(self.agc2(per_frame))
        x = per_frame.reshape((n, length, m, -1))
        # Temporal stack per node.
        per_node = swapaxes(x, 1, 2).reshape((n * m, length, -1))
        per_node = self._dilated(per_node, self.temporal1, 1)
        per_node = self._dilated(per_node, self.temporal2, 2)
        out = self.head(per_node[:, -1, :]).reshape((n, m, -1))
        return tanh(self._to_grid(out))
