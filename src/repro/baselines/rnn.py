"""RNN baseline (Liu et al., AAAI 2016 style).

A plain Elman recurrent network over the flattened frame sequence with
an FC readout — temporal-only, no spatial structure, which is why the
paper reports it as the weakest class of baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Linear, Parameter, init
from repro.tensor import Tensor, tanh

__all__ = ["RNNBaseline"]


class RNNBaseline(BaselineForecaster):
    """Elman RNN over frames, FC head to the output grid."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        self.input_proj = Linear(config.frame_features, hidden, rng=rng)
        self.recurrent = Parameter(init.orthogonal((hidden, hidden), rng))
        self.bias = Parameter(init.zeros((hidden,)))
        self.head = Linear(hidden, config.frame_features, rng=rng)

    def forward(self, closeness, period, trend):
        frames = self._frames_flat((closeness, period, trend))
        batch, length = frames.shape[0], frames.shape[1]
        h = Tensor(np.zeros((batch, self.config.hidden), dtype=frames.dtype))
        for t in range(length):
            h = tanh(self.input_proj(frames[:, t, :]) + h @ self.recurrent + self.bias)
        out = tanh(self.head(h))
        cfg = self.config
        return out.reshape((batch, cfg.flow_channels, cfg.height, cfg.width))
