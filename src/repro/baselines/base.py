"""Shared infrastructure for the 11 comparison methods (Table II).

Every baseline follows the same protocol as MUSE-Net so the
:class:`~repro.training.Trainer` can drive any of them:

- ``forward(closeness, period, trend) -> prediction`` in scaled space,
- ``training_loss(batch, rng) -> (LossBreakdown, outputs)``,
- ``predict(batch) -> ndarray``.

For the baselines the loss is plain regression (their auxiliary losses,
where a method has one, are added in the subclass).  As in the paper's
protocol, every method predicts both inflow and outflow jointly.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro.core.losses import LossBreakdown
from repro.nn import Module, mse_loss
from repro.tensor import Tensor, concat, no_grad

__all__ = ["BaselineConfig", "BaselineForecaster"]


@dataclass
class BaselineConfig:
    """Geometry + capacity shared by all baselines."""

    len_closeness: int = 3
    len_period: int = 4
    len_trend: int = 4
    height: int = 10
    width: int = 20
    flow_channels: int = 2
    hidden: int = 32
    seed: int = 0

    @property
    def total_length(self):
        """L = L_c + L_p + L_t (frames seen per sample)."""
        return self.len_closeness + self.len_period + self.len_trend

    @property
    def num_regions(self):
        """Grid cells M = H * W."""
        return self.height * self.width

    @property
    def frame_features(self):
        """Features of one flattened frame, ``2 * H * W``."""
        return self.flow_channels * self.num_regions

    @classmethod
    def for_data(cls, forecast_data, **overrides):
        """Config matching a prepared dataset's geometry."""
        periodicity = forecast_data.periodicity
        grid = forecast_data.grid
        defaults = dict(
            len_closeness=periodicity.len_closeness,
            len_period=periodicity.len_period,
            len_trend=periodicity.len_trend,
            height=grid.height,
            width=grid.width,
        )
        defaults.update(overrides)
        return cls(**defaults)


class BaselineForecaster(Module):
    """Base class implementing the Trainer protocol around ``forward``."""

    def __init__(self, config: BaselineConfig):
        super().__init__()
        self.config = config

    # -- input shaping helpers -----------------------------------------
    @staticmethod
    def _as_tensor(array):
        return array if isinstance(array, Tensor) else Tensor(array)

    def _frames(self, batch_or_triplet):
        """All frames chronologically: trend, period, closeness.

        Returns ``(N, L, 2, H, W)`` with the most recent frame last —
        the natural ordering for sequence models.
        """
        closeness, period, trend = batch_or_triplet
        return concat(
            [self._as_tensor(trend), self._as_tensor(period), self._as_tensor(closeness)],
            axis=1,
        )

    def _frames_flat(self, triplet):
        """Frames as vectors: ``(N, L, 2 * H * W)``."""
        frames = self._frames(triplet)
        n, length = frames.shape[0], frames.shape[1]
        return frames.reshape((n, length, -1))

    def _frames_nodes(self, triplet):
        """Frames as node features: ``(N, L, M, 2)``."""
        frames = self._frames(triplet)  # (N, L, 2, H, W)
        n, length, channels = frames.shape[0], frames.shape[1], frames.shape[2]
        flat = frames.reshape((n, length, channels, -1))  # (N, L, 2, M)
        return flat.swapaxes(2, 3)  # (N, L, M, 2)

    def _stacked_channels(self, triplet):
        """Frames stacked on the channel axis: ``(N, L*2, H, W)``."""
        frames = self._frames(triplet)
        n = frames.shape[0]
        return frames.reshape((n, -1, self.config.height, self.config.width))

    def _to_grid(self, node_values):
        """(N, M, 2) node predictions -> (N, 2, H, W) grids."""
        n = node_values.shape[0]
        cfg = self.config
        return node_values.swapaxes(1, 2).reshape(
            (n, cfg.flow_channels, cfg.height, cfg.width)
        )

    # -- Trainer protocol -------------------------------------------------
    def forward(self, closeness, period, trend):
        raise NotImplementedError

    def auxiliary_loss(self, batch, prediction, rng):
        """Optional extra loss (self-supervision etc.); default zero."""
        return None

    def training_loss(self, batch, rng=None):
        """Regression (+ optional auxiliary) loss for a SampleBatch."""
        prediction = self(batch.closeness, batch.period, batch.trend)
        reg = mse_loss(prediction, Tensor(batch.target))
        aux = self.auxiliary_loss(batch, prediction, rng)
        total = reg if aux is None else reg + aux
        zero = Tensor(0.0)
        breakdown = LossBreakdown(
            total=total, dis=zero, push=aux if aux is not None else zero,
            pull=zero, reg=reg,
        )
        return breakdown, SimpleNamespace(prediction=prediction)

    def predict(self, batch):
        """Deterministic scaled prediction."""
        with no_grad():
            self.eval()
            prediction = self(batch.closeness, batch.period, batch.trend)
        return prediction.data
