"""STGNN baseline (Wang et al., WWW 2020), simplified.

Position-wise graph convolution per frame, a GRU across frames, and a
single-layer transformer on top of the recurrent outputs — the method's
GNN + RNN + transformer sandwich.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import (
    GRUCell,
    GraphConv,
    Linear,
    MultiHeadAttention,
    grid_adjacency,
    normalize_adjacency,
)
from repro.tensor import relu, stack, swapaxes, tanh

__all__ = ["STGNNBaseline"]


class STGNNBaseline(BaselineForecaster):
    """Spatial GNN -> temporal GRU -> transformer layer."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        if hidden % 2 != 0:
            raise ValueError("STGNN hidden size must be even (2 heads)")
        adjacency = normalize_adjacency(grid_adjacency(config.height, config.width))
        self.gcn = GraphConv(config.flow_channels, hidden, adjacency, rng=rng)
        self.gru = GRUCell(hidden, hidden, rng=rng)
        self.attention = MultiHeadAttention(hidden, 2, rng=rng)
        self.head = Linear(hidden, config.flow_channels, rng=rng)

    def forward(self, closeness, period, trend):
        nodes = self._frames_nodes((closeness, period, trend))  # (N, L, M, 2)
        n, length, m, _c = nodes.shape
        h = self.gru.initial_state(n * m, dtype=nodes.dtype)
        hidden_states = []
        for t in range(length):
            spatial = relu(self.gcn(nodes[:, t]))  # (N, M, D)
            h = self.gru(spatial.reshape((n * m, -1)), h)
            hidden_states.append(h)
        sequence = stack(hidden_states, axis=1)  # (N*M, L, D)
        attended = sequence + self.attention(sequence)
        out = self.head(attended[:, -1, :]).reshape((n, m, -1))
        return tanh(self._to_grid(out))
