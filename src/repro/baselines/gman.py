"""GMAN baseline (Zheng et al., AAAI 2020), simplified.

Keeps GMAN's structure: node/time embeddings, a spatial-attention +
temporal-attention block, and a transform attention converting history
to the forecast step.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Linear, MultiHeadAttention, Parameter, init
from repro.tensor import swapaxes, tanh

__all__ = ["GMANBaseline"]


class GMANBaseline(BaselineForecaster):
    """Graph multi-attention network (simplified single ST block)."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        if hidden % 4 != 0:
            raise ValueError("GMAN hidden size must be divisible by 4 heads")
        self.embed = Linear(config.flow_channels, hidden, rng=rng)
        self.node_embedding = Parameter(
            init.normal((config.num_regions, hidden), rng, std=0.1)
        )
        self.time_embedding = Parameter(
            init.normal((config.total_length, hidden), rng, std=0.1)
        )
        self.temporal_attention = MultiHeadAttention(hidden, 4, rng=rng)
        self.spatial_attention = MultiHeadAttention(hidden, 4, rng=rng)
        self.transform_query = Parameter(init.normal((1, hidden), rng, std=0.1))
        self.transform_attention = MultiHeadAttention(hidden, 4, rng=rng)
        self.head = Linear(hidden, config.flow_channels, rng=rng)

    def forward(self, closeness, period, trend):
        nodes = self._frames_nodes((closeness, period, trend))  # (N, L, M, 2)
        n, length, m, _c = nodes.shape
        x = self.embed(nodes)  # (N, L, M, D)
        x = x + self.node_embedding.reshape((1, 1, m, -1))
        x = x + self.time_embedding[:length].reshape((1, length, 1, -1))

        # Temporal attention: attend over L for every node.
        per_node = swapaxes(x, 1, 2).reshape((n * m, length, -1))
        per_node = per_node + self.temporal_attention(per_node)
        x = swapaxes(per_node.reshape((n, m, length, -1)), 1, 2)

        # Spatial attention: attend over M for every frame.
        per_frame = x.reshape((n * length, m, -1))
        per_frame = per_frame + self.spatial_attention(per_frame)
        x = per_frame.reshape((n, length, m, -1))

        # Transform attention: a learned query summarizes history into
        # the single forecast step, per node.
        history = swapaxes(x, 1, 2).reshape((n * m, length, -1))
        query = self.transform_query.reshape((1, 1, -1))
        from repro.tensor import broadcast_to

        query = broadcast_to(query, (n * m, 1, query.shape[-1]))
        summary = self.transform_attention(query, history, history)
        out = self.head(summary.reshape((n, m, -1)))
        return tanh(self._to_grid(out))
