"""ST-Norm baseline (Deng et al., KDD 2021), simplified.

The paper's only disentangle-flavoured baseline: temporal normalization
separates each region's high-frequency component, spatial normalization
its local (relative-to-city) component, and the refined channels feed a
convolutional forecaster.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Conv2d
from repro.tensor import concat, relu, tanh
from repro.tensor.reductions import mean, std

__all__ = ["STNormBaseline"]


def temporal_norm(frames, eps=1e-5):
    """Normalize each cell's series across the time axis.

    ``frames``: (N, L, 2, H, W).  Removes each cell's own running level,
    isolating the high-frequency component.
    """
    mu = mean(frames, axis=1, keepdims=True)
    sigma = std(frames, axis=1, keepdims=True, eps=eps)
    return (frames - mu) / sigma


def spatial_norm(frames, eps=1e-5):
    """Normalize each frame across space.

    Removes the citywide level per interval, isolating each cell's
    local deviation.
    """
    mu = mean(frames, axis=(3, 4), keepdims=True)
    sigma = std(frames, axis=(3, 4), keepdims=True, eps=eps)
    return (frames - mu) / sigma


class STNormBaseline(BaselineForecaster):
    """Temporal + spatial normalization feeding a conv forecaster."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        in_channels = 3 * config.total_length * config.flow_channels
        self.conv1 = Conv2d(in_channels, hidden, 3, padding="same", rng=rng)
        self.conv2 = Conv2d(hidden, hidden, 3, padding="same", rng=rng)
        self.head = Conv2d(hidden, config.flow_channels, 3, padding="same", rng=rng)

    def forward(self, closeness, period, trend):
        frames = self._frames((closeness, period, trend))  # (N, L, 2, H, W)
        refined = concat(
            [frames, temporal_norm(frames), spatial_norm(frames)], axis=1
        )
        n = refined.shape[0]
        cfg = self.config
        x = refined.reshape((n, -1, cfg.height, cfg.width))
        x = relu(self.conv1(x))
        x = x + relu(self.conv2(x))
        return tanh(self.head(x))
