"""ST-SSL baseline (Ji et al., AAAI 2023), simplified.

Self-supervised traffic forecasting: alongside the regression head, an
auxiliary contrastive objective aligns the embeddings of two augmented
views of the same input (noise / channel-dropout augmentations standing
in for the paper's graph augmentations), modeling spatial-temporal
heterogeneity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Conv2d, Linear, log_softmax
from repro.tensor import Tensor, matmul, mean, no_grad, relu, swapaxes, tanh
from repro.tensor.conv import global_avg_pool2d

__all__ = ["STSSLBaseline"]


class STSSLBaseline(BaselineForecaster):
    """Conv forecaster with a contrastive self-supervised auxiliary."""

    def __init__(self, config: BaselineConfig, ssl_weight=0.1, temperature=0.5):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        self.ssl_weight = ssl_weight
        self.temperature = temperature
        in_channels = config.total_length * config.flow_channels
        self.encoder1 = Conv2d(in_channels, hidden, 3, padding="same", rng=rng)
        self.encoder2 = Conv2d(hidden, hidden, 3, padding="same", rng=rng)
        self.head = Conv2d(hidden, config.flow_channels, 3, padding="same", rng=rng)
        self.projector = Linear(hidden, hidden, rng=rng)
        self._aug_rng = np.random.default_rng(rng.integers(0, 2**31))

    def _encode(self, stacked):
        x = relu(self.encoder1(stacked))
        return x + relu(self.encoder2(x))

    def forward(self, closeness, period, trend):
        features = self._encode(self._stacked_channels((closeness, period, trend)))
        return tanh(self.head(features))

    def _augment(self, stacked, rng):
        noise = rng.normal(0.0, 0.05, size=stacked.shape)
        drop = (rng.random((stacked.shape[0], stacked.shape[1], 1, 1)) > 0.1)
        # rng.normal yields float64; cast before wrapping or the noise
        # add upcasts a float32 graph (dtype-upcast finding).
        return (stacked * Tensor(drop.astype(stacked.dtype))
                + Tensor(noise.astype(stacked.dtype)))

    def auxiliary_loss(self, batch, prediction, rng):
        """InfoNCE between two augmented views of each sample."""
        if not self.training:
            return None
        rng = rng if isinstance(rng, np.random.Generator) else self._aug_rng
        stacked = self._stacked_channels((batch.closeness, batch.period, batch.trend))
        view_a = self._augment(stacked, rng)
        view_b = self._augment(stacked, rng)
        za = self.projector(global_avg_pool2d(self._encode(view_a)))
        zb = self.projector(global_avg_pool2d(self._encode(view_b)))

        def normalize(z):
            norm = (z * z).sum(axis=-1, keepdims=True) ** 0.5
            return z / (norm + 1e-8)

        za = normalize(za)
        zb = normalize(zb)
        logits = matmul(za, swapaxes(zb, 0, 1)) * (1.0 / self.temperature)
        log_probs = log_softmax(logits, axis=-1)
        n = logits.shape[0]
        diagonal = log_probs[np.arange(n), np.arange(n)]
        return self.ssl_weight * (-mean(diagonal))
