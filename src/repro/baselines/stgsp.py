"""ST-GSP baseline (Zhao et al., WSDM 2022), simplified.

Transformer over the whole multi-periodic frame sequence: a shared conv
embeds each frame, positional encodings mark resolution and order, and
multi-head self-attention extracts the global semantic representation
used for forecasting.  Per the paper's protocol, external factors are
not used.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import Conv2d, Linear, MultiHeadAttention, Parameter, init
from repro.tensor import relu, stack, tanh

__all__ = ["STGSPBaseline"]


class STGSPBaseline(BaselineForecaster):
    """Frame-level transformer over the multi-periodic sequence."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        if hidden % 4 != 0:
            raise ValueError("ST-GSP hidden size must be divisible by 4 heads")
        self.frame_conv = Conv2d(config.flow_channels, 4, 3, padding="same", rng=rng)
        self.frame_proj = Linear(4 * config.num_regions, hidden, rng=rng)
        self.positions = Parameter(
            init.normal((config.total_length, hidden), rng, std=0.1)
        )
        self.attention1 = MultiHeadAttention(hidden, 4, rng=rng)
        self.attention2 = MultiHeadAttention(hidden, 4, rng=rng)
        self.head = Linear(hidden, config.frame_features, rng=rng)

    def forward(self, closeness, period, trend):
        frames = self._frames((closeness, period, trend))  # (N, L, 2, H, W)
        n, length = frames.shape[0], frames.shape[1]
        embeddings = []
        for t in range(length):
            feat = relu(self.frame_conv(frames[:, t]))
            embeddings.append(self.frame_proj(feat.flatten(start_axis=1)))
        sequence = stack(embeddings, axis=1) + self.positions[:length]
        sequence = sequence + self.attention1(sequence)
        sequence = sequence + self.attention2(sequence)
        out = tanh(self.head(sequence[:, -1, :]))
        cfg = self.config
        return out.reshape((n, cfg.flow_channels, cfg.height, cfg.width))
