"""ASTGCN baseline (Guo et al., AAAI 2019), simplified.

Keeps the method's defining mechanisms: per-sub-series branches, each
combining a temporal attention over frames with a Chebyshev graph
convolution over regions; the branch outputs are summed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.nn import ChebConv, Linear, grid_adjacency, softmax
from repro.tensor import matmul, relu, swapaxes, tanh

__all__ = ["ASTGCNBaseline"]


class _Branch:
    """One sub-series branch: temporal attention + ChebConv + head."""

    def __init__(self, owner, name, length, config, rng):
        hidden = config.hidden
        adjacency = grid_adjacency(config.height, config.width)
        self.attn_query = Linear(config.flow_channels, hidden, rng=rng)
        self.attn_key = Linear(config.flow_channels, hidden, rng=rng)
        self.cheb = ChebConv(length * config.flow_channels, hidden, adjacency,
                             order=2, rng=rng)
        self.head = Linear(hidden, config.flow_channels, rng=rng)
        # Register submodules on the owning Module for parameter traversal.
        for suffix, module in (("attn_q", self.attn_query), ("attn_k", self.attn_key),
                               ("cheb", self.cheb), ("head", self.head)):
            setattr(owner, f"{name}_{suffix}", module)

    def __call__(self, series):
        # series: (N, L, M, 2) node features per frame.
        n, length, m, _c = series.shape
        # Temporal attention: weight frames by mean-node similarity.
        pooled = series.mean(axis=2)  # (N, L, 2)
        query = self.attn_query(pooled)
        key = self.attn_key(pooled)
        # math.sqrt, not np.sqrt: a float64 scalar here upcasts the
        # whole float32 attention graph (dtype-upcast finding).
        scores = matmul(query, swapaxes(key, -1, -2)) * (1.0 / math.sqrt(query.shape[-1]))
        weights = softmax(scores.mean(axis=1), axis=-1)  # (N, L)
        weighted = series * weights.reshape((n, length, 1, 1))
        stacked = swapaxes(weighted, 1, 2).reshape((n, m, -1))  # (N, M, L*2)
        spatial = relu(self.cheb(stacked))
        return self.head(spatial)  # (N, M, 2)


class ASTGCNBaseline(BaselineForecaster):
    """Attention-based spatial-temporal GCN (simplified)."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        self.branch_c = _Branch(self, "c", config.len_closeness, config, rng)
        self.branch_p = _Branch(self, "p", config.len_period, config, rng)
        self.branch_t = _Branch(self, "t", config.len_trend, config, rng)

    def forward(self, closeness, period, trend):
        cfg = self.config

        def as_nodes(series):
            series = self._as_tensor(series)  # (N, L, 2, H, W)
            n, length = series.shape[0], series.shape[1]
            return series.reshape((n, length, cfg.flow_channels, -1)).swapaxes(2, 3)

        total = (
            self.branch_c(as_nodes(closeness))
            + self.branch_p(as_nodes(period))
            + self.branch_t(as_nodes(trend))
        )
        return tanh(self._to_grid(total))
