"""DeepSTN+ baseline (Feng et al., TKDD 2022).

The paper's strongest CNN baseline and the source of MUSE-Net's spatial
module: per-sub-series conv stems, channel fusion, and the ResPlus
network for long-range spatial dependency.  Structurally this is
MUSE-Net without the disentanglement machinery — which is exactly the
comparison the paper draws.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.core.resplus import ResPlusNetwork
from repro.nn import Conv2d
from repro.tensor import concat, relu

__all__ = ["DeepSTNBaseline"]


class DeepSTNBaseline(BaselineForecaster):
    """Conv stems + ResPlus fusion (DeepSTN+)."""

    def __init__(self, config: BaselineConfig, res_blocks=2, plus_channels=2):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        hidden = config.hidden
        self.stem_c = Conv2d(config.len_closeness * config.flow_channels, hidden,
                             3, padding="same", rng=rng)
        self.stem_p = Conv2d(config.len_period * config.flow_channels, hidden,
                             3, padding="same", rng=rng)
        self.stem_t = Conv2d(config.len_trend * config.flow_channels, hidden,
                             3, padding="same", rng=rng)
        self.resplus = ResPlusNetwork(
            3 * hidden, hidden, config.height, config.width,
            num_blocks=res_blocks, plus_channels=plus_channels,
            out_channels=config.flow_channels, rng=rng,
        )

    def _stack(self, series):
        series = self._as_tensor(series)
        n = series.shape[0]
        return series.reshape((n, -1, self.config.height, self.config.width))

    def forward(self, closeness, period, trend):
        fc = relu(self.stem_c(self._stack(closeness)))
        fp = relu(self.stem_p(self._stack(period)))
        ft = relu(self.stem_t(self._stack(trend)))
        return self.resplus(concat([fc, fp, ft], axis=1))
