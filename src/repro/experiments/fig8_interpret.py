"""Figure 8 — interpreting representations through peak/non-peak periods.

The paper traces, for one region over a 1.5-day window, the similarity
between each representation and the future flow at that timeslot:
exclusive similarities sit higher during peaks (they model the
fluctuating dynamics) and the interactive similarity sits relatively
higher during non-peak periods (it models the steady common pattern).
The runner reproduces those traces and reports peak vs non-peak means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import windowed_correlation
from repro.data import non_peak_mask, peak_mask
from repro.experiments.common import format_table, get_profile, prepare, train_muse

__all__ = ["Fig8Result", "run_fig8"]


@dataclass
class Fig8Result:
    """Similarity traces over time plus peak/non-peak means."""

    region: tuple
    indices: np.ndarray
    traces: dict  # 'c'/'p'/'t'/'s' -> (T,) similarity trace
    peak: np.ndarray  # boolean mask aligned with indices

    def peak_mean(self, key):
        """Mean similarity during peak intervals."""
        return float(self.traces[key][self.peak].mean())

    def non_peak_mean(self, key):
        """Mean similarity during non-peak intervals."""
        return float(self.traces[key][~self.peak].mean())

    def interactive_prefers_non_peak(self):
        """Fig. 8's second observation, relative to the exclusives.

        The interactive trace should sit *higher relative to the
        exclusive traces* during non-peak periods than during peaks.
        """
        exclusive = np.mean([self.traces[k] for k in ("c", "p", "t")], axis=0)
        gap = self.traces["s"] - exclusive
        return float(gap[~self.peak].mean()) > float(gap[self.peak].mean())

    def __str__(self):
        rows = [
            (key, self.peak_mean(key), self.non_peak_mean(key))
            for key in ("c", "p", "t", "s")
        ]
        table = format_table(
            ("Representation", "peak mean", "non-peak mean"), rows,
            title=f"Fig. 8 similarity traces, region {self.region}", precision=3,
        )
        verdict = "yes" if self.interactive_prefers_non_peak() else "no"
        return table + f"\ninteractive relatively stronger off-peak: {verdict}"


def run_fig8(profile="ci", dataset="nyc-bike", region=None, seed=0):
    """Regenerate Fig. 8; returns a :class:`Fig8Result`."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    trainer = train_muse(data, prof, seed=seed, gen_weight=1.0)
    batch = data.test
    outputs = trainer.model.encode(batch)

    grid = data.grid
    if region is None:
        # Pick the busiest region of the test window, like the paper's
        # hand-picked downtown cell.
        totals = data.inverse(batch.target).sum(axis=(0, 1))
        region = tuple(int(v) for v in np.unravel_index(totals.argmax(), totals.shape))

    row, col = region
    # Per-timeslot similarity: sliding correlation between the region's
    # future flow series and each representation's activation series at
    # that region (the trace drawn in the paper's figure).
    future = batch.target[:, :, row, col].mean(axis=1)  # (N,) flow series
    traces = {}
    for key in ("c", "p", "t", "s"):
        activation = outputs.representations[key].data[:, :, row, col].mean(axis=1)
        traces[key] = windowed_correlation(activation, future, window=3)

    peak = peak_mask(grid, batch.indices)
    return Fig8Result(region=region, indices=batch.indices, traces=traces, peak=peak)


if __name__ == "__main__":
    print(run_fig8())
