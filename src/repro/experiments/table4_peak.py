"""Table IV — peak vs non-peak one-step performance.

Trains the four multi-periodic methods once per dataset, then splits
the test evaluation by the paper's peak windows (7-9 am, 5-7 pm).
Expected shape: everyone is worse during peaks; MUSE-Net degrades the
least thanks to the exclusive representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import non_peak_mask, peak_mask
from repro.experiments.common import (
    format_table,
    get_profile,
    prepare,
    train_baseline,
    train_muse,
)
from repro.experiments.table3_multistep import MULTISTEP_METHODS

__all__ = ["Table4Result", "run_table4"]


@dataclass
class Table4Result:
    """reports[dataset][method] -> {"peak": EvalReport, "non_peak": EvalReport}."""

    profile: str
    reports: dict = field(default_factory=dict)

    def rows(self, dataset):
        rows = []
        for method, halves in self.reports[dataset].items():
            peak, off = halves["peak"], halves["non_peak"]
            rows.append((
                method,
                peak.outflow_rmse, peak.outflow_mape,
                peak.inflow_rmse, peak.inflow_mape,
                off.outflow_rmse, off.outflow_mape,
                off.inflow_rmse, off.inflow_mape,
            ))
        return rows

    def __str__(self):
        pieces = []
        headers = ("Method",
                   "peak out RMSE", "peak out MAPE", "peak in RMSE", "peak in MAPE",
                   "off out RMSE", "off out MAPE", "off in RMSE", "off in MAPE")
        for dataset in self.reports:
            pieces.append(format_table(
                headers, self.rows(dataset),
                title=f"Table IV [{dataset}] ({self.profile})",
            ))
        return "\n\n".join(pieces)


def run_table4(profile="ci", datasets=None, methods=None, seed=0):
    """Regenerate Table IV; returns a :class:`Table4Result`."""
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets[:1]
    methods = tuple(methods) if methods is not None else MULTISTEP_METHODS

    result = Table4Result(profile=prof.name)
    for dataset_name in datasets:
        data = prepare(dataset_name, prof)
        grid = data.grid
        peak = peak_mask(grid, data.test.indices)
        off = non_peak_mask(grid, data.test.indices)
        table = {}
        for method in methods:
            if method == "MUSE-Net":
                trainer = train_muse(data, prof, seed=seed)
            else:
                trainer = train_baseline(method, data, prof, seed=seed)
            table[method] = {
                "peak": trainer.evaluate(data, sample_mask=peak),
                "non_peak": trainer.evaluate(data, sample_mask=off),
            }
        result.reports[dataset_name] = table
    return result


if __name__ == "__main__":
    print(run_table4())
