"""Extension ablations for the design choices DESIGN.md §4 calls out.

Beyond the paper's Table VI, these isolate three implementation-level
decisions:

- **Fusion head** — ResPlus vs a plain 3x3 conv head vs no spatial
  mixing: how much of the win is the long-range "plus" branch?
- **Generative weight** — the ``gen_weight`` rebalancing between the
  paper's objective (1.0) and pure regression (0.0) at reduced scale.
- **Pull optimization** — the alternating (stop-gradient) treatment of
  the ``+KL(r || d)`` bound term vs optimizing Eq. (29) literally
  ("joint"), which is adversarial and diverges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import MUSENet
from repro.experiments.common import format_table, get_profile, muse_config, prepare, train_muse
from repro.optim import Adam, clip_grad_norm

__all__ = [
    "FusionAblationResult", "run_fusion_ablation",
    "GenWeightAblationResult", "run_genweight_ablation",
    "PullModeResult", "run_pull_mode_ablation",
]


@dataclass
class FusionAblationResult:
    """Test RMSE per fusion head."""

    profile: str
    rmse: dict = field(default_factory=dict)  # mode -> (out, in)

    def __str__(self):
        rows = [(mode, out, inn) for mode, (out, inn) in self.rmse.items()]
        return format_table(("fusion", "out RMSE", "in RMSE"), rows,
                            title=f"Fusion-head ablation ({self.profile})")


def run_fusion_ablation(profile="ci", dataset="nyc-bike", seed=0):
    """Compare ResPlus / plain-conv / pointwise fusion heads."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    result = FusionAblationResult(profile=prof.name)
    for mode in ("resplus", "conv", "none"):
        trainer = train_muse(data, prof, seed=seed, spatial_mode=mode)
        report = trainer.evaluate(data)
        result.rmse[mode] = (report.outflow_rmse, report.inflow_rmse)
    return result


@dataclass
class GenWeightAblationResult:
    """Test RMSE per generative-term weight."""

    profile: str
    rmse: dict = field(default_factory=dict)  # gen_weight -> (out, in)

    def __str__(self):
        rows = [(w, out, inn) for w, (out, inn) in self.rmse.items()]
        return format_table(("gen_weight", "out RMSE", "in RMSE"), rows,
                            title=f"Generative-weight ablation ({self.profile})")


def run_genweight_ablation(profile="ci", dataset="nyc-bike",
                           weights=(0.0, 0.05, 1.0), seed=0):
    """Sweep the generative-vs-regression balance."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    result = GenWeightAblationResult(profile=prof.name)
    for weight in weights:
        trainer = train_muse(data, prof, seed=seed, gen_weight=weight)
        report = trainer.evaluate(data)
        result.rmse[weight] = (report.outflow_rmse, report.inflow_rmse)
    return result


@dataclass
class PullModeResult:
    """Full-batch loss trajectories for both pull treatments."""

    steps: int
    trajectories: dict = field(default_factory=dict)  # mode -> [totals]

    def final(self, mode):
        """Final total loss of a trajectory."""
        return self.trajectories[mode][-1]

    def diverged(self, mode, threshold=-1e4):
        """Whether the objective ran away below ``threshold``."""
        values = np.asarray(self.trajectories[mode])
        return bool((values < threshold).any() or not np.isfinite(values).all())

    def __str__(self):
        rows = [
            (mode, values[0], values[-1], min(values))
            for mode, values in self.trajectories.items()
        ]
        return format_table(("pull mode", "first", "last", "min"), rows,
                            title=f"Pull-term optimization ({self.steps} steps)")


def run_pull_mode_ablation(profile="ci", dataset="nyc-bike", steps=25, seed=0):
    """Train both pull treatments a fixed number of full-batch steps."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    batch = data.train.take(range(min(16, len(data.train))))
    result = PullModeResult(steps=steps)
    for mode in ("alternating", "joint"):
        config = muse_config(data, prof, seed=seed, gen_weight=1.0,
                             pull_mode=mode)
        model = MUSENet(config)
        optimizer = Adam(model.parameters(), lr=2e-3)
        rng = np.random.default_rng(seed)
        totals = []
        for _ in range(steps):
            optimizer.zero_grad()
            breakdown, _outputs = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            totals.append(breakdown.total.item())
        result.trajectories[mode] = totals
    return result


if __name__ == "__main__":
    print(run_fusion_ablation())
    print()
    print(run_genweight_ablation())
    print()
    print(run_pull_mode_ablation())
