"""Shared experiment machinery.

Every experiment runner takes a *profile* controlling compute cost:

- ``"ci"``    — tiny datasets, few epochs; minutes on a laptop CPU.
  This is what the ``benchmarks/`` harness runs.
- ``"paper"`` — the reduced-but-realistic "small" datasets with longer
  training; tens of minutes per table.
- ``"full"``  — paper-scale geometry and spans; hours (documented, not
  exercised by CI).

The absolute errors on the synthetic substrate differ from the paper's
real-data numbers; the *shape* of each table (method ordering, rough
factors) is what the runners reproduce and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import BaselineConfig, make_baseline
from repro.core import MuseConfig, MUSENet, make_variant
from repro.data import load_dataset, prepare_forecast_data
from repro.training import TrainConfig, Trainer

__all__ = ["Profile", "PROFILES", "get_profile", "prepare", "train_muse",
           "train_baseline", "train_variant", "format_table"]


@dataclass
class Profile:
    """Compute budget for an experiment run."""

    name: str
    dataset_scale: str
    epochs: int
    batch_size: int = 8
    lr: float = 1e-3
    hidden: int = 16  # baseline capacity
    rep_channels: int = 8  # MUSE-Net d
    latent_interactive: int = 16  # MUSE-Net k
    res_blocks: int = 1
    plus_channels: int = 2
    plus_reduce: int = None  # 1x1 compression for the plus branch
    decoder_hidden: int = 32
    # Weight of MUSE-Net's generative terms vs regression in *table*
    # (accuracy) experiments.  1.0 is the paper's objective; reduced
    # grids shrink the summed regression term relative to the latent
    # KLs, so small profiles rebalance (see DESIGN.md §4).  The figure
    # runners that analyse the representations always use 1.0.
    gen_weight: float = 1.0
    max_train_samples: int = None
    max_test_samples: int = None
    patience: int = None
    datasets: tuple = ("nyc-bike", "nyc-taxi", "taxibj")


PROFILES = {
    "ci": Profile(
        name="ci", dataset_scale="tiny", epochs=20, lr=2e-3,
        gen_weight=0.05, max_test_samples=60,
    ),
    "paper": Profile(
        name="paper", dataset_scale="small", epochs=60, lr=1e-3,
        hidden=32, rep_channels=16, latent_interactive=32,
        res_blocks=2, plus_channels=4, decoder_hidden=64, patience=15,
        gen_weight=0.02, max_test_samples=120,
    ),
    "full": Profile(
        name="full", dataset_scale="full", epochs=350, lr=2e-4,
        batch_size=8, hidden=64, rep_channels=64, latent_interactive=128,
        res_blocks=2, plus_channels=8, plus_reduce=8, decoder_hidden=128,
        patience=20, gen_weight=1.0,
    ),
}


def get_profile(profile):
    """Resolve a profile by name or pass a :class:`Profile` through."""
    if isinstance(profile, Profile):
        return profile
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    return PROFILES[profile]


def prepare(dataset_name, profile, horizon=1, seed=None):
    """Load a dataset at the profile's scale and window it."""
    profile = get_profile(profile)
    dataset = load_dataset(dataset_name, scale=profile.dataset_scale, seed=seed)
    return prepare_forecast_data(
        dataset,
        horizon=horizon,
        max_train_samples=profile.max_train_samples,
        max_test_samples=profile.max_test_samples,
    )


def _train_config(profile, seed, profile_ops=False, dtype=None,
                  train_overrides=None):
    """Profile-sized TrainConfig; ``train_overrides`` maps onto extra
    TrainConfig fields (sentinel policy, checkpoint_dir, resume, ...)."""
    return TrainConfig(
        epochs=profile.epochs, batch_size=profile.batch_size, lr=profile.lr,
        patience=profile.patience, seed=seed, profile_ops=profile_ops,
        dtype=dtype,
        **(train_overrides or {}),
    )


def muse_config(data, profile, seed=0, **overrides):
    """MUSE-Net config sized to the profile."""
    profile = get_profile(profile)
    defaults = dict(
        rep_channels=profile.rep_channels,
        latent_interactive=profile.latent_interactive,
        res_blocks=profile.res_blocks,
        plus_channels=profile.plus_channels,
        plus_reduce=profile.plus_reduce,
        decoder_hidden=profile.decoder_hidden,
        gen_weight=profile.gen_weight,
        seed=seed,
    )
    defaults.update(overrides)
    return MuseConfig.for_data(data, **defaults)


def train_muse(data, profile, seed=0, profile_ops=False, dtype=None,
               train_overrides=None, **config_overrides):
    """Train MUSE-Net on prepared data; returns the fitted Trainer."""
    profile = get_profile(profile)
    model = MUSENet(muse_config(data, profile, seed=seed, **config_overrides))
    trainer = Trainer(model, _train_config(profile, seed, profile_ops=profile_ops,
                                           dtype=dtype,
                                           train_overrides=train_overrides))
    trainer.fit(data)
    return trainer


def train_variant(variant_name, data, profile, seed=0, dtype=None,
                  **config_overrides):
    """Train a Table VI ablation variant."""
    profile = get_profile(profile)
    model = make_variant(variant_name,
                         muse_config(data, profile, seed=seed, **config_overrides))
    trainer = Trainer(model, _train_config(profile, seed, dtype=dtype))
    trainer.fit(data)
    return trainer


def train_baseline(name, data, profile, seed=0, profile_ops=False, dtype=None,
                   train_overrides=None):
    """Train one of the 11 baselines."""
    profile = get_profile(profile)
    config = BaselineConfig.for_data(data, hidden=profile.hidden, seed=seed)
    model = make_baseline(name, config)
    trainer = Trainer(model, _train_config(profile, seed, profile_ops=profile_ops,
                                           dtype=dtype,
                                           train_overrides=train_overrides))
    trainer.fit(data)
    return trainer


def format_table(headers, rows, title=None, precision=2):
    """Render an aligned text table (the harness's printable output)."""
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
