"""Figures 1-2 — the paper's motivating phenomena, measured.

The introduction motivates disentanglement with two observations about
multi-periodic traffic:

- **Fig. 1, distribution shift** — a *level shift* (one sub-series'
  distribution differs wholesale from another's) and a *point shift*
  (outliers within a sub-series).  We quantify both on the synthetic
  substrate: a two-sample Kolmogorov-Smirnov statistic between the
  pre- and post-regime-change flow distributions, and the peak z-score
  an injected event produces in its region's series.
- **Fig. 2, interaction shift** — the correlation between the future
  flow window and each of the closeness/period/trend sub-series
  changes over time (what tracks the future now may not an hour
  later).  We reproduce the paper's timeslot plot as correlation traces
  and measure how often the best-correlated sub-series switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.data import (
    CityConfig,
    GridSpec,
    LevelShift,
    TrafficEvent,
    TrajectorySimulator,
)
from repro.experiments.common import format_table
from repro.viz import sparkline

__all__ = ["Fig1Result", "run_fig1", "Fig2Result", "run_fig2"]


@dataclass
class Fig1Result:
    """Quantified distribution-shift phenomena."""

    level_shift_ks: float  # KS statistic between pre/post regimes
    level_shift_pvalue: float
    point_shift_zscore: float  # event outlier magnitude in sigmas
    pre_series: np.ndarray
    post_series: np.ndarray
    event_series: np.ndarray

    def __str__(self):
        return "\n".join([
            "Fig. 1 distribution shift in the synthetic substrate",
            f"  level shift: KS={self.level_shift_ks:.3f} "
            f"(p={self.level_shift_pvalue:.2e}) between regimes",
            f"    pre : {sparkline(self.pre_series[:48])}",
            f"    post: {sparkline(self.post_series[:48])}",
            f"  point shift: event z-score {self.point_shift_zscore:.1f} sigma",
            f"    event region: {sparkline(self.event_series)}",
        ])


def run_fig1(days=28, seed=0, **_ignored):
    """Measure level/point shifts in a freshly simulated city."""
    grid = GridSpec(5, 6, interval_minutes=60, start_weekday=0)
    event_region = grid.region_index(2, 3)
    shift_start = grid.intervals_for_days(days // 2)
    event_start = grid.intervals_for_days(days // 4) + 15
    config = CityConfig(
        num_agents=800,
        events=[TrafficEvent(region=int(event_region), start_interval=int(event_start),
                             duration=3, attendance=200)],
        level_shift=LevelShift(start_interval=int(shift_start), factor=0.55),
    )
    flows = TrajectorySimulator(grid, config, seed=seed).simulate(
        grid.intervals_for_days(days)
    )
    citywide = flows.sum(axis=(1, 2, 3))

    pre = citywide[grid.samples_per_day:shift_start]
    post = citywide[shift_start:]
    ks = stats.ks_2samp(pre, post)

    row, col = grid.region_coords(event_region)
    region_inflow = flows[:, 1, row, col]
    window = slice(max(0, event_start - 3 * grid.samples_per_day),
                   event_start + grid.samples_per_day)
    local = region_inflow[window]
    baseline = np.delete(region_inflow, np.arange(event_start, event_start + 3))
    z = (region_inflow[event_start:event_start + 3].max() - baseline.mean()) / (
        baseline.std() + 1e-9
    )

    return Fig1Result(
        level_shift_ks=float(ks.statistic),
        level_shift_pvalue=float(ks.pvalue),
        point_shift_zscore=float(z),
        pre_series=pre,
        post_series=post,
        event_series=local,
    )


@dataclass
class Fig2Result:
    """Interaction-shift traces: corr(future, sub-series) over timeslots."""

    timeslots: np.ndarray
    correlations: dict = field(default_factory=dict)  # 'c'/'p'/'t' -> (T,)

    def dominant_switches(self):
        """How many times the best-correlated sub-series changes."""
        keys = list(self.correlations)
        stacked = np.stack([self.correlations[k] for k in keys])
        dominant = stacked.argmax(axis=0)
        return int((np.diff(dominant) != 0).sum())

    def sign_changes(self, key):
        """Sign flips of one sub-series' correlation trace."""
        trace = self.correlations[key]
        return int((np.diff(np.sign(trace)) != 0).sum())

    def __str__(self):
        rows = [
            (key, float(trace.mean()), self.sign_changes(key), sparkline(trace))
            for key, trace in self.correlations.items()
        ]
        table = format_table(("sub-series", "mean corr", "sign flips", "trace"),
                             rows, title="Fig. 2 interaction shift", precision=2)
        return table + f"\ndominant sub-series switches: {self.dominant_switches()}"


def run_fig2(dataset_days=28, window=12, num_slots=24, seed=0, **_ignored):
    """Trace corr(future window, sub-series window) over timeslots.

    For each timeslot ``t`` we correlate the future flow window
    ``[t, t+window)`` of a busy region with the aligned closeness
    window, the day-lagged (period) window, and the week-lagged (trend)
    window — the quantity the paper's Fig. 2 plots.
    """
    grid = GridSpec(5, 6, interval_minutes=60, start_weekday=0)
    flows = TrajectorySimulator(grid, CityConfig(num_agents=800), seed=seed).simulate(
        grid.intervals_for_days(dataset_days)
    )
    totals = flows[:, 1].sum(axis=0)
    row, col = np.unravel_index(totals.argmax(), totals.shape)
    series = flows[:, 1, row, col]

    f = grid.samples_per_day
    start = 7 * f + window  # need a week of history
    slots = np.arange(start, start + num_slots)
    lags = {"c": window, "p": f, "t": 7 * f}
    correlations = {key: np.zeros(num_slots, dtype=np.float64)
                    for key in lags}
    for i, t in enumerate(slots):
        future = series[t:t + window]
        for key, lag in lags.items():
            past = series[t - lag:t - lag + window]
            denom = future.std() * past.std()
            if denom == 0:
                correlations[key][i] = 0.0
            else:
                correlations[key][i] = float(
                    ((future - future.mean()) * (past - past.mean())).mean() / denom
                )
    return Fig2Result(timeslots=slots, correlations=correlations)


if __name__ == "__main__":
    print(run_fig1())
    print()
    print(run_fig2())
