"""Table II — one-step forecasting, all 12 methods x 3 datasets.

For each dataset: train the 11 baselines and MUSE-Net on identical
splits, evaluate RMSE / MAE / MAPE per flow channel on the held-out
tail, and report the paper-style improvement row

    (best baseline - MUSE-Net) / best baseline

per metric.  The expected shape: MUSE-Net at or near the top on every
dataset, with RNN/Seq2Seq (no spatial modeling) the weakest class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import BASELINE_NAMES
from repro.experiments.common import (
    format_table,
    get_profile,
    prepare,
    train_baseline,
    train_muse,
)

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    """Per-dataset, per-method evaluation reports."""

    profile: str
    reports: dict = field(default_factory=dict)  # dataset -> {method: EvalReport}

    METRICS = ("out RMSE", "out MAE", "out MAPE", "in RMSE", "in MAE", "in MAPE")

    def rows(self, dataset):
        """(method, 6 metrics) rows in the paper's column order."""
        return [
            (method,) + report.row()
            for method, report in self.reports[dataset].items()
        ]

    def improvement(self, dataset):
        """Paper-style improvement of MUSE-Net over the best baseline."""
        table = self.reports[dataset]
        ours = np.array(table["MUSE-Net"].row(), dtype=np.float64)
        baselines = np.array([
            report.row() for name, report in table.items() if name != "MUSE-Net"
        ], dtype=np.float64)
        best = baselines.min(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            return (best - ours) / best

    def muse_wins(self, dataset, metric_index=0):
        """True when MUSE-Net beats every baseline on a metric."""
        return self.improvement(dataset)[metric_index] >= 0

    def __str__(self):
        pieces = []
        for dataset in self.reports:
            rows = self.rows(dataset)
            rows.append(
                ("Improvement",) + tuple(f"{v * 100:.0f}%" for v in self.improvement(dataset))
            )
            pieces.append(format_table(
                ("Method",) + self.METRICS, rows,
                title=f"Table II [{dataset}] ({self.profile} profile)",
            ))
        return "\n\n".join(pieces)


def run_table2(profile="ci", datasets=None, methods=None, seed=0):
    """Regenerate Table II; returns a :class:`Table2Result`.

    ``methods`` defaults to all 11 baselines plus MUSE-Net; pass a
    subset for quicker partial runs.
    """
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets
    methods = tuple(methods) if methods is not None else BASELINE_NAMES + ("MUSE-Net",)

    result = Table2Result(profile=prof.name)
    for dataset_name in datasets:
        data = prepare(dataset_name, prof)
        table = {}
        for method in methods:
            if method == "MUSE-Net":
                trainer = train_muse(data, prof, seed=seed)
            else:
                trainer = train_baseline(method, data, prof, seed=seed)
            table[method] = trainer.evaluate(data)
        result.reports[dataset_name] = table
    return result


if __name__ == "__main__":
    print(run_table2())
