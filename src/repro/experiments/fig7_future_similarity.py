"""Figure 7 — similarity of exclusive/interactive representations with
future traffic flow.

The paper observes that the interactive representation's similarity
pattern is *opposite* (complementary) to the exclusive ones': where
exclusive representations align with the future flow, the interactive
one anti-aligns, and vice versa.  The runner reproduces the four
similarity matrices and reports the correlation between the exclusive
and interactive per-sample similarity profiles (expected negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import (
    cosine_similarity_matrix,
    diagonal_similarity,
    spatial_signature,
)
from repro.experiments.common import format_table, get_profile, prepare, train_muse

__all__ = ["Fig7Result", "run_fig7"]


@dataclass
class Fig7Result:
    """Similarity matrices of each representation vs the future flow."""

    matrices: dict  # 'c'/'p'/'t'/'s' -> (N, N)
    diagonals: dict  # 'c'/'p'/'t'/'s' -> (N,) aligned similarity

    def complementarity(self):
        """Correlation of exclusive-mean vs interactive diagonals.

        Negative values mean the interactive representation is
        complementary to the exclusive ones — the figure's takeaway.
        """
        exclusive = np.mean([self.diagonals[k] for k in ("c", "p", "t")], axis=0)
        interactive = self.diagonals["s"]
        return float(np.corrcoef(exclusive, interactive)[0, 1])

    def __str__(self):
        rows = [
            (key, float(self.diagonals[key].mean()), float(self.matrices[key].mean()))
            for key in ("c", "p", "t", "s")
        ]
        table = format_table(
            ("Representation", "diag sim", "mean sim"), rows,
            title="Fig. 7 representations vs future flow", precision=3,
        )
        return table + f"\nexclusive-vs-interactive complementarity: {self.complementarity():.3f}"


def run_fig7(profile="ci", dataset="nyc-bike", num_samples=32, seed=0):
    """Regenerate Fig. 7; returns a :class:`Fig7Result`."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    trainer = train_muse(data, prof, seed=seed, gen_weight=1.0)
    batch = data.test.take(range(min(num_samples, len(data.test))))
    outputs = trainer.model.encode(batch)

    # Batch-centered spatial signatures (see fig6 for the rationale).
    def signature(array):
        sig = spatial_signature(array)
        return sig - sig.mean(axis=0, keepdims=True)

    future = signature(batch.target)
    matrices, diagonals = {}, {}
    for key in ("c", "p", "t", "s"):
        rep = signature(outputs.representations[key].data)
        matrices[key] = cosine_similarity_matrix(rep, future)
        diagonals[key] = diagonal_similarity(rep, future)
    return Fig7Result(matrices=matrices, diagonals=diagonals)


if __name__ == "__main__":
    print(run_fig7())
