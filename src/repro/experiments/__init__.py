"""Experiment runners: one per paper table/figure.

Each ``run_*`` function trains what it needs, returns a typed result
object, and its ``str()`` prints the same rows/series the paper
reports.  The ``benchmarks/`` directory wraps these with
pytest-benchmark, one target per table/figure.
"""

from repro.experiments.common import (
    PROFILES,
    Profile,
    format_table,
    get_profile,
    muse_config,
    prepare,
    train_baseline,
    train_muse,
    train_variant,
)
from repro.experiments.table1_complexity import Table1Result, run_table1
from repro.experiments.table2_onestep import Table2Result, run_table2
from repro.experiments.table3_multistep import (
    MULTISTEP_METHODS,
    Table3Result,
    run_table3,
)
from repro.experiments.table4_peak import Table4Result, run_table4
from repro.experiments.table5_weekday import Table5Result, run_table5
from repro.experiments.table6_ablation import Table6Result, run_table6
from repro.experiments.fig4_curves import Fig4Result, run_fig4
from repro.experiments.fig5_tsne import Fig5Result, run_fig5
from repro.experiments.fig6_pull_similarity import Fig6Result, run_fig6
from repro.experiments.fig7_future_similarity import Fig7Result, run_fig7
from repro.experiments.fig8_interpret import Fig8Result, run_fig8
from repro.experiments.fig9_sensitivity import CI_SWEEPS, Fig9Result, PAPER_SWEEPS, run_fig9
from repro.experiments.fig12_motivation import (
    Fig1Result,
    Fig2Result,
    run_fig1,
    run_fig2,
)
from repro.experiments.dataset_report import DatasetReport, build_dataset_report
from repro.experiments.extra_ablations import (
    FusionAblationResult,
    GenWeightAblationResult,
    PullModeResult,
    run_fusion_ablation,
    run_genweight_ablation,
    run_pull_mode_ablation,
)

__all__ = [
    "Profile", "PROFILES", "get_profile", "prepare", "muse_config",
    "train_muse", "train_baseline", "train_variant", "format_table",
    "run_table1", "Table1Result",
    "run_table2", "Table2Result",
    "run_table3", "Table3Result", "MULTISTEP_METHODS",
    "run_table4", "Table4Result",
    "run_table5", "Table5Result",
    "run_table6", "Table6Result",
    "run_fig4", "Fig4Result",
    "run_fig5", "Fig5Result",
    "run_fig6", "Fig6Result",
    "run_fig7", "Fig7Result",
    "run_fig8", "Fig8Result",
    "run_fig9", "Fig9Result", "PAPER_SWEEPS", "CI_SWEEPS",
    "run_fig1", "Fig1Result", "run_fig2", "Fig2Result",
    "DatasetReport", "build_dataset_report",
    "run_fusion_ablation", "FusionAblationResult",
    "run_genweight_ablation", "GenWeightAblationResult",
    "run_pull_mode_ablation", "PullModeResult",
]
