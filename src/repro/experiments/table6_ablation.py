"""Table VI — ablation study over the four MUSE-Net variants.

Trains the full model and its four ablations on identical splits.
Expected shape (per the paper): w/o-Spatial is clearly worst,
w/o-MultiDisentangle second worst, dropping either regularizer costs a
little, and the full model wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import VARIANT_NAMES
from repro.experiments.common import format_table, get_profile, prepare, train_variant

__all__ = ["Table6Result", "run_table6"]


@dataclass
class Table6Result:
    """reports[dataset][variant] -> EvalReport."""

    profile: str
    reports: dict = field(default_factory=dict)

    def rows(self, dataset):
        return [
            (variant, report.outflow_rmse, report.outflow_mae,
             report.inflow_rmse, report.inflow_mae)
            for variant, report in self.reports[dataset].items()
        ]

    def full_model_best(self, dataset, metric="outflow_rmse"):
        """True when the full model beats every ablation on ``metric``."""
        table = self.reports[dataset]
        full = getattr(table["full"], metric)
        return all(
            full <= getattr(report, metric)
            for name, report in table.items() if name != "full"
        )

    def __str__(self):
        return "\n\n".join(
            format_table(
                ("Variant", "out RMSE", "out MAE", "in RMSE", "in MAE"),
                self.rows(dataset),
                title=f"Table VI [{dataset}] ({self.profile})",
            )
            for dataset in self.reports
        )


def run_table6(profile="ci", datasets=None, variants=None, seed=0):
    """Regenerate Table VI; returns a :class:`Table6Result`."""
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets[:1]
    variants = tuple(variants) if variants is not None else VARIANT_NAMES

    result = Table6Result(profile=prof.name)
    for dataset_name in datasets:
        data = prepare(dataset_name, prof)
        table = {}
        for variant in variants:
            trainer = train_variant(variant, data, prof, seed=seed)
            table[variant] = trainer.evaluate(data)
        result.reports[dataset_name] = table
    return result


if __name__ == "__main__":
    print(run_table6())
