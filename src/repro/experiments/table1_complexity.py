"""Table I — time/space complexity comparison.

Regenerates the paper's complexity table two ways: the analytic
formulas evaluated at the paper's operating point (L = 11, d = 64,
M = H*W), and *measured* parameter counts plus single-batch forward
timings of the instantiated models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis import complexity_table, count_parameters
from repro.baselines import BaselineConfig, make_baseline
from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.experiments.common import format_table, get_profile, muse_config, prepare

__all__ = ["Table1Result", "run_table1"]

_MEASURED_METHODS = ("DeepSTN+", "DMSTGCN", "GMAN")


@dataclass
class Table1Result:
    """Analytic entries plus measured parameter counts and timings."""

    analytic: list
    measured: dict  # method -> (params, forward_seconds)

    def __str__(self):
        analytic_rows = [
            (e.method, e.family, e.time_formula, f"{e.time_value:.2e}",
             e.space_formula, f"{e.space_value:.2e}")
            for e in self.analytic
        ]
        measured_rows = [
            (name, params, f"{seconds * 1e3:.1f} ms")
            for name, (params, seconds) in self.measured.items()
        ]
        return (
            format_table(
                ("Method", "Class", "Time", "Time@op", "Space", "Space@op"),
                analytic_rows, title="Table I (analytic, L=11 d=64)",
            )
            + "\n\n"
            + format_table(("Method", "Params", "Forward"), measured_rows,
                           title="Measured on instantiated models")
        )


def run_table1(profile="ci", dataset="nyc-bike"):
    """Regenerate Table I; returns a :class:`Table1Result`."""
    profile = get_profile(profile)
    data = prepare(dataset, profile)
    grid = data.grid
    total_length = (data.periodicity.len_closeness + data.periodicity.len_period
                    + data.periodicity.len_trend)
    analytic = complexity_table(L=total_length, d=64,
                                M=grid.height * grid.width)

    measured = {}
    batch = data.test.take(range(min(8, len(data.test))))

    def timed_forward(model):
        model.predict(batch)  # warm-up
        start = time.perf_counter()
        model.predict(batch)
        return time.perf_counter() - start

    for name in _MEASURED_METHODS:
        config = BaselineConfig.for_data(data, hidden=profile.hidden)
        model = make_baseline(name, config)
        measured[name] = (count_parameters(model), timed_forward(model))
    muse = MUSENet(muse_config(data, profile))
    measured["MUSE-Net"] = (count_parameters(muse), timed_forward(muse))

    return Table1Result(analytic=analytic, measured=measured)


if __name__ == "__main__":
    print(run_table1())
