"""Figure 4 — predicted vs ground-truth flow curves.

Trains MUSE-Net and comparison methods, then extracts the citywide
inflow series over the test window for each, plus per-method
correlation and RMSE against the ground-truth curve — the numeric
summary of what the paper's figure shows visually (MUSE-Net tracking
both peaks and troughs most closely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import (
    format_table,
    get_profile,
    prepare,
    train_baseline,
    train_muse,
)

__all__ = ["Fig4Result", "run_fig4"]

_DEFAULT_METHODS = ("DeepSTN+", "STGSP", "MUSE-Net")


@dataclass
class Fig4Result:
    """Per-dataset curves: ground truth + one series per method."""

    profile: str
    curves: dict = field(default_factory=dict)  # dataset -> {name: series}

    def correlation(self, dataset, method):
        """Pearson correlation of a method's curve with ground truth."""
        truth = self.curves[dataset]["ground-truth"]
        prediction = self.curves[dataset][method]
        return float(np.corrcoef(truth, prediction)[0, 1])

    def curve_rmse(self, dataset, method):
        """RMSE of the citywide curve against ground truth."""
        truth = self.curves[dataset]["ground-truth"]
        prediction = self.curves[dataset][method]
        return float(np.sqrt(np.mean((truth - prediction) ** 2)))

    def __str__(self):
        pieces = []
        for dataset, curves in self.curves.items():
            rows = [
                (method, self.correlation(dataset, method),
                 self.curve_rmse(dataset, method))
                for method in curves if method != "ground-truth"
            ]
            pieces.append(format_table(
                ("Method", "corr", "curve RMSE"), rows,
                title=f"Fig. 4 [{dataset}] citywide inflow curve ({self.profile})",
                precision=3,
            ))
        return "\n\n".join(pieces)


def run_fig4(profile="ci", datasets=None, methods=None, seed=0):
    """Regenerate Fig. 4's curves; returns a :class:`Fig4Result`."""
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets[:1]
    methods = tuple(methods) if methods is not None else _DEFAULT_METHODS

    result = Fig4Result(profile=prof.name)
    for dataset_name in datasets:
        data = prepare(dataset_name, prof)
        truth = data.inverse(data.test.target)
        curves = {"ground-truth": truth[:, 1].sum(axis=(1, 2))}
        for method in methods:
            if method == "MUSE-Net":
                trainer = train_muse(data, prof, seed=seed)
            else:
                trainer = train_baseline(method, data, prof, seed=seed)
            prediction = trainer.predict_flows(data, data.test)
            curves[method] = prediction[:, 1].sum(axis=(1, 2))
        result.curves[dataset_name] = curves
    return result


if __name__ == "__main__":
    print(run_fig4())
